"""Ablations of the paper's design choices (DESIGN.md section 4).

Not a paper table — these quantify the decisions the paper makes by
argument: the section 5.1 factoring heuristic versus its extremes, the
precise chain DP versus EQ 5, first-fit orderings, periodicity tracking
versus solid envelopes, and the section 12 buffer-merging extension.
"""

from repro.experiments.ablations import (
    ablate_chain_dp,
    ablate_factoring,
    ablate_merging,
    ablate_orderings,
    ablate_periodicity,
    format_ablation,
)


def test_factoring_ablation(benchmark, capsys):
    rows = benchmark.pedantic(ablate_factoring, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_ablation("Factoring policy (ground-truth peak):", rows))
    # The heuristic must never lose to *both* extremes at once by much:
    # it should match the better extreme on most workloads.
    matched = sum(
        1 for r in rows
        if r.totals["auto"] <= min(r.totals["always"], r.totals["never"])
    )
    assert matched >= len(rows) // 2


def test_chain_dp_ablation(benchmark, capsys):
    rows = benchmark.pedantic(ablate_chain_dp, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_ablation("Chain DP vs EQ 5 (ground-truth peak):", rows))
    # The precise DP never does worse on chains.
    assert all(r.totals["triple_dp"] <= r.totals["eq5"] for r in rows)


def test_ordering_ablation(benchmark, capsys):
    rows = benchmark.pedantic(ablate_orderings, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_ablation("First-fit ordering:", rows))
    # The reference study's finding: duration ordering wins on average.
    dur = sum(r.totals["ffdur"] for r in rows)
    start = sum(r.totals["ffstart"] for r in rows)
    assert dur <= start


def test_periodicity_ablation(benchmark, capsys):
    rows = benchmark.pedantic(ablate_periodicity, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_ablation("Periodic lifetimes vs solid envelopes:", rows))
    # Periodicity awareness can only remove conflicts.
    assert all(r.totals["periodic"] <= r.totals["solid"] for r in rows)


def test_merging_ablation(benchmark, capsys):
    rows = benchmark.pedantic(ablate_merging, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_ablation("CBP-zero buffer merging:", rows))
    assert all(r.totals["merged"] <= r.totals["base"] for r in rows)
