"""Rate-scaling benchmark: symbolic engine vs firing interpreter.

Writes the ``BENCH_PR3.json`` perf trajectory file.  Two graph
families, each swept across repetition-vector scales:

* ``updown_xS`` — the 3-actor up/down-sampler chain
  ``A -S/1-> B -1/S-> C`` under the SAS ``A(S B)C``: the minimal graph
  whose firing count (``S + 2``) grows without bound while the schedule
  tree stays 5 nodes.  ``S`` sweeps x10 ... x10^6.
* ``cddat_xJ`` — the paper's CD-to-DAT converter under blocking factor
  ``J`` (q sums to 612 J), post-optimized by DPPO: a realistic deep
  chain with nested loops and thousands of coarse episodes.

Each row times the four interpreter observables (``max_tokens``,
``coarse_live_intervals``, ``max_live_tokens``, ``validate_schedule``)
under ``backend="symbolic"``; where the flattened schedule stays under
``MAX_INTERP_FIRINGS`` firings the same observables are also timed
under ``backend="interpreter"``, asserted bit-identical, and the
speedup recorded in the row's meta.  Larger scales record the
interpreter as timed out — running it would take minutes to hours,
which is the point of the engine.

Usage::

    python benchmarks/bench_symbolic.py --out BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.ptolemy_demos import cd_to_dat  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.scheduling.dppo import dppo  # noqa: E402
from repro.sdf.graph import SDFGraph  # noqa: E402
from repro.sdf.repetitions import repetitions_vector  # noqa: E402
from repro.sdf.schedule import parse_schedule  # noqa: E402
from repro.sdf.simulate import (  # noqa: E402
    coarse_live_intervals,
    max_live_tokens,
    max_tokens,
    validate_schedule,
)
from repro.sdf.symbolic import SymbolicTrace  # noqa: E402
from repro.sdf.transformations import apply_blocking_factor  # noqa: E402

#: Interpreter cost is linear in flattened firings; past this the row
#: records a timeout instead of burning minutes on a foregone result.
MAX_INTERP_FIRINGS = 200_000

OBSERVABLES = (
    max_tokens,
    coarse_live_intervals,
    max_live_tokens,
    validate_schedule,
)


def _run_all(graph, schedule, backend):
    return tuple(fn(graph, schedule, backend=backend) for fn in OBSERVABLES)


def _time_backend(graph, schedule, backend, repeat):
    best = None
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = _run_all(graph, schedule, backend)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return best, result


def updown_chain(scale: int) -> SDFGraph:
    g = SDFGraph(f"updown_x{scale}")
    g.add_actors("ABC")
    g.add_edge("A", "B", scale, 1)
    g.add_edge("B", "C", 1, scale)
    return g


def bench_case(report, name, graph, schedule, repeat, **meta):
    trace = SymbolicTrace.try_build(graph, schedule)
    assert trace is not None, f"{name}: symbolic support expected"
    firings = trace.tree.total_firings()
    sym_wall, sym_result = _time_backend(graph, schedule, "symbolic", repeat)
    meta.update(firings=firings, peak_words=sym_result[2])
    if firings <= MAX_INTERP_FIRINGS:
        interp_wall, interp_result = _time_backend(
            graph, schedule, "interpreter", repeat
        )
        assert sym_result == interp_result, f"{name}: backends disagree"
        meta.update(
            interpreter_wall_s=round(interp_wall, 6),
            identical=True,
            speedup=round(interp_wall / sym_wall, 2) if sym_wall > 0 else None,
        )
    else:
        meta.update(
            interpreter_wall_s=None,
            interpreter=f"timed out (skipped, > {MAX_INTERP_FIRINGS} firings)",
        )
    return report.record(name, sym_wall, **meta)


def run_suite(repeat: int = 5):
    report = TimingReport()

    for scale in (10, 100, 1_000, 10_000, 100_000, 1_000_000):
        graph = updown_chain(scale)
        schedule = parse_schedule(f"A({scale}B)C")
        bench_case(
            report, f"updown_x{scale}", graph, schedule, repeat, scale=scale
        )

    base = cd_to_dat()
    for factor in (1, 100, 10_000):
        graph = apply_blocking_factor(base, factor)
        order = graph.topological_order()
        schedule = dppo(graph, order, repetitions_vector(graph)).schedule
        bench_case(
            report, f"cddat_x{factor}", graph, schedule, repeat,
            blocking_factor=factor,
        )

    return report.rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR3.json")
    parser.add_argument("--repeat", type=int, default=5,
                        help="runs per bench; the minimum wall time is kept")
    args = parser.parse_args(argv)

    rows = run_suite(repeat=args.repeat)
    with open(args.out, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    for row in rows:
        meta = row["meta"]
        if meta.get("interpreter_wall_s") is not None:
            extra = (
                f"  (interpreter {meta['interpreter_wall_s']:.3f}s, "
                f"{meta['speedup']:.1f}x)"
            )
        else:
            extra = "  (interpreter timed out)"
        print(f"{row['bench']:>18}: {row['wall_s']:9.5f}s{extra}")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
