"""Component micro-benchmarks: where the flow's time goes.

Times each stage of figure 21's flow in isolation on a fixed 100-actor
random graph and on the 188-actor qmf12_5d filterbank, so performance
regressions in any one algorithm are visible independently of the
others.  Not a paper table; performance documentation for the library.
"""

import pytest

from repro.sdf.random_graphs import random_sdf_graph
from repro.sdf.repetitions import repetitions_vector
from repro.apps import table1_graph
from repro.scheduling.apgan import apgan
from repro.scheduling.dppo import dppo
from repro.scheduling.rpmc import rpmc
from repro.scheduling.sdppo import sdppo
from repro.lifetimes.intervals import extract_lifetimes
from repro.allocation.first_fit import ffdur
from repro.allocation.intersection_graph import build_intersection_graph


@pytest.fixture(scope="module")
def graph100():
    return random_sdf_graph(100, seed=42)


@pytest.fixture(scope="module")
def prepared(graph100):
    order = rpmc(graph100).order
    schedule = sdppo(graph100, order).schedule
    lifetimes = extract_lifetimes(graph100, schedule)
    return order, schedule, lifetimes


def test_repetitions_vector_100(benchmark, graph100):
    q = benchmark(lambda: repetitions_vector(graph100))
    benchmark.extra_info["actors"] = len(q)


def test_rpmc_100(benchmark, graph100):
    result = benchmark(lambda: rpmc(graph100))
    benchmark.extra_info["actors"] = len(result.order)


def test_apgan_100(benchmark, graph100):
    result = benchmark(lambda: apgan(graph100))
    benchmark.extra_info["actors"] = len(result.order)


def test_dppo_100(benchmark, graph100, prepared):
    order, _, _ = prepared
    result = benchmark(lambda: dppo(graph100, order))
    benchmark.extra_info["cost"] = result.cost


def test_sdppo_100(benchmark, graph100, prepared):
    order, _, _ = prepared
    result = benchmark(lambda: sdppo(graph100, order))
    benchmark.extra_info["cost"] = result.cost


def test_lifetime_extraction_100(benchmark, graph100, prepared):
    _, schedule, _ = prepared
    lifetimes = benchmark(lambda: extract_lifetimes(graph100, schedule))
    benchmark.extra_info["buffers"] = len(lifetimes.lifetimes)


def test_intersection_graph_100(benchmark, prepared):
    _, _, lifetimes = prepared
    wig = benchmark(
        lambda: build_intersection_graph(lifetimes.as_list())
    )
    benchmark.extra_info["edges"] = wig.num_edges()


def test_first_fit_100(benchmark, prepared):
    _, _, lifetimes = prepared
    buffers = lifetimes.as_list()
    wig = build_intersection_graph(buffers)
    allocation = benchmark(lambda: ffdur(buffers, graph=wig))
    benchmark.extra_info["total_words"] = allocation.total


def test_apgan_188_filterbank(benchmark):
    graph = table1_graph("qmf12_5d")
    result = benchmark(lambda: apgan(graph))
    benchmark.extra_info["actors"] = len(result.order)
