"""Compilation-service benchmark: cold vs warm cache, HTTP throughput.

Writes the ``BENCH_PR5.json`` perf trajectory file.  Three suites:

* **cold vs warm (in-process)** — for each system, one cold
  ``CompileService.compile_document`` (cache miss: full pipeline +
  cache write) and repeated warm calls (cache hit: hash-verified read)
  against a throwaway cache.  The warm report must be bit-identical to
  the cold one (:meth:`CompilationReport.canonical`), and the recorded
  ``speedup`` is the acceptance figure (warm must be >= 10x faster on
  CD-DAT).
* **no-cache equivalence** — the same document compiled with the cache
  disabled must canonicalize identically to the cached path's result
  (the service may never change what the pipeline computes).
* **sustained throughput (live HTTP)** — a real ``CompileServer`` on a
  loopback port, hammered with sequential warm ``/compile`` requests;
  reports requests/second including HTTP framing, JSON codec, and the
  verified cache read.

Per-measurement minima over ``--repeat`` interleaved rounds, same as
the other bench files, so background noise cannot inflate one mode.

Usage::

    python benchmarks/bench_serve.py --out BENCH_PR5.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import table1_graph  # noqa: E402
from repro.apps.ptolemy_demos import cd_to_dat  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.sdf.io import to_json  # noqa: E402
from repro.serve import (  # noqa: E402
    ArtifactCache,
    CompileServer,
    CompileService,
)
from repro.serve.client import compile_remote  # noqa: E402

#: Acceptance floor: a warm-cache CD-DAT submit must beat cold by this.
MIN_WARM_SPEEDUP = 10.0

SYSTEMS = {
    "cddat": cd_to_dat,
    "satrec": lambda: table1_graph("satrec"),
}


def bench_cold_warm(report: TimingReport, repeat: int) -> dict:
    """Cold vs warm latency per system; returns speedups by system."""
    speedups = {}
    for name, factory in SYSTEMS.items():
        document = to_json(factory())
        cold_best = warm_best = None
        canonical = None
        for _ in range(max(1, repeat)):
            with tempfile.TemporaryDirectory() as root:
                service = CompileService(cache=ArtifactCache(root))
                t0 = time.perf_counter()
                cold, status = service.compile_document(document)
                cold_wall = time.perf_counter() - t0
                assert status == "miss", status
                t0 = time.perf_counter()
                warm, status = service.compile_document(document)
                warm_wall = time.perf_counter() - t0
                assert status == "hit", status
                assert warm.canonical() == cold.canonical(), (
                    f"warm {name} result differs from cold"
                )
                # The service must not change the pipeline's answer.
                bare, bare_status = CompileService().compile_document(
                    document, use_cache=False
                )
                assert bare_status == "disabled"
                assert bare.canonical() != "" and (
                    json.loads(bare.canonical())
                    == {**json.loads(cold.canonical()), "key": ""}
                ), f"cache-disabled {name} result differs"
                canonical = cold.canonical()
                if cold_best is None or cold_wall < cold_best:
                    cold_best = cold_wall
                if warm_best is None or warm_wall < warm_best:
                    warm_best = warm_wall
        speedup = cold_best / warm_best if warm_best > 0 else float("inf")
        speedups[name] = speedup
        report.record(
            f"serve_cold_{name}", cold_best,
            cache="miss", report_bytes=len(canonical),
        )
        report.record(
            f"serve_warm_{name}", warm_best,
            cache="hit", speedup_vs_cold=round(speedup, 2),
            floor=MIN_WARM_SPEEDUP if name == "cddat" else None,
        )
    return speedups


def bench_http_throughput(
    report: TimingReport, requests: int, repeat: int
) -> float:
    """Warm requests/second through a live loopback server."""
    document = to_json(cd_to_dat())
    best = None
    with tempfile.TemporaryDirectory() as root:
        server = CompileServer(
            CompileService(cache=ArtifactCache(root)),
            port=0, workers=2, queue_limit=64, quiet=True,
        ).start()
        try:
            compile_remote(document, url=server.url)  # fill the cache
            for _ in range(max(1, repeat)):
                t0 = time.perf_counter()
                for _ in range(requests):
                    _, status = compile_remote(document, url=server.url)
                    assert status == "hit", status
                wall = time.perf_counter() - t0
                if best is None or wall < best:
                    best = wall
        finally:
            server.drain()
    rps = requests / best
    report.record(
        "serve_http_warm_throughput", best,
        requests=requests, requests_per_s=round(rps, 1),
    )
    return rps


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR5.json")
    parser.add_argument("--requests", type=int, default=100,
                        help="warm HTTP requests per throughput round")
    parser.add_argument("--repeat", type=int, default=5,
                        help="interleaved rounds; the minimum wall is kept")
    args = parser.parse_args(argv)

    report = TimingReport()
    speedups = bench_cold_warm(report, args.repeat)
    rps = bench_http_throughput(report, args.requests, args.repeat)
    report.write_json(args.out)
    for row in report.rows:
        print(f"{row['bench']:>28}: {row['wall_s']:9.5f}s  {row['meta']}")
    print(f"warm-cache speedups: "
          + ", ".join(f"{k} {v:.1f}x" for k, v in speedups.items()))
    print(f"sustained warm throughput: {rps:.0f} req/s")
    print(f"wrote {args.out}")
    assert speedups["cddat"] >= MIN_WARM_SPEEDUP, (
        f"warm CD-DAT speedup {speedups['cddat']:.1f}x below the "
        f"{MIN_WARM_SPEEDUP}x acceptance floor"
    )


if __name__ == "__main__":
    main()
