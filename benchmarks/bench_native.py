"""Native kernel speedups: the cc-compiled hot core vs the Python paths.

Writes the ``BENCH_PR8.json`` perf trajectory file.  Three comparisons:

* **chain-DP stage** — the SDPPO dynamic program (EQ 5) over one fixed
  lexical order, timed three ways on random graphs of growing size:
  ``scalar`` (the pure-Python loops, numpy disabled — the pre-numpy
  baseline the 10x acceptance bar is anchored on), ``numpy`` (the
  vectorized path the eligible sizes normally take), and ``native``
  (the cc-compiled kernel).  Every mode must produce bit-identical
  costs, tables and schedules; the native kernel must be >= 10x faster
  than scalar at the largest size.
* **first-fit** — the probe loop over the largest instance's extracted
  lifetimes, python vs native (informational; the loop is rarely the
  bottleneck but must not regress).
* **kernel artifact cache** — one cold ``cc`` build into a throwaway
  cache vs the content-addressed reload every later process pays.
* **end-to-end cold compile** — the same large document through an
  uncached :class:`repro.serve.CompileService` with
  ``backend="python"`` vs ``backend="native"``; reports must be
  bit-identical and native must win wall-clock.

Timings are interleaved round-robin keeping the per-mode minimum, so a
background hiccup cannot charge one mode for noise another escaped.

Usage::

    python benchmarks/bench_native.py --out BENCH_PR8.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.scheduling.common as common  # noqa: E402
from repro.allocation.first_fit import ffdur  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.native import build_kernel, get_kernels  # noqa: E402
from repro.scheduling.pipeline import implement  # noqa: E402
from repro.scheduling.sdppo import sdppo  # noqa: E402
from repro.sdf.io import to_json  # noqa: E402
from repro.sdf.random_graphs import random_sdf_graph  # noqa: E402
from repro.serve import CompileOptions, CompileService  # noqa: E402

#: Acceptance bar: native vs pure-Python scalar DP at the largest size.
MIN_DP_SPEEDUP = 10.0

SIZES = (40, 80, 150, 250)


def _time_sdppo(graph, order, mode):
    """One fresh-context SDPPO run under ``mode``; returns (wall, result).

    A fresh :class:`ChainContext` per run keeps the window-cost cache
    cold, so every mode pays the same precomputation and the timing
    isolates the DP itself.
    """
    saved = common._np
    if mode == "scalar":
        common._np = None
    try:
        context = common.ChainContext(graph, order)
        backend = "native" if mode == "native" else "python"
        t0 = time.perf_counter()
        result = sdppo(graph, order, context=context, backend=backend)
        return time.perf_counter() - t0, result
    finally:
        common._np = saved


def bench_dp(report, repeat):
    """The chain-DP sweep; returns the largest size's scalar/native ratio."""
    modes = ["scalar", "native"] + (["numpy"] if common._np is not None else [])
    final_speedup = None
    for n in SIZES:
        graph = random_sdf_graph(n, seed=5, max_repetition=6)
        order = graph.topological_order()
        best = dict.fromkeys(modes)
        signature = None
        for _ in range(max(1, repeat)):
            for mode in modes:
                wall, result = _time_sdppo(graph, order, mode)
                sig = (result.cost, result.b, str(result.schedule))
                if signature is None:
                    signature = sig
                assert sig == signature, (
                    f"{mode} result differs from scalar at n={n}"
                )
                if best[mode] is None or wall < best[mode]:
                    best[mode] = wall
        speedup_scalar = best["scalar"] / best["native"]
        row = {
            "actors": n,
            "scalar_wall_s": round(best["scalar"], 6),
            "speedup_vs_scalar": round(speedup_scalar, 2),
        }
        if "numpy" in best:
            row["numpy_wall_s"] = round(best["numpy"], 6)
            row["speedup_vs_numpy"] = round(best["numpy"] / best["native"], 2)
        report.record(f"sdppo_native_n{n}", best["native"], **row)
        print(
            f"  sdppo n={n}: scalar {1000 * best['scalar']:8.1f}ms  "
            f"native {1000 * best['native']:7.1f}ms  "
            f"({speedup_scalar:.1f}x)"
        )
        final_speedup = speedup_scalar
    return final_speedup


def bench_first_fit(report, repeat):
    """Python vs native probe loop over a large extracted instance."""
    graph = random_sdf_graph(SIZES[-1], seed=5, max_repetition=6)
    result = implement(graph, "apgan", verify=False, backend="python")
    buffers = result.lifetimes.as_list()
    wig = result.allocation.graph
    best = {"python": None, "native": None}
    totals = set()
    for _ in range(max(1, repeat)):
        for mode in ("python", "native"):
            t0 = time.perf_counter()
            alloc = ffdur(buffers, graph=wig, backend=mode)
            wall = time.perf_counter() - t0
            totals.add((alloc.total, tuple(sorted(alloc.offsets.items()))))
            if best[mode] is None or wall < best[mode]:
                best[mode] = wall
    assert len(totals) == 1, "first-fit backends disagree"
    report.record(
        "first_fit_native", best["native"],
        buffers=len(buffers),
        python_wall_s=round(best["python"], 6),
        speedup_vs_python=round(best["python"] / best["native"], 2),
    )
    print(
        f"  first_fit ({len(buffers)} buffers): python "
        f"{1000 * best['python']:.2f}ms  native {1000 * best['native']:.2f}ms"
    )


def bench_kernel_cache(report):
    """Cold cc build vs content-addressed reload from the artifact cache."""
    with tempfile.TemporaryDirectory(prefix="repro-kernels-") as root:
        t0 = time.perf_counter()
        build_kernel(cache_root=root)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_kernel(cache_root=root)
        warm = time.perf_counter() - t0
    report.record("kernel_cold_build", cold)
    report.record(
        "kernel_cache_load", warm,
        speedup_vs_build=round(cold / warm, 2) if warm > 0 else None,
    )
    print(
        f"  kernel: cold build {1000 * cold:.1f}ms  "
        f"cache load {1000 * warm:.2f}ms"
    )


def bench_end_to_end(report, repeat):
    """Uncached CompileService wall, python vs native backend."""
    graph = random_sdf_graph(SIZES[-1], seed=7, max_repetition=6)
    document = to_json(graph)
    best = {"python": None, "native": None}
    canonical = set()
    for _ in range(max(1, repeat)):
        for mode in ("python", "native"):
            service = CompileService(cache=None)
            t0 = time.perf_counter()
            out, _status = service.compile_document(
                document, CompileOptions(backend=mode)
            )
            wall = time.perf_counter() - t0
            canonical.add(out.canonical())
            if best[mode] is None or wall < best[mode]:
                best[mode] = wall
    assert len(canonical) == 1, "end-to-end backends disagree"
    speedup = best["python"] / best["native"]
    report.record(
        "serve_cold_compile_native", best["native"],
        actors=SIZES[-1],
        python_wall_s=round(best["python"], 6),
        speedup_vs_python=round(speedup, 2),
    )
    print(
        f"  cold compile n={SIZES[-1]}: python {1000 * best['python']:.1f}ms  "
        f"native {1000 * best['native']:.1f}ms  ({speedup:.2f}x)"
    )
    return speedup


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR8.json")
    parser.add_argument("--repeat", type=int, default=3,
                        help="interleaved rounds; the minimum wall is kept")
    args = parser.parse_args(argv)

    if get_kernels() is None:
        print("no native kernel available (no cc or REPRO_NATIVE=0); "
              "nothing to benchmark", file=sys.stderr)
        return 1

    report = TimingReport()
    print("chain-DP stage:")
    dp_speedup = bench_dp(report, args.repeat)
    print("first-fit stage:")
    bench_first_fit(report, args.repeat)
    print("kernel artifact cache:")
    bench_kernel_cache(report)
    print("end-to-end:")
    e2e_speedup = bench_end_to_end(report, args.repeat)

    with open(args.out, "w") as fh:
        json.dump(report.rows, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    assert dp_speedup >= MIN_DP_SPEEDUP, (
        f"native DP speedup {dp_speedup:.1f}x at n={SIZES[-1]} is below "
        f"the {MIN_DP_SPEEDUP}x bar"
    )
    assert e2e_speedup > 1.0, (
        f"native end-to-end cold compile is not a win ({e2e_speedup:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
