"""Sections 11.1.2–11.1.3: satellite receiver strategy comparison.

Regenerates the paper's three-way comparison on ``satrec``:

* nested static SAS with lifetime sharing (paper: 1542 / 991),
* flat-SAS sharing after Ritz et al. (paper: "more than 2000"),
* demand-driven dynamic scheduling after Goddard & Jeffay
  (paper: 1599 non-shared, ~1101 shared, with an unstorable schedule).
"""

from repro.experiments.satrec_comparison import (
    format_satrec,
    run_satrec_comparison,
)

def test_satrec_comparison_report(benchmark, capsys):
    c = benchmark.pedantic(run_satrec_comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 60)
        print("Sections 11.1.2-11.1.3 - satrec strategy comparison")
        print("=" * 60)
        print(format_satrec(c))
    # Shape targets: nested sharing beats flat sharing decisively.
    assert c.flat_shared >= 1.5 * c.nested_shared
    # The dynamic schedule is sum-of-repetitions long.
    assert c.dynamic_schedule_length == 4515
    # Nested sharing beats the nested non-shared implementation ~2x.
    assert c.nested_shared <= 0.65 * c.nested_nonshared


def test_satrec_comparison_runtime(benchmark):
    c = benchmark(run_satrec_comparison)
    benchmark.extra_info["nested_shared"] = c.nested_shared
    benchmark.extra_info["flat_shared"] = c.flat_shared
    benchmark.extra_info["dynamic_shared"] = c.dynamic_shared
