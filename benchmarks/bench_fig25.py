"""Figure 25: bar chart of the improvement percentage per system.

Prints the ASCII rendering of the paper's figure 25 (the last column of
Table 1 as bars) and times the series computation on the quick suite.
"""

from repro.apps import TABLE1_SYSTEMS
from repro.experiments.fig25 import format_fig25, run_fig25

from conftest import full_scale

QUICK = [n for n in TABLE1_SYSTEMS if not n.endswith("5d")]


def test_fig25_report(benchmark, scale, capsys):
    systems = list(TABLE1_SYSTEMS) if full_scale() else QUICK
    series = benchmark.pedantic(
        run_fig25, args=(systems,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("=" * 70)
        print(f"Figure 25 — improvement of shared over non-shared ({scale})")
        print("=" * 70)
        print(format_fig25(series))
    assert all(value > 0 for _, value in series)


def test_fig25_series_runtime(benchmark):
    series = benchmark(lambda: run_fig25(["qmf23_2d", "16qamModem"]))
    benchmark.extra_info["series"] = {s: round(v, 1) for s, v in series}
