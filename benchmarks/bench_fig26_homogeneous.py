"""Figure 26 / section 10.2: the homogeneous M x N sharing family.

Regenerates the claim that the suite allocates exactly M + 1 units on
the M-chains-of-N graph against M(N-1) + 2M for a non-shared
implementation, including the vector-token variant, and times the flow
as M and N grow.
"""

import pytest

from repro.apps.homogeneous import homogeneous_graph
from repro.experiments.homogeneous_exp import (
    format_fig26,
    run_homogeneous_experiment,
)
from repro.scheduling.pipeline import implement_best

from conftest import full_scale

POINTS = ((2, 3), (3, 4), (4, 6), (6, 8), (8, 10))
FULL_POINTS = POINTS + ((10, 12), (12, 16))


def test_fig26_report(benchmark, scale, capsys):
    points = FULL_POINTS if full_scale() else POINTS
    results = benchmark.pedantic(
        run_homogeneous_experiment, kwargs={"points": points},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print("=" * 60)
        print(f"Figure 26 — homogeneous M-chains-of-N graphs ({scale})")
        print("=" * 60)
        print(format_fig26(results))
    for r in results:
        assert r.suite_allocation == r.lower_bound  # exactly M + 1
        assert r.nonshared == r.m * (r.n - 1) + 2 * r.m


def test_fig26_vector_tokens_report(benchmark, capsys):
    """Savings grow with vector tokens (section 10.2's closing remark)."""
    results = benchmark.pedantic(
        run_homogeneous_experiment,
        kwargs={"points": ((4, 6),), "token_size": 64},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print("Figure 26 with 64-word vector tokens:")
        print(format_fig26(results))
    r = results[0]
    assert r.suite_allocation == 5 * 64
    assert r.nonshared == 28 * 64


@pytest.mark.parametrize("m,n", [(4, 6), (8, 10)])
def test_fig26_runtime(benchmark, m, n):
    graph = homogeneous_graph(m, n)
    result = benchmark(lambda: implement_best(graph, verify=False))
    benchmark.extra_info["allocation"] = result.best_shared
    benchmark.extra_info["bound"] = m + 1
