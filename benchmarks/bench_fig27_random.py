"""Figure 27: the six random-graph charts.

Regenerates all six series of the paper's figure 27 — shared-over-
non-shared improvement, allocation vs the optimistic/pessimistic MCW
estimates, allocation vs the SDPPO estimate, and the RPMC/APGAN margin
and win rate — over randomly generated SDF graphs of increasing size.

At the default (reduced) scale: 12 graphs per size at sizes 20/50/100.
Set REPRO_FULL_SCALE=1 for the paper's 100 graphs per size at
20/50/100/150.
"""

from repro.experiments.random_graphs import (
    density_sweep,
    format_fig27,
    run_random_graph_experiment,
)
from repro.sdf.random_graphs import random_sdf_graph
from repro.scheduling.pipeline import implement_best

from conftest import full_scale


def test_fig27_report(benchmark, scale, capsys):
    if full_scale():
        sizes, count = (20, 50, 100, 150), 100
    else:
        sizes, count = (20, 50, 100), 12
    stats = benchmark.pedantic(
        run_random_graph_experiment,
        kwargs={"sizes": sizes, "graphs_per_size": count, "seed": 0},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print("=" * 76)
        print(
            f"Figure 27 — random graph experiments "
            f"({count} graphs/size, {scale})"
        )
        print("=" * 76)
        print(format_fig27(stats))
    for s in stats:
        # (a) sharing always helps; (b) allocation >= optimistic bound.
        assert s.improvement_pct > 0
        assert s.alloc_over_mco_pct >= 0
        assert 0.0 <= s.rpmc_wins_fraction <= 1.0


def test_fig27_density_sweep(benchmark, capsys):
    """Generator-divergence probe (EXPERIMENTS.md fig 27(a) note)."""
    rows = benchmark.pedantic(density_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Improvement vs extra-edge density (30-node graphs):")
        for row in rows:
            print(
                f"  density {row['density']:>4}: "
                f"{row['improvement_pct']:5.1f}% improvement"
            )
    # Denser graphs share no better than sparse ones.
    assert rows[0]["improvement_pct"] >= rows[-1]["improvement_pct"] - 5.0


def test_fig27_single_graph_runtime(benchmark):
    """Time one 50-node graph through both flows (the sweep's unit)."""
    graph = random_sdf_graph(50, seed=42)
    result = benchmark(lambda: implement_best(graph, verify=False))
    benchmark.extra_info["best_shared"] = result.best_shared


def test_fig27_large_graph_runtime(benchmark):
    graph = random_sdf_graph(100, seed=42)
    result = benchmark(lambda: implement_best(graph, verify=False))
    benchmark.extra_info["best_shared"] = result.best_shared
