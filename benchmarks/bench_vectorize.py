"""Vectorized firing blocks: the throughput/memory Pareto frontier.

Writes the ``BENCH_PR10.json`` trajectory file.  Two measurements:

* **budget sweep** — each system's SDPPO schedule is blocked under a
  sweep of memory budgets (0, the baseline pool total, 1.5x, 2x, and
  unconstrained) and every point records the dispatch-block count, the
  amortization (firings per block) and the honest re-costed pool total.
  Reading the rows budget-ascending *is* the Pareto frontier the docs
  chapter discusses: words buy blocks.  Every round asserts the batched
  closed-form backend reproduces all four interpreter observables on
  the blocked schedule bit for bit, and that the packed total never
  exceeds the budget that claimed it.
* **VM wall clock** — the unconstrained blocked artifact runs on both
  execution engines, firing-at-a-time ``SharedMemoryVM`` vs
  block-at-a-time ``BatchedVM``, interleaved round-robin keeping the
  per-engine minimum.  Firing counts and pool high-water marks must be
  identical; the wall ratio is what the blocking actually buys at
  dispatch time.

The acceptance bar: at the unconstrained point every system's
amortization is at least ``MIN_AMORTIZATION`` firings per dispatch
block over firing-at-a-time (the baseline schedule's blocks all carry
factor-1 leaves only when fully nested; CD-DAT lands at ~100x).

Usage::

    python benchmarks/bench_vectorize.py --out BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.allocation.first_fit import first_fit  # noqa: E402
from repro.apps import cd_to_dat, satellite_receiver  # noqa: E402
from repro.codegen.batched_vm import BatchedVM  # noqa: E402
from repro.codegen.vm import SharedMemoryVM  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.lifetimes.intervals import extract_lifetimes  # noqa: E402
from repro.scheduling.pipeline import implement  # noqa: E402
from repro.scheduling.vectorize import vectorize_schedule  # noqa: E402
from repro.sdf.random_graphs import random_sdf_graph  # noqa: E402
from repro.sdf.repetitions import repetitions_vector  # noqa: E402
from repro.sdf.simulate import (  # noqa: E402
    coarse_live_intervals,
    max_live_tokens,
    max_tokens,
    validate_schedule,
)

#: Acceptance bar: firings per dispatch block at the unconstrained point.
MIN_AMORTIZATION = 3.0

#: Periods each VM executes in the wall-clock comparison.
VM_PERIODS = 4


def _systems():
    return [
        ("cddat", cd_to_dat()),
        ("satrec", satellite_receiver()),
        ("random40", random_sdf_graph(40, seed=5, max_repetition=12)),
    ]


def _assert_bit_identity(graph, schedule, label):
    """All four observables, batched closed forms vs the interpreter."""
    for name, fn in (
        ("validate_schedule", validate_schedule),
        ("max_tokens", max_tokens),
        ("coarse_live_intervals", coarse_live_intervals),
        ("max_live_tokens", max_live_tokens),
    ):
        batched = fn(graph, schedule, backend="batched")
        interp = fn(graph, schedule, backend="interpreter")
        assert batched == interp, (
            f"{label}: {name} batched != interpreter "
            f"({batched!r} != {interp!r})"
        )


def bench_budget_sweep(report):
    """The Pareto sweep; returns unconstrained amortizations by system."""
    unconstrained = {}
    for system, graph in _systems():
        q = repetitions_vector(graph)
        base = implement(graph, "rpmc", verify=False)
        total = base.allocation.total
        budgets = [
            ("b0", 0),
            ("base", total),
            ("1.5x", (3 * total) // 2),
            ("2x", 2 * total),
            ("inf", None),
        ]
        print(f"  {system}: baseline {total} words, "
              f"schedule {base.sdppo_schedule}")
        for tag, budget in budgets:
            t0 = time.perf_counter()
            vec = vectorize_schedule(
                graph, base.sdppo_schedule, q, memory_budget=budget
            )
            wall = time.perf_counter() - t0
            _assert_bit_identity(graph, vec.schedule, f"{system}/{tag}")
            assert vec.cost is not None, f"{system}/{tag}: uncostable"
            if budget is not None:
                assert vec.cost <= max(budget, vec.baseline_cost), (
                    f"{system}/{tag}: cost {vec.cost} over budget {budget}"
                )
            if budget == 0:
                assert vec.steps == 0, (
                    f"{system}/b0: budget 0 still applied {vec.steps} "
                    f"fissions"
                )
            report.record(
                f"vectorize_{system}_{tag}", wall,
                budget=budget,
                cost_words=vec.cost,
                baseline_words=vec.baseline_cost,
                blocks=vec.blocks,
                baseline_blocks=vec.baseline_blocks,
                firings=vec.firings,
                amortization=round(vec.amortization, 2),
                fissions=vec.steps,
                schedule=str(vec.schedule),
            )
            print(
                f"    budget {tag:>5}: {vec.blocks:4d} blocks "
                f"({vec.amortization:6.1f} firings/block), "
                f"{vec.cost:5d} words"
            )
            if budget is None:
                unconstrained[system] = vec
    return unconstrained


def bench_vm_wall(report, unconstrained, repeat):
    """Scalar vs batched VM on each unconstrained blocked artifact."""
    for system, graph in _systems():
        vec = unconstrained[system]
        q = repetitions_vector(graph)
        lifetimes = extract_lifetimes(graph, vec.schedule, q)
        allocation = first_fit(lifetimes.as_list())
        best = {"scalar": None, "batched": None}
        marks = set()
        for _ in range(max(1, repeat)):
            for mode, vm_class in (
                ("scalar", SharedMemoryVM), ("batched", BatchedVM),
            ):
                vm = vm_class(graph, lifetimes, allocation)
                t0 = time.perf_counter()
                vm.run(periods=VM_PERIODS)
                wall = time.perf_counter() - t0
                marks.add((
                    vm.firings,
                    tuple(sorted(vm.firings_per_actor.items())),
                    vm.peak_address,
                ))
                if best[mode] is None or wall < best[mode]:
                    best[mode] = wall
        assert len(marks) == 1, f"{system}: VM engines disagree: {marks}"
        speedup = best["scalar"] / best["batched"]
        report.record(
            f"vm_batched_{system}", best["batched"],
            periods=VM_PERIODS,
            firings=VM_PERIODS * vec.firings,
            scalar_wall_s=round(best["scalar"], 6),
            speedup_vs_scalar=round(speedup, 2),
        )
        print(
            f"  {system}: scalar {1000 * best['scalar']:8.1f}ms  "
            f"batched {1000 * best['batched']:7.1f}ms  ({speedup:.1f}x)"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--repeat", type=int, default=3,
                        help="interleaved VM rounds; the minimum is kept")
    args = parser.parse_args(argv)

    report = TimingReport()
    print("budget sweep:")
    unconstrained = bench_budget_sweep(report)
    print("vm wall clock:")
    bench_vm_wall(report, unconstrained, args.repeat)

    with open(args.out, "w") as fh:
        json.dump(report.rows, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    for system, vec in unconstrained.items():
        assert vec.amortization >= MIN_AMORTIZATION, (
            f"{system}: unconstrained amortization {vec.amortization:.1f} "
            f"firings/block is below the {MIN_AMORTIZATION}x bar"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
