"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation section: it prints the same rows/series the paper reports
(captured with ``-s`` or in the benchmark's ``extra_info``) and times
the underlying computation with pytest-benchmark.

Set ``REPRO_FULL_SCALE=1`` to run the figure 27 sweep at the paper's
full scale (100 graphs per size, sizes up to 150 nodes); the default
uses reduced counts so the whole suite completes in a few minutes.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    return "full" if full_scale() else "reduced"
