"""Figure 3 / section 5: the buffer-sharing granularity spectrum.

The paper adopts the coarsest sharing model, arguing the finer levels
"although requiring less memory theoretically, may be practically
infeasible" — this bench measures exactly what that choice costs: the
shared-memory requirement at every loop-nest aggregation depth, down to
the fine-grained token count, for practical systems.
"""

from repro.apps import table1_graph
from repro.lifetimes.granularity import fine_grained_peak, granularity_levels
from repro.scheduling.pipeline import implement


def test_fig3_granularity_report(benchmark, capsys):
    systems = ["qmf23_2d", "16qamModem", "satrec", "overAddFFT"]

    def sweep():
        rows = []
        for name in systems:
            graph = table1_graph(name)
            result = implement(graph, "rpmc", verify=False)
            levels = granularity_levels(graph, result.sdppo_schedule)
            fine = fine_grained_peak(graph, result.sdppo_schedule)
            rows.append((name, levels, fine, result.allocation.total))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("=" * 64)
        print("Figure 3 - sharing-granularity spectrum (live words)")
        print("=" * 64)
        for name, levels, fine, allocated in rows:
            steps = "  ".join(f"d{d}={v}" for d, v in levels)
            print(f"{name:>12}: {steps}  fine={fine}  (allocated {allocated})")
    for name, levels, fine, allocated in rows:
        values = [v for _, v in levels]
        # Coarser never needs less memory than finer.
        assert values == sorted(values, reverse=True), name
        assert values[-1] >= fine, name
        # The paper's trade: the adopted per-episode coarse model (the
        # allocated pool) costs more than the fine-grained bound, but
        # stays within a small factor on practical systems — that is
        # what makes the "practically feasible" choice defensible.
        assert allocated <= 3 * fine, name
