"""Optimality gap of the heuristics where the exact optimum is computable.

Context for section 7's NP-completeness argument: on small random
graphs, compare RPMC and APGAN against the exact minimum over all
topological sorts, under both buffer models.  Expected narrative (and
measured): APGAN is optimal for the non-shared metric on nearly every
small graph (it is provably optimal for a broad class [3]); RPMC is
closer to optimal under the shared metric — the same RPMC-vs-APGAN
split figure 27(e)/(f) reports.
"""

from repro.experiments.optimality_gap import format_gap, run_optimality_gap


def test_nonshared_gap(benchmark, capsys):
    rows = benchmark.pedantic(
        run_optimality_gap,
        kwargs={"seeds": range(10), "num_actors": 7, "objective": "nonshared"},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Non-shared optimality gap (7-actor random graphs):")
        print(format_gap(rows))
    assert rows
    # APGAN's provable-optimality class covers most of these graphs.
    apgan_optimal = sum(1 for r in rows if r.apgan == r.optimal)
    assert apgan_optimal >= len(rows) // 2
    # Heuristics stay within 25% of optimal on small graphs.
    for r in rows:
        assert r.rpmc_gap_pct <= 25.0
        assert r.apgan_gap_pct <= 25.0


def test_shared_gap(benchmark, capsys):
    rows = benchmark.pedantic(
        run_optimality_gap,
        kwargs={"seeds": range(8), "num_actors": 6, "objective": "shared"},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print("Shared optimality gap (6-actor random graphs):")
        print(format_gap(rows))
    assert rows
    mean_rpmc = sum(r.rpmc_gap_pct for r in rows) / len(rows)
    mean_apgan = sum(r.apgan_gap_pct for r in rows) / len(rows)
    # The paper's shared-model finding: RPMC beats APGAN on average.
    assert mean_rpmc <= mean_apgan
