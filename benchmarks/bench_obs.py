"""Observability overhead: tracing must be free when disabled.

Writes the ``BENCH_PR4.json`` perf trajectory file.  The workload is
the PR 1 random-search benchmark (satrec, serial), run three ways:

* ``bare`` — ``recorder=None``: the instrumentation call sites take
  their ``is None`` fast path; this is the pre-observability baseline.
* ``null`` — an explicit :class:`repro.obs.NullRecorder`: the disabled
  recorder a caller passes when tracing is wired up but switched off.
  ``obs.active`` collapses it to the bare path at the pipeline entry;
  this is the configuration the 2% budget applies to — disabled
  tracing may not tax the pipeline.
* ``traced`` — a full :class:`repro.obs.TraceRecorder`; its wall time
  and recording volume are reported for information only.

The three modes are interleaved round-robin and the minimum wall per
mode is kept, so a background hiccup cannot charge one mode for noise
another mode escaped.

Usage::

    python benchmarks/bench_obs.py --out BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.apps import table1_graph  # noqa: E402
from repro.baselines.random_search import random_search  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402

#: Disabled-recorder overhead budget: null may cost at most 2% over bare.
MAX_OVERHEAD = 1.02


def _workload(graph, trials, recorder):
    return random_search(graph, trials=trials, seed=0, recorder=recorder)


def _timed(graph, trials, recorder):
    t0 = time.perf_counter()
    result = _workload(graph, trials, recorder)
    return time.perf_counter() - t0, result


def run_suite(system="satrec", trials=200, repeat=7):
    graph = table1_graph(system)
    modes = ("bare", "null", "traced")
    best = dict.fromkeys(modes)
    totals = {}
    trace_rec = None
    for _ in range(max(1, repeat)):
        for mode in modes:
            if mode == "bare":
                recorder = None
            elif mode == "null":
                recorder = obs.NullRecorder()
            else:
                recorder = obs.TraceRecorder()
            wall, result = _timed(graph, trials, recorder)
            totals.setdefault(mode, result.best_total)
            # Tracing must never change the search outcome.
            assert result.best_total == totals["bare"], mode
            if best[mode] is None or wall < best[mode]:
                best[mode] = wall
                if mode == "traced":
                    trace_rec = recorder

    overhead = best["null"] / best["bare"] if best["bare"] > 0 else 1.0
    counters = trace_rec.counter_totals()
    spans = sum(1 for _ in trace_rec.iter_spans())

    report = TimingReport()
    report.record(
        f"random_search_{system}_bare", best["bare"],
        trials=trials, recorder="none", best_total=totals["bare"],
    )
    report.record(
        f"random_search_{system}_null", best["null"],
        trials=trials, recorder="null",
        overhead_vs_bare=round(overhead, 4), budget=MAX_OVERHEAD,
    )
    report.record(
        f"random_search_{system}_traced", best["traced"],
        trials=trials, recorder="trace", spans=spans,
        counter_totals=counters,
    )
    return report.rows, overhead


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR4.json")
    parser.add_argument("--system", default="satrec")
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--repeat", type=int, default=7,
                        help="interleaved rounds; the minimum wall is kept")
    args = parser.parse_args(argv)

    rows, overhead = run_suite(
        system=args.system, trials=args.trials, repeat=args.repeat
    )
    with open(args.out, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    for row in rows:
        print(f"{row['bench']:>30}: {row['wall_s']:9.5f}s")
    print(f"disabled-recorder overhead: {overhead:.4f}x "
          f"(budget {MAX_OVERHEAD}x)")
    print(f"wrote {args.out}")
    assert overhead <= MAX_OVERHEAD, (
        f"NullRecorder overhead {overhead:.4f}x exceeds "
        f"{MAX_OVERHEAD}x budget"
    )


if __name__ == "__main__":
    main()
