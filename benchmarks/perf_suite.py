"""Timed perf suite: writes the ``BENCH_PR1.json`` perf trajectory file.

Runs a reduced-scale set of the paper's hottest end-to-end flows and
records wall-clock times in a machine-readable report at the repo root,
one row per benchmark::

    {"bench": name, "wall_s": float, "meta": {...}}

Subsequent perf PRs diff their own ``BENCH_PRn.json`` against this
baseline.  Usage::

    python benchmarks/perf_suite.py --out BENCH_PR1.json
    python benchmarks/perf_suite.py --out BENCH_PR1.json --baseline seed.json

``--baseline`` merges a previous run of the same suite (e.g. captured on
the seed implementation) into each row's ``meta`` as ``seed_wall_s`` and
``speedup``, so the report carries its own before/after evidence.

The main rows run serially (``jobs=1``) so they compare like-for-like
against serial baselines regardless of ``REPRO_JOBS``; when the machine
has more than one core the suite appends ``*_parallel`` rows that
exercise the process-pool runner on the two fan-out drivers.  Each
bench is repeated (``--repeat``, default 3) and the minimum wall time
recorded, which filters scheduler/VM jitter out of the trajectory.  The
configuration is intentionally small enough to finish in about a minute.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import table1_graph  # noqa: E402
from repro.baselines.random_search import random_search  # noqa: E402
from repro.experiments.random_graphs import run_random_graph_experiment  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.scheduling.pipeline import implement_best  # noqa: E402


def _bench(report, name, fn, repeat, **meta):
    """Record ``name`` as the min wall time of ``repeat`` runs of ``fn``.

    ``fn`` returns a dict of result metadata (identical across repeats —
    every bench is deterministic); merged into the row's meta.
    """
    best = None
    result = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return report.record(name, best, **{**meta, **result})


def run_suite(repeat: int = 3):
    """Run every benchmark; returns a list of report rows."""
    report = TimingReport()

    for system in ("satrec", "qmf12_3d"):
        graph = table1_graph(system)
        _bench(
            report,
            f"implement_best_{system}",
            lambda graph=graph: {
                "best_shared": implement_best(graph, verify=False).best_shared
            },
            repeat,
            actors=graph.num_actors,
        )

    graph = table1_graph("satrec")
    trials = 200
    row = _bench(
        report,
        "random_search_satrec_200",
        lambda: {
            "best_total": random_search(
                graph, trials=trials, seed=0, jobs=1
            ).best_total
        },
        repeat,
        trials=trials,
    )
    if row["wall_s"] > 0:
        row["meta"]["trials_per_s"] = round(trials / row["wall_s"], 2)

    sizes, count = (20, 50), 8

    def _fig27(jobs):
        stats = run_random_graph_experiment(
            sizes=sizes, graphs_per_size=count, seed=0, jobs=jobs
        )
        return {
            "improvement_pct": [round(s.improvement_pct, 3) for s in stats]
        }

    _bench(
        report,
        "fig27_sweep_reduced",
        lambda: _fig27(jobs=1),
        repeat,
        sizes=list(sizes),
        graphs_per_size=count,
    )

    cores = os.cpu_count() or 1
    if cores > 1:
        jobs = min(cores, 4)
        _bench(
            report,
            "random_search_satrec_200_parallel",
            lambda: {
                "best_total": random_search(
                    graph, trials=trials, seed=0, jobs=jobs
                ).best_total
            },
            repeat,
            trials=trials,
            jobs=jobs,
        )
        _bench(
            report,
            "fig27_sweep_reduced_parallel",
            lambda: _fig27(jobs=jobs),
            repeat,
            sizes=list(sizes),
            graphs_per_size=count,
            jobs=jobs,
        )

    return report.rows


def merge_baseline(rows, baseline_rows):
    by_name = {row["bench"]: row for row in baseline_rows}
    for row in rows:
        seed = by_name.get(row["bench"])
        if seed is None:
            continue
        row["meta"]["seed_wall_s"] = seed["wall_s"]
        if row["wall_s"] > 0:
            row["meta"]["speedup"] = round(seed["wall_s"] / row["wall_s"], 2)
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--baseline", default=None,
                        help="previous run to merge as seed_wall_s/speedup")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per bench; the minimum wall time is kept")
    args = parser.parse_args(argv)

    baseline_rows = None
    if args.baseline:
        # Read before the (minutes-long) suite so a bad path fails fast.
        try:
            with open(args.baseline) as fh:
                baseline_rows = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    rows = run_suite(repeat=args.repeat)
    if baseline_rows is not None:
        rows = merge_baseline(rows, baseline_rows)
    with open(args.out, "w") as fh:
        json.dump(rows, fh, indent=2)
        fh.write("\n")
    for row in rows:
        extra = ""
        if "speedup" in row["meta"]:
            extra = (
                f"  (seed {row['meta']['seed_wall_s']:.3f}s, "
                f"{row['meta']['speedup']:.2f}x)"
            )
        print(f"{row['bench']:>33}: {row['wall_s']:8.3f}s{extra}")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
