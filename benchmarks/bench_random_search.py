"""Section 10.1: random topological sorts versus RPMC/APGAN.

The paper's experiment: how many random topological sorts does it take
to match the heuristics, and how close does random search get with a
fixed budget?  On ~25-node graphs ~50 trials matched the heuristics and
1000 trials barely beat them; on ~200-node graphs 100 trials lost
outright and took minutes.

Reduced scale: 50 trials on satrec/blockVox, 20 on qmf12_3d.  Full
scale adds the 188-node qmf12_5d with 100 trials.
"""

import pytest

from repro.apps import table1_graph
from repro.baselines.random_search import random_search
from repro.scheduling.pipeline import implement_best

from conftest import full_scale


def _compare(name, trials, capsys):
    graph = table1_graph(name)
    heuristic = implement_best(graph, verify=False).best_shared
    search = random_search(graph, trials=trials, seed=0)
    matched = search.trials_to_reach(heuristic)
    with capsys.disabled():
        print()
        print(
            f"{name}: heuristic best = {heuristic}, random best after "
            f"{trials} trials = {search.best_total}, trials to match = "
            f"{matched if matched is not None else f'>{trials}'}"
        )
    return heuristic, search


def test_random_search_satrec(benchmark, scale, capsys):
    trials = 1000 if full_scale() else 50
    heuristic, search = benchmark.pedantic(
        _compare, args=("satrec", trials, capsys), rounds=1, iterations=1
    )
    # Random search cannot beat the heuristics by much (paper: 980 vs
    # 991 after 1000 trials, i.e. ~1%).
    assert search.best_total >= 0.85 * heuristic


def test_random_search_blockvox(benchmark, scale, capsys):
    trials = 1000 if full_scale() else 50
    heuristic, search = benchmark.pedantic(
        _compare, args=("blockVox", trials, capsys), rounds=1, iterations=1
    )
    assert search.best_total >= 0.85 * heuristic


def test_random_search_large_filterbank(benchmark, scale, capsys):
    name = "qmf12_5d" if full_scale() else "qmf12_3d"
    trials = 100 if full_scale() else 20
    heuristic, search = benchmark.pedantic(
        _compare, args=(name, trials, capsys), rounds=1, iterations=1
    )
    # On larger graphs random search loses (paper: 79 vs 58).
    assert search.best_total >= heuristic * 0.9


def test_random_search_runtime(benchmark):
    """Time per random trial (the cost the paper measured in minutes)."""
    graph = table1_graph("satrec")
    result = benchmark(lambda: random_search(graph, trials=5, seed=1))
    benchmark.extra_info["best_total"] = result.best_total
