"""Compile-farm benchmark: closed-loop load against the worker pool.

Writes the ``BENCH_PR6.json`` perf trajectory file (and, with the
batch sweep, ``BENCH_PR9.json``).  Four suites:

* **baseline (PR5-style)** — sequential warm ``/compile`` requests via
  :func:`compile_remote` (one TCP connection per request, no farm),
  exactly how ``bench_serve.py`` measured the PR5 figure of
  1116.8 req/s.  Re-measured here so the speedup comparison is
  same-machine, same-run.
* **warm throughput sweep** — for each farm size in 1/2/4/8 worker
  processes, a keep-alive connection hammers the server with warm
  CD-DAT requests; the acceptance floor is ``>= 5x`` the measured
  baseline at 4 workers (the farm fast path: memoized parse/route,
  per-worker report tiers, lean HTTP framing).
* **mixed workload sweep** — per farm size, several closed-loop client
  threads (each with its own keep-alive connection) replay a mixed
  schedule over CD-DAT + satrec + random SDF graphs, salted with
  never-seen-before cold graphs (true cache misses).  Reports
  throughput and p50/p95/p99 latency.
* **batch sweep (PR 9, ``BENCH_PR9.json``)** — warm ``/batch``
  requests through the farm (per-item sharding, shard groups on
  concurrent threads, worker-rendered bytes spliced verbatim) against
  the PR 6 in-process batch path as the same-run baseline.  Every
  item of every response is verified bit-identical to a direct
  :func:`implement` run; the acceptance floor is ``>= 3x`` the
  in-process items/s at 4 workers.

Every response is verified bit-identical — the served report's
``canonical()`` must equal a reference computed by calling
:func:`repro.scheduling.pipeline.implement` directly (the farm may
never change what the pipeline computes, on any tier, hot or cold).

Per-measurement minima over ``--repeat`` interleaved rounds, same as
the other bench files, so background noise cannot inflate one mode.

Usage::

    python benchmarks/bench_farm.py --out BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import socket
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import table1_graph  # noqa: E402
from repro.apps.ptolemy_demos import cd_to_dat  # noqa: E402
from repro.experiments.runner import TimingReport  # noqa: E402
from repro.scheduling.pipeline import implement  # noqa: E402
from repro.sdf.io import from_json, to_json  # noqa: E402
from repro.sdf.random_graphs import random_sdf_graph  # noqa: E402
from repro.serve import (  # noqa: E402
    ArtifactCache,
    CompileServer,
    CompileService,
)
from repro.serve.client import compile_remote  # noqa: E402
from repro.serve.report import CompilationReport  # noqa: E402

#: Acceptance floor: warm farm throughput at 4 workers must beat the
#: PR5-style (per-request-connection, no farm) baseline by this factor.
MIN_FARM_SPEEDUP = 5.0

#: The PR5 figure this PR set out to beat, recorded for the trajectory.
PR5_BASELINE_RPS = 1116.8

WORKER_SWEEP = (1, 2, 4, 8)

#: Acceptance floor for the PR 9 batch sweep: warm /batch items/s at
#: 4 farm workers must beat the in-process batch path by this factor.
MIN_BATCH_SPEEDUP = 3.0

BATCH_WORKER_SWEEP = (1, 2, 4)

_cold_seeds = itertools.count(10_000)


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def reference_canonical(document):
    """What the pipeline itself says this document compiles to.

    Runs :func:`implement` directly — no service, no cache, no farm —
    and returns the canonical payload with the volatile ``key`` field
    cleared, the yardstick every served report must match.
    """
    graph = from_json(document)
    result = implement(graph)
    report = CompilationReport.from_result(result, graph.name, seed=0)
    payload = json.loads(report.canonical())
    payload["key"] = ""
    return payload


def served_canonical(body):
    """Canonical payload of one ``/compile`` response, key cleared."""
    payload = json.loads(body.decode("utf-8"))
    report = CompilationReport.from_json(payload["report"])
    canonical = json.loads(report.canonical())
    canonical["key"] = ""
    return canonical


class KeepAliveClient:
    """A raw keep-alive HTTP/1.1 connection to the loopback server.

    ``compile_remote`` (urllib) opens a fresh TCP connection per
    request, which is exactly the per-request overhead the farm's
    front end was built to avoid; the closed-loop generator needs
    persistent connections to measure the server, not the client.
    """

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.buf = b""

    def post(self, path, body):
        """POST ``body`` to ``path``; returns ``(status, body_bytes)``."""
        self.sock.sendall(
            b"POST " + path.encode() + b" HTTP/1.1\r\n"
            b"Host: localhost\r\nContent-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body
        )
        while b"\r\n\r\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection")
            self.buf += chunk
        head, _, self.buf = self.buf.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        status = int(lines[0].split()[1])
        length = 0
        for line in lines[1:]:
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(self.buf) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed connection")
            self.buf += chunk
        body, self.buf = self.buf[:length], self.buf[length:]
        return status, body

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def build_workload():
    """The named mixed-workload documents and their references."""
    documents = {
        "cddat": to_json(cd_to_dat()),
        "satrec": to_json(table1_graph("satrec")),
    }
    for index, seed in enumerate((7, 8, 9)):
        graph = random_sdf_graph(16, seed=seed)
        documents[f"random{index}"] = to_json(graph)
    return {
        name: (
            json.dumps(
                {"graph": doc, "options": {}, "cache": True}
            ).encode("utf-8"),
            reference_canonical(doc),
        )
        for name, doc in documents.items()
    }


def fresh_cold_item():
    """A never-before-compiled document (a guaranteed cache miss)."""
    doc = to_json(random_sdf_graph(14, seed=next(_cold_seeds)))
    body = json.dumps(
        {"graph": doc, "options": {}, "cache": True}
    ).encode("utf-8")
    return body, reference_canonical(doc)


def bench_baseline(report, requests, repeat):
    """PR5-style warm throughput: no farm, a connection per request."""
    document = to_json(cd_to_dat())
    best = None
    with tempfile.TemporaryDirectory() as root:
        server = CompileServer(
            CompileService(cache=ArtifactCache(root)),
            port=0, workers=2, queue_limit=64, quiet=True,
        ).start()
        try:
            compile_remote(document, url=server.url)  # fill the cache
            for _ in range(max(1, repeat)):
                t0 = time.perf_counter()
                for _ in range(requests):
                    _, status = compile_remote(document, url=server.url)
                    assert status == "hit", status
                wall = time.perf_counter() - t0
                if best is None or wall < best:
                    best = wall
        finally:
            server.drain()
    rps = requests / best
    report.record(
        "farm_baseline_http", best,
        requests=requests, requests_per_s=round(rps, 1),
        note="PR5-style: no farm, one connection per request",
    )
    return rps


def run_warm_round(server, workload, requests):
    """Sequential warm requests on one keep-alive connection."""
    body, reference = workload["cddat"]
    client = KeepAliveClient(server.host, server.port)
    try:
        status, resp = client.post("/compile", body)
        assert status == 200, (status, resp[:200])
        assert served_canonical(resp) == reference, "warm report differs"
        t0 = time.perf_counter()
        for _ in range(requests):
            status, resp = client.post("/compile", body)
            assert status == 200, (status, resp[:200])
        wall = time.perf_counter() - t0
        assert served_canonical(resp) == reference, "warm report differs"
    finally:
        client.close()
    return wall


def run_mixed_round(server, workload, clients, per_client, cold_every):
    """Closed-loop mixed warm/cold load; returns (wall, latencies)."""
    named = list(workload.values())
    schedules = []
    for c in range(clients):
        schedule = []
        for i in range(per_client):
            if cold_every and i % cold_every == cold_every - 1:
                schedule.append(fresh_cold_item())
            else:
                schedule.append(named[(i + c) % len(named)])
        schedules.append(schedule)
    latencies = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def run_client(schedule):
        client = KeepAliveClient(server.host, server.port)
        local = []
        try:
            barrier.wait()
            for body, reference in schedule:
                t0 = time.perf_counter()
                status, resp = client.post("/compile", body)
                local.append(time.perf_counter() - t0)
                if status != 200:
                    raise AssertionError(
                        f"HTTP {status}: {resp[:200]!r}"
                    )
                if served_canonical(resp) != reference:
                    raise AssertionError("served report differs")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)
        finally:
            client.close()
            with lock:
                latencies.extend(local)

    threads = [
        threading.Thread(target=run_client, args=(schedule,))
        for schedule in schedules
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return wall, latencies


def bench_farm_sweep(report, baseline_rps, args):
    """Warm + mixed suites per farm size; returns warm rps by size."""
    workload = build_workload()
    warm_rps = {}
    for workers in WORKER_SWEEP:
        with tempfile.TemporaryDirectory() as root:
            server = CompileServer(
                CompileService(cache=ArtifactCache(root)),
                port=0, processes=workers, queue_limit=64, quiet=True,
            ).start()
            try:
                warm_best = None
                mixed_best = None
                mixed_lat = []
                for _ in range(max(1, args.repeat)):
                    wall = run_warm_round(
                        server, workload, args.requests
                    )
                    if warm_best is None or wall < warm_best:
                        warm_best = wall
                    wall, latencies = run_mixed_round(
                        server, workload, args.clients,
                        args.mixed_per_client, args.cold_every,
                    )
                    if mixed_best is None or wall < mixed_best:
                        mixed_best = wall
                        mixed_lat = latencies
                mixed_requests = args.clients * args.mixed_per_client
                colds = args.clients * (
                    args.mixed_per_client // args.cold_every
                    if args.cold_every else 0
                )
            finally:
                server.drain()
        rps = args.requests / warm_best
        warm_rps[workers] = rps
        report.record(
            f"farm_warm_{workers}w", warm_best,
            workers=workers, requests=args.requests,
            requests_per_s=round(rps, 1),
            speedup_vs_baseline=round(rps / baseline_rps, 2),
            floor=MIN_FARM_SPEEDUP if workers == 4 else None,
        )
        mixed_lat.sort()
        report.record(
            f"farm_mixed_{workers}w", mixed_best,
            workers=workers, clients=args.clients,
            requests=mixed_requests, cold=colds,
            requests_per_s=round(mixed_requests / mixed_best, 1),
            p50_ms=round(percentile(mixed_lat, 0.50) * 1000, 3),
            p95_ms=round(percentile(mixed_lat, 0.95) * 1000, 3),
            p99_ms=round(percentile(mixed_lat, 0.99) * 1000, 3),
        )
    return warm_rps


def build_batch_workload(items):
    """One warm ``/batch`` body of ``items`` documents + references.

    Cycles the five mixed-workload graphs, so the batch exercises
    several shards and repeats within the batch (tier hits).
    """
    base = [to_json(cd_to_dat()), to_json(table1_graph("satrec"))]
    base += [to_json(random_sdf_graph(16, seed=s)) for s in (7, 8, 9)]
    references = [reference_canonical(doc) for doc in base]
    docs = [base[i % len(base)] for i in range(items)]
    refs = [references[i % len(base)] for i in range(items)]
    body = json.dumps(
        {"graphs": docs, "options": {}, "cache": True}
    ).encode("utf-8")
    return body, refs


def batch_canonicals(resp_body):
    """Per-item canonical payloads of one ``/batch`` response."""
    payload = json.loads(resp_body.decode("utf-8"))
    out = []
    for item in payload["responses"]:
        assert item.get("status") != "error", item
        report = CompilationReport.from_json(item["report"])
        canonical = json.loads(report.canonical())
        canonical["key"] = ""
        out.append(canonical)
    return out


def run_batch_round(server, body, refs, posts):
    """Sequential warm ``/batch`` posts on one keep-alive connection."""
    client = KeepAliveClient(server.host, server.port)
    try:
        status, resp = client.post("/batch", body)  # warm + verify
        assert status == 200, (status, resp[:200])
        assert batch_canonicals(resp) == refs, "batch reports differ"
        t0 = time.perf_counter()
        for _ in range(posts):
            status, resp = client.post("/batch", body)
            assert status == 200, (status, resp[:200])
        wall = time.perf_counter() - t0
        assert batch_canonicals(resp) == refs, "batch reports differ"
    finally:
        client.close()
    return wall


def bench_batch_sweep(report, args):
    """Warm /batch items/s: in-process baseline, then the farm sweep.

    Every response is verified bit-identical to direct ``implement()``
    runs (``refs``), so the farm path can never trade correctness for
    the speedup this measures.  Returns ``(baseline_ips, farm_ips)``.
    """
    body, refs = build_batch_workload(args.batch_items)
    items_total = args.batch_items * args.batch_posts

    with tempfile.TemporaryDirectory() as root:
        server = CompileServer(
            CompileService(cache=ArtifactCache(root)),
            port=0, processes=0, workers=2, queue_limit=64, quiet=True,
        ).start()
        try:
            base_best = None
            for _ in range(max(1, args.repeat)):
                wall = run_batch_round(
                    server, body, refs, args.batch_posts
                )
                if base_best is None or wall < base_best:
                    base_best = wall
        finally:
            server.drain()
    baseline_ips = items_total / base_best
    report.record(
        "batch_inprocess_baseline", base_best,
        batch_items=args.batch_items, posts=args.batch_posts,
        items_per_s=round(baseline_ips, 1),
        note="PR6 in-process /batch path (no farm)",
    )

    farm_ips = {}
    for workers in BATCH_WORKER_SWEEP:
        with tempfile.TemporaryDirectory() as root:
            server = CompileServer(
                CompileService(cache=ArtifactCache(root)),
                port=0, processes=workers, queue_limit=64, quiet=True,
            ).start()
            try:
                best = None
                for _ in range(max(1, args.repeat)):
                    wall = run_batch_round(
                        server, body, refs, args.batch_posts
                    )
                    if best is None or wall < best:
                        best = wall
            finally:
                server.drain()
        ips = items_total / best
        farm_ips[workers] = ips
        report.record(
            f"batch_farm_{workers}w", best,
            workers=workers, batch_items=args.batch_items,
            posts=args.batch_posts, items_per_s=round(ips, 1),
            speedup_vs_inprocess=round(ips / baseline_ips, 2),
            floor=MIN_BATCH_SPEEDUP if workers == 4 else None,
        )
    return baseline_ips, farm_ips


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR6.json")
    parser.add_argument("--batch-out", default=None,
                        help="also run the PR 9 batch sweep and write "
                             "its trajectory here (e.g. BENCH_PR9.json)")
    parser.add_argument("--batch-only", action="store_true",
                        help="run only the batch sweep (implies "
                             "--batch-out BENCH_PR9.json if unset)")
    parser.add_argument("--batch-items", type=int, default=24,
                        help="documents per /batch request")
    parser.add_argument("--batch-posts", type=int, default=30,
                        help="warm /batch posts per round")
    parser.add_argument("--requests", type=int, default=400,
                        help="warm keep-alive requests per round")
    parser.add_argument("--baseline-requests", type=int, default=120,
                        help="PR5-style baseline requests per round")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop connections in the mixed suite")
    parser.add_argument("--mixed-per-client", type=int, default=60,
                        help="mixed-suite requests per connection")
    parser.add_argument("--cold-every", type=int, default=20,
                        help="every Nth mixed request is a fresh cold "
                             "graph (0 disables)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="interleaved rounds; the minimum wall is kept")
    args = parser.parse_args(argv)
    if args.batch_only and args.batch_out is None:
        args.batch_out = "BENCH_PR9.json"

    if not args.batch_only:
        report = TimingReport()
        baseline_rps = bench_baseline(
            report, args.baseline_requests, args.repeat
        )
        warm_rps = bench_farm_sweep(report, baseline_rps, args)
        report.write_json(args.out)
        for row in report.rows:
            print(f"{row['bench']:>20}: {row['wall_s']:9.5f}s  "
                  f"{row['meta']}")
        print(f"baseline (per-request connections): {baseline_rps:.0f} "
              f"req/s (PR5 recorded {PR5_BASELINE_RPS} req/s)")
        for workers, rps in warm_rps.items():
            print(f"farm warm, {workers} worker(s): {rps:.0f} req/s "
                  f"({rps / baseline_rps:.1f}x baseline)")
        print(f"wrote {args.out}")
        headline = warm_rps[4] / baseline_rps
        assert headline >= MIN_FARM_SPEEDUP, (
            f"4-worker warm throughput {warm_rps[4]:.0f} req/s is only "
            f"{headline:.1f}x the same-run baseline {baseline_rps:.0f} "
            f"req/s — below the {MIN_FARM_SPEEDUP}x acceptance floor"
        )

    if args.batch_out:
        batch_report = TimingReport()
        baseline_ips, farm_ips = bench_batch_sweep(batch_report, args)
        batch_report.write_json(args.batch_out)
        for row in batch_report.rows:
            print(f"{row['bench']:>24}: {row['wall_s']:9.5f}s  "
                  f"{row['meta']}")
        print(f"in-process batch baseline: {baseline_ips:.0f} items/s")
        for workers, ips in farm_ips.items():
            print(f"farm batch, {workers} worker(s): {ips:.0f} items/s "
                  f"({ips / baseline_ips:.1f}x in-process)")
        print(f"wrote {args.batch_out}")
        batch_headline = farm_ips[4] / baseline_ips
        assert batch_headline >= MIN_BATCH_SPEEDUP, (
            f"4-worker warm batch throughput {farm_ips[4]:.0f} items/s "
            f"is only {batch_headline:.1f}x the in-process baseline "
            f"{baseline_ips:.0f} items/s — below the "
            f"{MIN_BATCH_SPEEDUP}x acceptance floor"
        )


if __name__ == "__main__":
    main()
