"""Table 1: overall performance on practical examples.

Regenerates every column of the paper's Table 1 — dppo/sdppo/mco/mcp/
ffdur/ffstart for both RPMC and APGAN plus the BMLB and improvement
percentage — for the full practical benchmark suite, and times the
complete flow on representative systems.

Shape targets (EXPERIMENTS.md): every system improves; the suite
averages >= 50%; satrec lands near the paper's 1542 -> 991 ratio.
"""

import pytest

from repro.apps import TABLE1_SYSTEMS, table1_graph
from repro.experiments.table1 import format_table1, run_table1
from repro.scheduling.pipeline import implement_best

from conftest import full_scale

#: Depth-5 filterbanks are the long poles; include them only at full scale.
QUICK = [n for n in TABLE1_SYSTEMS if not n.endswith("5d")]


def test_table1_report(benchmark, scale, capsys):
    """Print the full Table 1 (all systems at full scale)."""
    systems = list(TABLE1_SYSTEMS) if full_scale() else QUICK
    rows = benchmark.pedantic(
        run_table1, args=(systems,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print("=" * 70)
        print(f"Table 1 — overall performance on practical examples ({scale})")
        print("=" * 70)
        print(format_table1(rows))
    avg = sum(r.improvement for r in rows) / len(rows)
    assert avg >= 40.0
    for row in rows:
        assert row.best_shared <= row.best_nonshared


@pytest.mark.parametrize("system", ["qmf23_2d", "satrec", "blockVox"])
def test_flow_runtime(benchmark, system):
    """Time the complete figure 21 flow per system."""
    graph = table1_graph(system)
    result = benchmark(lambda: implement_best(graph, verify=False))
    benchmark.extra_info["best_shared"] = result.best_shared
    benchmark.extra_info["best_nonshared"] = result.best_nonshared
    benchmark.extra_info["improvement_pct"] = round(
        result.improvement_percent, 1
    )


def test_flow_runtime_large(benchmark):
    """Time the flow on the largest practical system (qmf12_5d, 188 actors)."""
    if not full_scale():
        pytest.skip("set REPRO_FULL_SCALE=1 for the 188-actor benchmark")
    graph = table1_graph("qmf12_5d")
    result = benchmark(lambda: implement_best(graph, verify=False))
    benchmark.extra_info["best_shared"] = result.best_shared
