"""Section 11.1.3: CD-to-DAT input buffering, nested versus flat SAS.

The paper: on the CD-DAT rate converter (period 147 sample periods), a
buffer-optimal nested SAS needs ~11 tokens of input buffering versus 65
for the flat SAS, because nesting spreads the source actor's firings
across the period.  Absolute values depend on the assumed actor
execution times; the shape target is nested << flat.
"""

from repro.experiments.cddat_io import run_cddat_io


def test_cddat_io_report(benchmark, capsys):
    unit = benchmark.pedantic(run_cddat_io, rounds=1, iterations=1)
    weighted = run_cddat_io(
        execution_times={"A": 10, "B": 20, "C": 20, "D": 25, "E": 25, "F": 15}
    )
    with capsys.disabled():
        print()
        print("=" * 60)
        print("Section 11.1.3 - CD-DAT input buffering (samples)")
        print("=" * 60)
        print(f"period: {unit.period_samples} sample periods")
        print(f"{'cost model':>12} {'flat SAS':>9} {'nested SAS':>11}")
        print(f"{'unit':>12} {unit.flat_backlog:>9} {unit.nested_backlog:>11}")
        print(
            f"{'DSP-like':>12} {weighted.flat_backlog:>9} "
            f"{weighted.nested_backlog:>11}"
        )
        print(f"nested schedule: {unit.nested_schedule}")
    assert unit.nested_backlog < unit.flat_backlog
    assert weighted.nested_backlog < weighted.flat_backlog
    # The flat SAS buffers a large fraction of the whole period.
    assert unit.flat_backlog > unit.period_samples // 2


def test_cddat_io_runtime(benchmark):
    result = benchmark(run_cddat_io)
    benchmark.extra_info["flat"] = result.flat_backlog
    benchmark.extra_info["nested"] = result.nested_backlog
