"""ASCII rendering of lifetimes, memory maps, and occupancy profiles.

Text-mode counterparts of the paper's figures, for terminals, logs and
docstrings:

* :func:`render_timeline` — figure 15/17-style chart: one row per
  buffer, ``#`` where it is live over one schedule period;
* :func:`render_memory_map` — the first-fit packing by address range;
* :func:`render_occupancy` — figure 3-style profile: total live words
  per schedule step under the coarse model;
* :func:`render_schedule_tree` — the binary tree of section 8.1 with
  loop factors and durations.

All functions return strings (no printing) so they compose with
reports and tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..allocation.first_fit import Allocation
from .intervals import LifetimeSet
from .periodic import PeriodicLifetime
from .schedule_tree import ScheduleTree, ScheduleTreeNode

__all__ = [
    "render_timeline",
    "render_memory_map",
    "render_occupancy",
    "render_schedule_tree",
]


def render_timeline(
    lifetimes: LifetimeSet, width: int = 64, label_width: int = 24
) -> str:
    """One ``#``-bar row per buffer over one schedule period."""
    span = max(lifetimes.total_span, 1)
    lines = [
        f"buffer lifetimes over one period ({lifetimes.total_span} steps):"
    ]
    for lifetime in lifetimes.as_list():
        row = ["."] * width
        for start, stop in lifetime.intervals():
            lo = int(start * width / span)
            hi = max(lo + 1, -(-stop * width // span))
            for x in range(lo, min(hi, width)):
                row[x] = "#"
        label = f"{lifetime.name} ({lifetime.size}w)"
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")
    return "\n".join(lines)


def render_memory_map(
    lifetimes: LifetimeSet, allocation: Allocation, label_width: int = 24
) -> str:
    """Buffers by ascending address range in the shared pool."""
    lines = [f"memory map ({allocation.total} words):"]
    rows = sorted(
        (
            (allocation.offsets[b.name], b.size, b.name)
            for b in lifetimes.as_list()
            if b.size > 0
        )
    )
    for offset, size, name in rows:
        span = f"[{offset:>6} .. {offset + size - 1:>6}]"
        lines.append(f"{span} {name} ({size}w)")
    return "\n".join(lines)


def render_occupancy(
    lifetimes: LifetimeSet, width: int = 64, height: int = 10
) -> str:
    """Coarse-model live-word total per schedule step, as a bar chart."""
    span = max(lifetimes.total_span, 1)
    occupancy = [0] * span
    for lifetime in lifetimes.as_list():
        for start, stop in lifetime.intervals():
            for t in range(max(start, 0), min(stop, span)):
                occupancy[t] += lifetime.size
    peak = max(occupancy) if occupancy else 0
    if peak == 0:
        return "occupancy: (no live buffers)"
    # Downsample to `width` columns (max within each bucket).
    columns = []
    for x in range(min(width, span)):
        lo = x * span // min(width, span)
        hi = max(lo + 1, (x + 1) * span // min(width, span))
        columns.append(max(occupancy[lo:hi]))
    lines = [f"live words per step (peak {peak}):"]
    for level in range(height, 0, -1):
        threshold = peak * level / height
        row = "".join("#" if c >= threshold else " " for c in columns)
        lines.append(f"{int(threshold):>6} |{row}")
    lines.append(" " * 7 + "+" + "-" * len(columns))
    return "\n".join(lines)


def render_schedule_tree(tree: ScheduleTree) -> str:
    """Indented dump of the binary schedule tree with dur/start/stop."""
    lines: List[str] = [f"schedule tree for {tree.schedule}:"]

    def walk(node: ScheduleTreeNode, depth: int) -> None:
        pad = "  " * depth
        if node.is_leaf():
            label = (
                f"{node.residual}{node.actor}"
                if node.residual != 1
                else node.actor
            )
            lines.append(
                f"{pad}{label}  [start={node.start}, stop={node.stop}]"
            )
            return
        lines.append(
            f"{pad}loop x{node.loop}  [dur={node.dur}, "
            f"start={node.start}, stop={node.stop}]"
        )
        walk(node.left, depth + 1)
        walk(node.right, depth + 1)

    walk(tree.root, 1)
    return "\n".join(lines)
