"""Periodic buffer lifetimes (paper section 8.4).

A buffer's liveness profile under a nested looped schedule is periodic:
the innermost common loop of producer and consumer fills and drains the
buffer once per body iteration, and every enclosing loop repeats that
pattern.  The paper represents such a lifetime by the triple

    { start, (a_1, ..., a_n), (loop_1, ..., loop_n) }

where ``a_i`` are the body durations of the parent-set nodes and
``loop_i`` their iteration counts: the buffer is live during

    [ start + sum_i p_i * a_i ,  start + sum_i p_i * a_i + dur ]

for every digit combination ``p_i in {0, ..., loop_i - 1}`` — a
mixed-radix ("number in the basis (loop_1, ..., loop_n)") enumeration.

Because loops nest, ``a_i * (loop_i - 1) <= a_(i+1)`` when sorted
ascending, which makes the greedy digit extraction of figure 18 exact:
liveness at a time ``T`` and the next occurrence after ``T`` are both
computed in O(n).

Conventions
-----------
Occurrence intervals are half-open ``[s, s + dur)`` for *conflict*
purposes: a buffer whose last consumer finishes at step ``t`` may share
memory with a buffer first written at step ``t``.  (Figure 18's closed
``<=`` test is equivalent for the integer schedule steps at which
buffers actually change state; the half-open form just fixes the
boundary tie in the safe direction.)
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SDFError

__all__ = ["DEFAULT_OCCURRENCE_CAP", "PeriodicLifetime"]

#: Default cap on periodic-occurrence enumeration in intersection tests
#: (:meth:`PeriodicLifetime.overlaps`).  Lifetime pairs where both sides
#: exceed the cap fall back to comparing solid envelopes — pessimistic,
#: hence safe for allocation.  Every layer that performs intersection
#: tests (WIG construction, first-fit, verification, the exact optimum)
#: defaults to this one constant so the fast path and the oracles agree
#: on when the fallback engages.
DEFAULT_OCCURRENCE_CAP = 4096


@dataclass(frozen=True)
class PeriodicLifetime:
    """A (possibly periodic) buffer lifetime with a size in words.

    Parameters
    ----------
    name:
        Identifier (usually ``"src->snk"``), used in reports.
    size:
        Words of memory the buffer occupies while live.
    start:
        Start of the first live interval, in schedule steps.
    duration:
        Length of each live interval (``stop - start`` of section 8.3).
    periods:
        ``(a_i, loop_i)`` pairs, sorted by increasing ``a_i``; empty for
        a non-periodic (single-interval) lifetime.  Unit loops must be
        dropped by the caller (they contribute nothing).
    total_span:
        Duration of one complete schedule period, for bounds checking.
    """

    name: str
    size: int
    start: int
    duration: int
    periods: Tuple[Tuple[int, int], ...] = ()
    total_span: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SDFError(f"lifetime {self.name!r}: negative size")
        if self.duration <= 0:
            raise SDFError(
                f"lifetime {self.name!r}: duration must be positive"
            )
        for idx, (a, loop) in enumerate(self.periods):
            if a <= 0 or loop <= 1:
                raise SDFError(
                    f"lifetime {self.name!r}: period entries need a > 0 "
                    f"and loop > 1, got ({a}, {loop})"
                )
            if idx + 1 < len(self.periods):
                nxt = self.periods[idx + 1][0]
                # The greedy liveness test (figure 18) requires the
                # nested-loop property a_i (loop_i - 1) <= a_(i+1).
                if a * (loop - 1) > nxt:
                    raise SDFError(
                        f"lifetime {self.name!r}: periods violate the "
                        f"nesting property ({a} * {loop - 1} > {nxt})"
                    )

    @classmethod
    def from_basis(
        cls,
        name: str,
        size: int,
        start: int,
        duration: int,
        basis: Sequence[Tuple[int, int]],
        total_span: int = 0,
    ) -> "PeriodicLifetime":
        """Build a lifetime from a raw parent-set basis.

        ``basis`` is ``(a_i, loop_i)`` pairs in any order, unit loops
        included — exactly what a walk over a schedule tree's parent
        set produces (section 8.4), on either the schedule-step or the
        flat-firing clock.  Unit loops are dropped (they contribute no
        occurrences) and the rest sorted ascending by ``a_i``, which is
        the constructor's normal form.
        """
        periods = tuple(
            sorted((p for p in basis if p[1] > 1), key=lambda p: p[0])
        )
        return cls(
            name=name, size=size, start=start, duration=duration,
            periods=periods, total_span=total_span,
        )

    # ------------------------------------------------------------------
    # Derived quantities are cached on the instance (lifetimes are
    # frozen); the WIG build queries them once per candidate pair.
    @cached_property
    def num_occurrences(self) -> int:
        n = 1
        for _, loop in self.periods:
            n *= loop
        return n

    @cached_property
    def last_stop(self) -> int:
        """End of the final occurrence: the solid-interval upper bound."""
        offset = sum(a * (loop - 1) for a, loop in self.periods)
        return self.start + offset + self.duration

    @cached_property
    def _starts(self) -> List[int]:
        """All occurrence starts, materialized once for pair testing."""
        return list(self.occurrence_starts())

    def solid(self) -> "PeriodicLifetime":
        """The pessimistic non-periodic envelope (periodicity ignored)."""
        if not self.periods:
            return self
        return PeriodicLifetime(
            name=self.name,
            size=self.size,
            start=self.start,
            duration=self.last_stop - self.start,
            periods=(),
            total_span=self.total_span,
        )

    # ------------------------------------------------------------------
    # the figure 18 algorithm and its derivatives
    # ------------------------------------------------------------------
    def live_at(self, time: int) -> bool:
        """True if the buffer is live at ``time`` (half-open intervals).

        Greedy mixed-radix digit extraction, largest period first
        (figure 18): valid because nested loops satisfy
        ``a_i (loop_i - 1) <= a_(i+1)``.
        """
        t = time - self.start
        if t < 0:
            return False
        for a, loop in reversed(self.periods):
            k = min(t // a, loop - 1)
            t -= k * a
        return t < self.duration

    def occurrence_starts(self) -> Iterator[int]:
        """All occurrence start times, ascending."""
        digits = [0] * len(self.periods)
        value = self.start
        while True:
            yield value
            # mixed-radix increment, least significant (smallest a) first,
            # tracking the weighted value alongside the digits
            i = 0
            while i < len(digits):
                a, loop = self.periods[i]
                digits[i] += 1
                value += a
                if digits[i] < loop:
                    break
                digits[i] = 0
                value -= a * loop
                i += 1
            else:
                return

    def next_start(self, time: int) -> Optional[int]:
        """Smallest occurrence start ``>= time``, or None if none remain.

        Implements the paper's "increment the number formed by the k_i
        in the basis (loop_1, ..., loop_n)" (section 8.4).
        """
        if time <= self.start:
            return self.start
        t = time - self.start
        digits: List[int] = []
        remainder = t
        for a, loop in reversed(self.periods):
            k = min(remainder // a, loop - 1)
            digits.append(k)
            remainder -= k * a
        digits.reverse()  # now aligned with self.periods (ascending a)
        # sum(d_i * a_i) is exactly what the greedy extraction removed
        # from t, so the floor candidate is time minus the remainder.
        candidate = time - remainder
        while candidate < time:
            # increment in the mixed basis; repeated in the (tree-built
            # lifetimes never hit it) corner case where weakly nested
            # periods make one increment insufficient
            i = 0
            while i < len(digits):
                a, loop = self.periods[i]
                digits[i] += 1
                candidate += a
                if digits[i] < loop:
                    break
                digits[i] = 0
                candidate -= a * loop
                i += 1
            else:
                return None
        return candidate

    def overlaps(
        self,
        other: "PeriodicLifetime",
        occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    ) -> bool:
        """True if any live interval of self intersects one of ``other``.

        Enumerates the occurrence starts of the sparser lifetime and
        queries the other via :meth:`live_at` / :meth:`next_start`.  If
        both lifetimes have more occurrences than ``occurrence_cap``,
        falls back to comparing solid envelopes — pessimistic, hence
        safe for allocation (a claimed overlap only prevents sharing).
        """
        a, b = (self, other) if self.num_occurrences <= other.num_occurrences else (other, self)
        if a.num_occurrences > occurrence_cap:
            a, b = a.solid(), b.solid()
        if a.start >= b.last_stop or b.start >= a.last_stop:
            return False  # disjoint solid envelopes
        starts = a._starts
        n = len(starts)
        dur = a.duration
        idx = 0
        if b.num_occurrences <= occurrence_cap:
            # Both sides enumerable: decide each a-occurrence with two
            # binary searches over b's cached starts (the arrays are
            # shared across every pair test of a WIG build).
            b_starts = b._starts
            nb = len(b_starts)
            b_dur = b.duration
            while idx < n:
                s = starts[idx]
                j = bisect_right(b_starts, s)
                if j and b_starts[j - 1] + b_dur > s:
                    return True  # a b-interval covers s
                if j == nb:
                    return False  # no b-interval starts after s
                nxt = b_starts[j]
                if nxt < s + dur:
                    return True
                # b has no live interval in [s, nxt): skip every
                # a-occurrence that ends inside that dead space.
                idx = bisect_right(starts, nxt - dur, idx + 1)
            return False
        # b too dense to enumerate: query it analytically (figure 18).
        while idx < n:
            s = starts[idx]
            if b.live_at(s):
                return True
            nxt = b.next_start(s)
            if nxt is None:
                return False
            if nxt < s + dur:
                return True
            idx = bisect_right(starts, nxt - dur, idx + 1)
        return False

    def intervals(self) -> Iterator[Tuple[int, int]]:
        """All half-open live intervals, ascending by start."""
        for s in self.occurrence_starts():
            yield (s, s + self.duration)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.periods:
            return (
                f"{self.name}: size={self.size} "
                f"[{self.start}, {self.start + self.duration})"
            )
        basis = ", ".join(f"{a}x{l}" for a, l in self.periods)
        return (
            f"{self.name}: size={self.size} start={self.start} "
            f"dur={self.duration} periods=({basis})"
        )
