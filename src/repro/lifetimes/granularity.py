"""Buffer-sharing granularity sweep (paper section 5, figure 3).

Between the *fine-grained* model (a buffer's live size tracks its exact
token count, firing by firing) and the *coarse-grained* model the paper
adopts (the whole episode array is live from first write to last read)
lies a spectrum: "there are a number of granularities within these
extremes, based on how many levels of loop nests we consider".  The
paper's example: for ``7(5A 2(2B 3C))`` with C producing one token per
firing, C's output buffer grows in steps of 1, 3, 6 or jumps to 42
depending on how many loop levels are aggregated.

This module measures that spectrum for any graph/schedule pair:

* :func:`granularity_levels` — the shared-memory requirement (peak of
  summed live array sizes) when buffers are aggregated at each loop
  depth ``d``: tokens moved within one iteration of the depth-``d``
  ancestor loop count as a unit;
* level 0 aggregates at the schedule root (the paper's coarse model for
  top-level buffers), the maximum depth reproduces the fine-grained
  token count (:func:`repro.sdf.simulate.simulate_schedule` peaks).

The sweep quantifies how much memory the coarse model leaves on the
table in exchange for its simple pointer management — the trade the
paper makes explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from ..sdf.simulate import simulate_schedule

__all__ = ["granularity_levels", "fine_grained_peak"]


def fine_grained_peak(graph: SDFGraph, schedule: LoopedSchedule) -> int:
    """Peak of summed live token words, exact per firing (finest model)."""
    trace = simulate_schedule(graph, schedule)
    sizes = {e.key: e.token_size for e in graph.edges()}
    return max(
        sum(state[k] * sizes[k] for k in state) for state in trace.counts
    )


def granularity_levels(
    graph: SDFGraph, schedule: LoopedSchedule, max_depth: int = 8
) -> List[Tuple[int, int]]:
    """Memory requirement at each aggregation depth.

    Returns ``[(depth, peak_words), ...]`` for depths 0 (coarsest: an
    edge's whole live episode measured against the outermost loops) up
    to ``max_depth`` (finest returned as the exact token peak).  The
    sequence is non-increasing: finer models never need more memory.

    Aggregation at depth ``d`` rounds every buffer's occupancy *up* to
    the total it reaches within the current iteration of its depth-``d``
    enclosing loop: production is credited at that loop iteration's
    start, consumption at its end.
    """
    trace = simulate_schedule(graph, schedule)
    sizes = {e.key: e.token_size for e in graph.edges()}
    # A delayed edge's buffer is circular (its initial tokens wrap the
    # period boundary), so no aggregation level can charge it more than
    # its peak occupancy — the coarse live-array accounting below is
    # capped at that capacity per edge.
    caps = {
        e.key: trace.peak(e.key) * e.token_size
        for e in graph.edges()
        if e.delay > 0
    }

    # Annotate each firing with its loop path (iteration stack), by
    # replaying the schedule structure.
    paths: List[Tuple[Tuple[int, int], ...]] = []

    def walk(node, stack) -> None:
        from ..sdf.schedule import Firing, Loop

        if isinstance(node, Firing):
            for _ in range(node.count):
                paths.append(tuple(stack))
            return
        for iteration in range(node.count):
            stack.append((id(node), iteration))
            for child in node.body:
                walk(child, stack)
            stack.pop()

    stack: List[Tuple[int, int]] = []
    for node in schedule.body:
        walk(node, stack)
    assert len(paths) == len(trace.firings)

    results: List[Tuple[int, int]] = []
    for depth in range(0, max_depth + 1):
        # Group firings into segments sharing the same depth-d prefix.
        peak = 0
        # For each edge, within each segment, production is counted at
        # segment start; liveness = current tokens + tokens the segment
        # will still produce on the edge.
        segment_of = [p[:depth] for p in paths]
        # Precompute, per firing index, tokens produced per edge in the
        # remainder of its segment (suffix sums per segment).
        n = len(paths)
        future: List[Dict[Tuple[str, str, int], int]] = [dict() for _ in range(n)]
        i = n - 1
        while i >= 0:
            acc: Dict[Tuple[str, str, int], int] = {}
            j = i
            # walk the whole segment [start, end) ending at i's segment
            start = i
            while start > 0 and segment_of[start - 1] == segment_of[i]:
                start -= 1
            end = i
            while end + 1 < n and segment_of[end + 1] == segment_of[i]:
                end += 1
            # suffix sums within [start, end]
            acc = {}
            for j in range(end, start - 1, -1):
                actor = trace.firings[j]
                for e in graph.out_edges(actor):
                    acc[e.key] = acc.get(e.key, 0) + e.production
                future[j] = dict(acc)
            i = start - 1
        for t in range(n):
            state = trace.counts[t]  # before firing t+1 (1-based)
            fut = future[t]
            live = 0
            for k, count in state.items():
                charge = (count + fut.get(k, 0)) * sizes[k]
                cap = caps.get(k)
                if cap is not None and charge > cap:
                    charge = cap
                live += charge
            if live > peak:
                peak = live
        results.append((depth, peak))
        if all(len(p) <= depth for p in paths):
            break
    return results
