"""Lifetime analysis: schedule trees, periodic intervals, extraction."""

from .periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime
from .schedule_tree import ScheduleTree, ScheduleTreeNode
from .intervals import LifetimeSet, extract_lifetimes, lifetime_for_edge
from .granularity import fine_grained_peak, granularity_levels

__all__ = [
    "DEFAULT_OCCURRENCE_CAP",
    "fine_grained_peak",
    "granularity_levels",
    "PeriodicLifetime",
    "ScheduleTree",
    "ScheduleTreeNode",
    "LifetimeSet",
    "extract_lifetimes",
    "lifetime_for_edge",
]
