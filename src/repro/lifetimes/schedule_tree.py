"""R-schedules and the binary schedule tree (paper sections 8.1–8.3).

Any single appearance schedule for an acyclic graph can be written as
``(iL SL)(iR SR)`` — an *R-schedule* — and therefore represented as a
binary tree: internal nodes carry loop factors, leaves carry actors with
their residual firing counts.  Lifetime extraction runs entirely on this
tree using an abstract notion of time in which *each invocation of a
leaf node is one schedule step* (so ``2(A 3B)`` spans 4 time steps).

This module builds the tree from a :class:`~repro.sdf.schedule.LoopedSchedule`
(binarizing loop bodies with more than two elements; the paper notes the
choice of split "will not affect any of the computations"), and runs the
three depth-first computations of sections 8.2–8.3:

* ``dur(v) = loop(v) * (dur(left) + dur(right))``, ``dur(leaf) = 1``;
* ``start``/``stop`` times of the first iteration of every node;
* leaf lookup and lowest-common-ancestor queries for buffer lifetimes.

Alongside the paper's abstract schedule-step clock the tree carries a
second, *firing-time* clock in which each actor firing is one step (so
a leaf ``4A`` spans 4 firing steps, not 1).  ``fdur``/``fstart`` mirror
``dur``/``start`` on that clock; they are what the loop-compressed
symbolic simulation (:mod:`repro.sdf.symbolic`) uses to place buffer
episodes at exact flat-firing indices without unrolling the schedule.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..exceptions import ScheduleError
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode

__all__ = ["ScheduleTreeNode", "ScheduleTree"]


class ScheduleTreeNode:
    """A node of the binary schedule tree.

    Leaves have ``actor`` set and ``loop == 1``; their ``residual`` is
    the firing count the leaf performs per invocation (the ``4`` of a
    leaf ``4A``).  Internal nodes have ``left``/``right`` children and a
    ``loop`` iteration count.
    """

    __slots__ = (
        "loop", "actor", "residual", "left", "right", "parent",
        "dur", "start", "stop", "fdur", "fstart",
    )

    def __init__(
        self,
        loop: int = 1,
        actor: Optional[str] = None,
        residual: int = 1,
    ) -> None:
        self.loop = loop
        self.actor = actor
        self.residual = residual
        self.left: Optional[ScheduleTreeNode] = None
        self.right: Optional[ScheduleTreeNode] = None
        self.parent: Optional[ScheduleTreeNode] = None
        self.dur = 0
        self.start = 0
        self.stop = 0
        self.fdur = 0
        self.fstart = 0

    def is_leaf(self) -> bool:
        return self.actor is not None

    def body_duration(self) -> int:
        """``dur(left) + dur(right)``: one iteration of this node's body.

        This is the period constant ``a_i`` of section 8.4 for nodes in
        a buffer's parent set.  For a leaf it equals 1.
        """
        if self.is_leaf():
            return 1
        return self.dur // self.loop

    def body_firings(self) -> int:
        """Firings in one iteration of this node's body.

        The firing-time analogue of :meth:`body_duration`: the period
        constant for buffer episodes measured on the flat-firing clock.
        For a leaf (one invocation = ``residual`` back-to-back firings)
        it equals ``residual``.
        """
        if self.is_leaf():
            return self.residual
        return self.fdur // self.loop

    def ancestors(self) -> Iterator["ScheduleTreeNode"]:
        """This node's proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_leaf():
            return f"Leaf({self.residual}{self.actor})"
        return f"Node(loop={self.loop}, dur={self.dur})"


class ScheduleTree:
    """The binary schedule tree of a single appearance schedule.

    Examples
    --------
    >>> from repro.sdf.schedule import parse_schedule
    >>> tree = ScheduleTree(parse_schedule("(2A(3B))"))
    >>> tree.root.dur          # 2 iterations x (leaf A + leaf 3B)
    4
    >>> tree.leaf("B").start   # first invocation of 3B
    1
    """

    def __init__(self, schedule: LoopedSchedule) -> None:
        if not schedule.is_single_appearance():
            raise ScheduleError(
                "schedule trees require a single appearance schedule; "
                f"got {schedule}"
            )
        self.schedule = schedule
        self.root = self._binarize(list(schedule.body), loop=1)
        self._leaves: Dict[str, ScheduleTreeNode] = {}
        self._set_parents(self.root, None)
        self._compute_durations(self.root)
        self._compute_times(self.root, 0)
        self._compute_firing_durations(self.root)
        self._compute_firing_times(self.root, 0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _binarize(
        self, body: List[ScheduleNode], loop: int
    ) -> ScheduleTreeNode:
        """Convert a loop body into a binary subtree with loop factor."""
        if len(body) == 1:
            node = body[0]
            if isinstance(node, Firing):
                if loop == 1:
                    return ScheduleTreeNode(actor=node.actor,
                                            residual=node.count)
                # A loop around a single firing folds into the residual.
                return ScheduleTreeNode(actor=node.actor,
                                        residual=loop * node.count)
            inner = self._binarize(list(node.body), node.count)
            if loop == 1:
                return inner
            if inner.is_leaf():
                return ScheduleTreeNode(
                    actor=inner.actor, residual=loop * inner.residual
                )
            inner.loop *= loop
            return inner
        parent = ScheduleTreeNode(loop=loop)
        # Left-deep binarization: first element vs the rest.  The paper
        # notes the binarization point does not affect the computations.
        parent.left = self._binarize(body[:1], 1)
        parent.right = self._binarize(body[1:], 1)
        return parent

    def _set_parents(
        self, node: ScheduleTreeNode, parent: Optional[ScheduleTreeNode]
    ) -> None:
        node.parent = parent
        if node.is_leaf():
            if node.actor in self._leaves:
                raise ScheduleError(
                    f"actor {node.actor!r} appears twice in schedule tree"
                )
            self._leaves[node.actor] = node
            return
        self._set_parents(node.left, node)
        self._set_parents(node.right, node)

    def _compute_durations(self, node: ScheduleTreeNode) -> int:
        if node.is_leaf():
            node.dur = 1
            return 1
        total = self._compute_durations(node.left) + self._compute_durations(
            node.right
        )
        node.dur = node.loop * total
        return node.dur

    def _compute_times(self, node: ScheduleTreeNode, start: int) -> None:
        node.start = start
        node.stop = start + node.dur
        if not node.is_leaf():
            self._compute_times(node.left, start)
            self._compute_times(node.right, start + node.left.dur)

    def _compute_firing_durations(self, node: ScheduleTreeNode) -> int:
        if node.is_leaf():
            node.fdur = node.residual
            return node.fdur
        total = self._compute_firing_durations(node.left)
        total += self._compute_firing_durations(node.right)
        node.fdur = node.loop * total
        return node.fdur

    def _compute_firing_times(self, node: ScheduleTreeNode, start: int) -> None:
        node.fstart = start
        if not node.is_leaf():
            self._compute_firing_times(node.left, start)
            self._compute_firing_times(node.right, start + node.left.fdur)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def leaf(self, actor: str) -> ScheduleTreeNode:
        try:
            return self._leaves[actor]
        except KeyError:
            raise ScheduleError(
                f"actor {actor!r} not in schedule tree"
            ) from None

    def actors(self) -> List[str]:
        return list(self._leaves)

    def total_duration(self) -> int:
        """Schedule-step count of one complete period."""
        return self.root.dur

    def total_firings(self) -> int:
        """Flat firing count of one complete period (firing-time clock)."""
        return self.root.fdur

    def least_parent(self, a: str, b: str) -> ScheduleTreeNode:
        """The *smallest parent* (LCA / innermost common loop) of two actors."""
        ancestors_a = [self.leaf(a)]
        ancestors_a.extend(self.leaf(a).ancestors())
        mark = set(map(id, ancestors_a))
        node: Optional[ScheduleTreeNode] = self.leaf(b)
        while node is not None:
            if id(node) in mark:
                return node
            node = node.parent
        raise ScheduleError(f"no common ancestor of {a!r} and {b!r}")

    def parent_set(self, a: str, b: str) -> List[ScheduleTreeNode]:
        """The parent set of the pair (section 8.4): the least parent and
        every ancestor above it, innermost first."""
        lp = self.least_parent(a, b)
        nodes = [lp]
        nodes.extend(lp.ancestors())
        return nodes

    def iter_nodes(self) -> Iterator[ScheduleTreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf():
                stack.append(node.right)
                stack.append(node.left)

    def invocations_per_iteration(self, actor: str, node: ScheduleTreeNode) -> int:
        """Firings of ``actor`` within one iteration of ``node``'s body.

        The product of the leaf's residual and the loop factors strictly
        between the leaf and ``node`` (exclusive).  ``node`` must be an
        ancestor of the actor's leaf (or the leaf itself).
        """
        leaf = self.leaf(actor)
        if leaf is node:
            return leaf.residual
        count = leaf.residual
        current = leaf.parent
        while current is not None and current is not node:
            count *= current.loop
            current = current.parent
        if current is None:
            raise ScheduleError(
                f"{actor!r} is not inside the given node"
            )
        return count
