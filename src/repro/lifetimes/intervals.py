"""Buffer lifetime extraction from a single appearance schedule (section 8).

Given an SDF graph and a SAS, this module derives one
:class:`~repro.lifetimes.periodic.PeriodicLifetime` per edge:

* **start** — the start time of the producing actor's leaf (section 8.3);
* **stop** — the end of the consuming actor's *last* firing within one
  iteration of the innermost common loop, computed by the walk of
  figure 16 (subtracting the durations of right-siblings on the path
  from the consumer's leaf to the least parent's right child);
* **size** — the coarse-model array: every token transferred during one
  live episode (``prod(e)`` times the producer's firings per least-parent
  body iteration), plus initial tokens, in words;
* **periods** — the ``(a_i, loop_i)`` pairs of the parent-set nodes with
  non-unit loop factors (section 8.4).

Edges with initial tokens are handled per section 5: the buffer is live
from time zero; if its token count never returns to zero within the
period the lifetime covers the whole schedule.  We use the safe
envelope: any delayed edge's lifetime is the whole schedule period,
sized for peak occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import ScheduleError
from ..sdf.graph import Edge, SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.schedule import LoopedSchedule
from .periodic import PeriodicLifetime
from .schedule_tree import ScheduleTree, ScheduleTreeNode

__all__ = [
    "extract_lifetimes",
    "lifetime_for_edge",
    "lifetime_for_group",
    "least_parent_of",
    "LifetimeSet",
]


@dataclass
class LifetimeSet:
    """All buffer lifetimes of a schedule, with shared bookkeeping.

    ``lifetimes`` is keyed by edge key; ``tree`` is the schedule tree
    the times refer to; ``total_span`` its period in schedule steps.

    Every member edge of a broadcast group maps to the *same*
    :class:`PeriodicLifetime` object (one shared physical buffer);
    ``groups`` names them, and :meth:`as_list`/:meth:`total_size`
    dedupe by identity so the shared buffer is counted once.
    """

    lifetimes: Dict[Tuple[str, str, int], PeriodicLifetime]
    tree: ScheduleTree
    total_span: int
    #: Broadcast group name -> the group's shared lifetime (also
    #: reachable through every member's edge key in ``lifetimes``).
    groups: Dict[str, PeriodicLifetime] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.groups is None:
            self.groups = {}

    def as_list(self) -> List[PeriodicLifetime]:
        """Distinct buffers (broadcast members collapse to one entry)."""
        seen: set = set()
        result: List[PeriodicLifetime] = []
        for b in self.lifetimes.values():
            if id(b) not in seen:
                seen.add(id(b))
                result.append(b)
        return result

    def total_size(self) -> int:
        """Sum of buffer sizes — the non-shared cost of these arrays."""
        return sum(b.size for b in self.as_list())


def extract_lifetimes(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    q: Optional[Dict[str, int]] = None,
) -> LifetimeSet:
    """Extract the lifetime of every edge buffer under ``schedule``.

    ``schedule`` must be a single appearance schedule for ``graph``.
    """
    tree = ScheduleTree(schedule)
    missing = [a for a in graph.actor_names() if a not in tree.actors()]
    if missing:
        raise ScheduleError(
            f"schedule does not fire actors {missing!r}"
        )
    if q is None:
        q = repetitions_vector(graph)
    lifetimes = {
        e.key: lifetime_for_edge(graph, tree, e, q)
        for e in graph.edges()
        if e.broadcast is None
    }
    groups: Dict[str, PeriodicLifetime] = {}
    for name, members in graph.broadcast_groups().items():
        shared = lifetime_for_group(graph, tree, name, members, q)
        groups[name] = shared
        for m in members:
            lifetimes[m.key] = shared
    return LifetimeSet(
        lifetimes=lifetimes,
        tree=tree,
        total_span=tree.total_duration(),
        groups=groups,
    )


def lifetime_for_edge(
    graph: SDFGraph,
    tree: ScheduleTree,
    edge: Edge,
    q: Dict[str, int],
) -> PeriodicLifetime:
    """The coarse-model lifetime of the buffer on ``edge``.

    See the module docstring for the construction.  For a delayed edge
    the safe whole-period envelope is returned.
    """
    name = f"{edge.source}->{edge.sink}"
    if edge.index:
        name += f"#{edge.index}"
    span = tree.total_duration()
    tnse_words = total_tokens_exchanged(edge, q) * edge.token_size

    if edge.delay > 0:
        # Section 5: an edge with initial tokens is live from the start
        # of the schedule.  We keep the safe envelope: live all period,
        # sized for its peak occupancy (transfer per episode + delay).
        lp = tree.least_parent(edge.source, edge.sink)
        occurrences = _occurrence_count(lp)
        size = tnse_words // occurrences + edge.delay * edge.token_size
        return PeriodicLifetime(
            name=name,
            size=size,
            start=0,
            duration=span,
            periods=(),
            total_span=span,
        )

    if edge.is_self_loop():
        raise ScheduleError(
            f"self-loop {edge} requires initial tokens; delay-free "
            f"self-loops cannot be scheduled"
        )

    lp = tree.least_parent(edge.source, edge.sink)
    start = tree.leaf(edge.source).start
    stop = _interval_stop_time(tree, lp, edge.sink)
    if stop <= start:
        raise ScheduleError(
            f"edge {edge}: computed stop {stop} <= start {start}; "
            f"is the schedule's lexical order topological?"
        )

    producer_firings = tree.invocations_per_iteration(edge.source, lp)
    size = edge.production * producer_firings * edge.token_size

    periods = []
    for node in tree.parent_set(edge.source, edge.sink):
        if node.loop > 1:
            periods.append((node.body_duration(), node.loop))
    periods.sort(key=lambda p: p[0])

    return PeriodicLifetime(
        name=name,
        size=size,
        start=start,
        duration=stop - start,
        periods=tuple(periods),
        total_span=span,
    )


def lifetime_for_group(
    graph: SDFGraph,
    tree: ScheduleTree,
    name: str,
    members: List[Edge],
    q: Dict[str, int],
) -> PeriodicLifetime:
    """The lifetime of a broadcast group's one shared buffer.

    The innermost common loop is the LCA of the source and *all* member
    sinks; because windows of a SAS are contiguous and every sink sits
    after the source, this equals the least parent of the source and
    the farthest sink.  The buffer starts when the producer starts and
    stops at the *latest* member stop time (figure 16 walk generalized
    to sinks anywhere under the group's least parent); its size is one
    least-parent iteration's production — written once, read by all
    members.
    """
    first = members[0]
    buffer_name = f"{first.source}=>{name}"
    span = tree.total_duration()
    tnse_words = total_tokens_exchanged(first, q) * first.token_size

    lp = least_parent_of(tree, [first.source] + [m.sink for m in members])

    if first.delay > 0:
        occurrences = _occurrence_count(lp)
        size = tnse_words // occurrences + first.delay * first.token_size
        return PeriodicLifetime(
            name=buffer_name,
            size=size,
            start=0,
            duration=span,
            periods=(),
            total_span=span,
        )

    start = tree.leaf(first.source).start
    stop = max(_stop_within(tree, lp, m.sink) for m in members)
    if stop <= start:
        raise ScheduleError(
            f"broadcast group {name!r}: computed stop {stop} <= start "
            f"{start}; is the schedule's lexical order topological?"
        )

    producer_firings = tree.invocations_per_iteration(first.source, lp)
    size = first.production * producer_firings * first.token_size

    periods = []
    for node in [lp] + list(lp.ancestors()):
        if node.loop > 1:
            periods.append((node.body_duration(), node.loop))
    periods.sort(key=lambda p: p[0])

    return PeriodicLifetime(
        name=buffer_name,
        size=size,
        start=start,
        duration=stop - start,
        periods=tuple(periods),
        total_span=span,
    )


def least_parent_of(tree: ScheduleTree, actors: List[str]) -> ScheduleTreeNode:
    """LCA of several actors' leaves: fold pairwise least parents.

    Every pairwise ``least_parent(actors[0], other)`` lies on the first
    actor's root path, and the set LCA is the shallowest of them (it
    must be an ancestor of every member), so folding actor by actor
    and keeping the candidate nearest the root is exact.  The path is
    enumerated leaf-first, so *larger* enumeration index = nearer the
    root.
    """
    path = [tree.leaf(actors[0])]
    path.extend(tree.leaf(actors[0]).ancestors())
    height = {id(n): h for h, n in enumerate(path)}
    best = path[0]
    for other in actors[1:]:
        node = tree.least_parent(actors[0], other)
        if height[id(node)] > height[id(best)]:
            best = node
    return best


def _stop_within(
    tree: ScheduleTree, lp: ScheduleTreeNode, sink: str
) -> int:
    """Figure 16 walk generalized to a sink anywhere under ``lp``.

    Start from the end of one full body iteration of ``lp`` and
    subtract, walking from the sink's leaf up to ``lp`` (exclusive),
    the duration of every right sibling passed while ascending from a
    left child — the work remaining after the sink's final firing of
    the iteration.  When the sink lies under ``lp.right`` this equals
    the classic walk of :func:`_interval_stop_time` (the start value
    ``lp.start + body_duration`` is exactly ``lp.right.stop``).
    """
    stop = lp.start + lp.body_duration()
    node = tree.leaf(sink)
    while node is not lp:
        parent = node.parent
        if parent is None:
            raise ScheduleError(
                f"sink {sink!r} is not under the least parent"
            )
        if parent.left is node:
            stop -= parent.right.dur
        node = parent
    return stop


def _interval_stop_time(
    tree: ScheduleTree, least_parent: ScheduleTreeNode, sink: str
) -> int:
    """The figure 16 walk: earliest stop time of the buffer interval.

    Starting from the end of the least parent's right child (which
    includes all its loop iterations), subtract the duration of the
    right sibling of every node on the path from the sink's leaf up to
    (but excluding) that right child whenever the path ascends from a
    left child — the work remaining after the sink's final firing.
    """
    right = least_parent.right
    if right is None:
        # Least parent is the sink's (and source's) own leaf: impossible
        # for distinct actors in a SAS.
        raise ScheduleError("least parent of an edge must be internal")
    stop = right.stop
    node = tree.leaf(sink)
    while node is not right:
        parent = node.parent
        if parent is None:
            raise ScheduleError(
                f"sink {sink!r} is not under the least parent's right child"
            )
        if parent.left is node:
            stop -= parent.right.dur
        node = parent
    return stop


def _occurrence_count(node: ScheduleTreeNode) -> int:
    """Product of ``loop`` factors of ``node`` and its ancestors."""
    count = node.loop
    for anc in node.ancestors():
        count *= anc.loop
    return count
