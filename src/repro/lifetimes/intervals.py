"""Buffer lifetime extraction from a single appearance schedule (section 8).

Given an SDF graph and a SAS, this module derives one
:class:`~repro.lifetimes.periodic.PeriodicLifetime` per edge:

* **start** — the start time of the producing actor's leaf (section 8.3);
* **stop** — the end of the consuming actor's *last* firing within one
  iteration of the innermost common loop, computed by the walk of
  figure 16 (subtracting the durations of right-siblings on the path
  from the consumer's leaf to the least parent's right child);
* **size** — the coarse-model array: every token transferred during one
  live episode (``prod(e)`` times the producer's firings per least-parent
  body iteration), plus initial tokens, in words;
* **periods** — the ``(a_i, loop_i)`` pairs of the parent-set nodes with
  non-unit loop factors (section 8.4).

Edges with initial tokens are handled per section 5: the buffer is live
from time zero; if its token count never returns to zero within the
period the lifetime covers the whole schedule.  We use the safe
envelope: any delayed edge's lifetime is the whole schedule period,
sized for peak occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import ScheduleError
from ..sdf.graph import Edge, SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.schedule import LoopedSchedule
from .periodic import PeriodicLifetime
from .schedule_tree import ScheduleTree, ScheduleTreeNode

__all__ = ["extract_lifetimes", "lifetime_for_edge", "LifetimeSet"]


@dataclass
class LifetimeSet:
    """All buffer lifetimes of a schedule, with shared bookkeeping.

    ``lifetimes`` is keyed by edge key; ``tree`` is the schedule tree
    the times refer to; ``total_span`` its period in schedule steps.
    """

    lifetimes: Dict[Tuple[str, str, int], PeriodicLifetime]
    tree: ScheduleTree
    total_span: int

    def as_list(self) -> List[PeriodicLifetime]:
        return list(self.lifetimes.values())

    def total_size(self) -> int:
        """Sum of buffer sizes — the non-shared cost of these arrays."""
        return sum(b.size for b in self.lifetimes.values())


def extract_lifetimes(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    q: Optional[Dict[str, int]] = None,
) -> LifetimeSet:
    """Extract the lifetime of every edge buffer under ``schedule``.

    ``schedule`` must be a single appearance schedule for ``graph``.
    """
    tree = ScheduleTree(schedule)
    missing = [a for a in graph.actor_names() if a not in tree.actors()]
    if missing:
        raise ScheduleError(
            f"schedule does not fire actors {missing!r}"
        )
    if q is None:
        q = repetitions_vector(graph)
    lifetimes = {
        e.key: lifetime_for_edge(graph, tree, e, q) for e in graph.edges()
    }
    return LifetimeSet(
        lifetimes=lifetimes, tree=tree, total_span=tree.total_duration()
    )


def lifetime_for_edge(
    graph: SDFGraph,
    tree: ScheduleTree,
    edge: Edge,
    q: Dict[str, int],
) -> PeriodicLifetime:
    """The coarse-model lifetime of the buffer on ``edge``.

    See the module docstring for the construction.  For a delayed edge
    the safe whole-period envelope is returned.
    """
    name = f"{edge.source}->{edge.sink}"
    if edge.index:
        name += f"#{edge.index}"
    span = tree.total_duration()
    tnse_words = total_tokens_exchanged(edge, q) * edge.token_size

    if edge.delay > 0:
        # Section 5: an edge with initial tokens is live from the start
        # of the schedule.  We keep the safe envelope: live all period,
        # sized for its peak occupancy (transfer per episode + delay).
        lp = tree.least_parent(edge.source, edge.sink)
        occurrences = _occurrence_count(lp)
        size = tnse_words // occurrences + edge.delay * edge.token_size
        return PeriodicLifetime(
            name=name,
            size=size,
            start=0,
            duration=span,
            periods=(),
            total_span=span,
        )

    if edge.is_self_loop():
        raise ScheduleError(
            f"self-loop {edge} requires initial tokens; delay-free "
            f"self-loops cannot be scheduled"
        )

    lp = tree.least_parent(edge.source, edge.sink)
    start = tree.leaf(edge.source).start
    stop = _interval_stop_time(tree, lp, edge.sink)
    if stop <= start:
        raise ScheduleError(
            f"edge {edge}: computed stop {stop} <= start {start}; "
            f"is the schedule's lexical order topological?"
        )

    producer_firings = tree.invocations_per_iteration(edge.source, lp)
    size = edge.production * producer_firings * edge.token_size

    periods = []
    for node in tree.parent_set(edge.source, edge.sink):
        if node.loop > 1:
            periods.append((node.body_duration(), node.loop))
    periods.sort(key=lambda p: p[0])

    return PeriodicLifetime(
        name=name,
        size=size,
        start=start,
        duration=stop - start,
        periods=tuple(periods),
        total_span=span,
    )


def _interval_stop_time(
    tree: ScheduleTree, least_parent: ScheduleTreeNode, sink: str
) -> int:
    """The figure 16 walk: earliest stop time of the buffer interval.

    Starting from the end of the least parent's right child (which
    includes all its loop iterations), subtract the duration of the
    right sibling of every node on the path from the sink's leaf up to
    (but excluding) that right child whenever the path ascends from a
    left child — the work remaining after the sink's final firing.
    """
    right = least_parent.right
    if right is None:
        # Least parent is the sink's (and source's) own leaf: impossible
        # for distinct actors in a SAS.
        raise ScheduleError("least parent of an edge must be internal")
    stop = right.stop
    node = tree.leaf(sink)
    while node is not right:
        parent = node.parent
        if parent is None:
            raise ScheduleError(
                f"sink {sink!r} is not under the least parent's right child"
            )
        if parent.left is node:
            stop -= parent.right.dur
        node = parent
    return stop


def _occurrence_count(node: ScheduleTreeNode) -> int:
    """Product of ``loop`` factors of ``node`` and its ancestors."""
    count = node.loop
    for anc in node.ancestors():
        count *= anc.loop
    return count
