"""Buffer-memory lower bounds (paper sections 4 and 11.1.3).

Two per-edge lower bounds recur throughout the paper:

* the **BMLB** (buffer memory lower bound), the minimum buffer size on an
  edge over all valid *single appearance* schedules, under the non-shared
  model; summed over edges it lower-bounds ``bufmem`` of any SAS
  (Table 1's ``bmlb`` column);
* the minimum buffer size over **all** valid schedules (single appearance
  or not), attained by a greedy demand-driven scheduler — used in the
  dynamic-scheduling comparison of section 11.1.3.

With ``a = prod(e)``, ``b = cns(e)``, ``c = gcd(a, b)`` and ``d = del(e)``
(paper section 11.1.3):

* over all schedules:  ``a + b - c + (d mod c)``  if ``d < a + b - c``,
  else ``d``;
* over all SASs (BMLB): ``a*b/c + d`` if ``d < a*b/c``, else ``d``.
"""

from __future__ import annotations

from math import gcd
from typing import Dict

from .graph import Edge, SDFGraph
from .repetitions import repetitions_vector, total_tokens_exchanged

__all__ = [
    "bmlb_edge",
    "bmlb",
    "min_buffer_any_schedule_edge",
    "min_buffer_any_schedule",
    "tnse",
    "tnse_map",
]


def tnse(graph: SDFGraph, edge: Edge, q: Dict[str, int] = None) -> int:
    """Total number of tokens exchanged on ``edge`` per schedule period."""
    if q is None:
        q = repetitions_vector(graph)
    return total_tokens_exchanged(edge, q)


def tnse_map(graph: SDFGraph, q: Dict[str, int] = None) -> Dict[tuple, int]:
    """``TNSE`` for every edge, keyed by ``edge.key``."""
    if q is None:
        q = repetitions_vector(graph)
    return {e.key: total_tokens_exchanged(e, q) for e in graph.edges()}


def bmlb_edge(edge: Edge) -> int:
    """BMLB of a single edge, in tokens.

    The minimum of ``max_tokens(e, S)`` over all valid single appearance
    schedules ``S``: ``ab/c + d`` when ``d < ab/c``, otherwise ``d``
    (``c = gcd(a, b)``).
    """
    a, b, d = edge.production, edge.consumption, edge.delay
    eta = a * b // gcd(a, b)
    return eta + d if d < eta else d


def bmlb(graph: SDFGraph) -> int:
    """Graph BMLB: sum of per-edge BMLBs, in words.

    A lower bound on the non-shared buffer memory requirement of every
    valid SAS (Table 1's ``bmlb`` column).
    """
    return sum(bmlb_edge(e) * e.token_size for e in graph.edges())


def min_buffer_any_schedule_edge(edge: Edge) -> int:
    """Minimum buffer size on ``edge`` over *all* valid schedules, in tokens.

    ``a + b - c + (d mod c)`` when ``d < a + b - c``, else ``d``
    (section 11.1.3).  Attained by firing the sink whenever possible.
    """
    a, b, d = edge.production, edge.consumption, edge.delay
    c = gcd(a, b)
    threshold = a + b - c
    return threshold + (d % c) if d < threshold else d


def min_buffer_any_schedule(graph: SDFGraph) -> int:
    """Sum of per-edge minimum buffer sizes over all schedules, in words.

    For chain-structured graphs this bound is achieved simultaneously on
    every edge by the greedy demand-driven scheduler
    (:mod:`repro.baselines.dynamic_scheduler`); for general graphs it is
    a lower bound.
    """
    return sum(
        min_buffer_any_schedule_edge(e) * e.token_size for e in graph.edges()
    )
