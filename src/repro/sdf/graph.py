"""Synchronous dataflow (SDF) graph model.

An SDF graph [Lee & Messerschmitt 1987] is a directed multigraph whose
nodes (*actors*) communicate over FIFO channels (*edges*).  Every firing
of an actor consumes a fixed, compile-time-known number of tokens from
each input edge and produces a fixed number on each output edge.  An edge
may carry initial tokens, called *delays*.

Following the paper's notation (section 2):

* ``src(e)`` / ``snk(e)`` — source and sink actor of edge *e*;
* ``prod(e)`` / ``cns(e)`` — tokens produced per firing of ``src(e)``
  onto *e* and consumed per firing of ``snk(e)`` from *e*;
* ``del(e)`` — initial tokens (delay) on *e*.

The class below follows the networkx idiom (string node names, attribute
dictionaries, adjacency maps) but is self-contained: graph structure is
central to every algorithm in the package and we want exact control over
semantics such as parallel edges and deterministic iteration order.

Iteration order over actors and edges is insertion order, which makes
every algorithm in the package deterministic for a given construction
sequence — essential for reproducible schedules and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import GraphStructureError

__all__ = ["Actor", "Edge", "SDFGraph"]


@dataclass(frozen=True)
class Actor:
    """A vertex of an SDF graph.

    Parameters
    ----------
    name:
        Unique identifier within its graph.
    execution_time:
        Abstract cost of one firing, in processor cycles.  Only used by
        the input-buffering experiment (paper section 11.1.3), where the
        spacing of source-actor firings in real time matters.  The
        scheduling and allocation algorithms never look at it.
    """

    name: str
    execution_time: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphStructureError("actor name must be a non-empty string")
        if self.execution_time < 0:
            raise GraphStructureError(
                f"actor {self.name!r}: execution_time must be >= 0, "
                f"got {self.execution_time}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Edge:
    """A FIFO channel between two actors.

    ``production`` and ``consumption`` are the paper's ``prod(e)`` and
    ``cns(e)``; ``delay`` is ``del(e)``.  ``token_size`` lets tokens be
    vectors or matrices (section 10.2 notes that savings grow when
    "vectors or matrices are being exchanged instead of numerical
    tokens"); all buffer sizes reported by this package are in *words*,
    i.e. tokens multiplied by ``token_size``.

    ``broadcast`` tags this edge as one *member* of a broadcast group
    (generalized graph connections, Liu/Barford/Bhattacharyya): the
    producer writes each token once into a single shared buffer and
    every member sink reads its own cursor over that buffer.  All
    members of a group share one source, production rate, delay, and
    token size; each member keeps its own consumption rate and sink.
    Token *counting* on a member is ordinary FIFO counting; only
    memory accounting (one physical buffer per group) differs.
    """

    source: str
    sink: str
    production: int
    consumption: int
    delay: int = 0
    token_size: int = 1
    #: Disambiguates parallel edges between the same actor pair.
    index: int = 0
    #: Broadcast-group name, or None for an ordinary point-to-point edge.
    broadcast: Optional[str] = None

    def __post_init__(self) -> None:
        if self.production <= 0 or self.consumption <= 0:
            raise GraphStructureError(
                f"edge ({self.source}, {self.sink}): production and "
                f"consumption must be positive, got "
                f"{self.production}/{self.consumption}"
            )
        if self.delay < 0:
            raise GraphStructureError(
                f"edge ({self.source}, {self.sink}): delay must be >= 0, "
                f"got {self.delay}"
            )
        if self.token_size <= 0:
            raise GraphStructureError(
                f"edge ({self.source}, {self.sink}): token_size must be "
                f"positive, got {self.token_size}"
            )

    @property
    def key(self) -> Tuple[str, str, int]:
        """Hashable identifier of this edge within its graph."""
        return (self.source, self.sink, self.index)

    def is_self_loop(self) -> bool:
        return self.source == self.sink

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        d = f", {self.delay}D" if self.delay else ""
        return (
            f"({self.source} -{self.production}/"
            f"{self.consumption}-> {self.sink}{d})"
        )


class SDFGraph:
    """A directed SDF multigraph.

    Examples
    --------
    The graph of the paper's figure 1 (``A -2/1-> B``, one delay, and
    ``B -1/3-> C``)::

        >>> g = SDFGraph()
        >>> for name in "ABC":
        ...     _ = g.add_actor(name)
        >>> _ = g.add_edge("A", "B", production=2, consumption=1, delay=1)
        >>> _ = g.add_edge("B", "C", production=1, consumption=3)
        >>> sorted(g.actor_names())
        ['A', 'B', 'C']
    """

    def __init__(self, name: str = "sdf") -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: Dict[Tuple[str, str, int], Edge] = {}
        # adjacency: actor -> list of edge keys
        self._out: Dict[str, List[Tuple[str, str, int]]] = {}
        self._in: Dict[str, List[Tuple[str, str, int]]] = {}
        # Memoized repetitions-vector solve (populated by
        # repro.sdf.repetitions.repetitions_vector, dropped on mutation).
        self._q_cache: Optional[Dict[str, int]] = None

    def invalidate_caches(self) -> None:
        """Drop derived-result caches; called on every graph mutation.

        ``add_actor``/``add_edge`` are the only mutation points (edges
        and actors are frozen dataclasses and nothing removes them), so
        structural caches like the repetitions-vector solve stay valid
        between mutations.
        """
        self._q_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_actor(self, name: str, execution_time: int = 1) -> Actor:
        """Add an actor; raises if the name is already present."""
        if name in self._actors:
            raise GraphStructureError(f"duplicate actor {name!r}")
        actor = Actor(name, execution_time)
        self._actors[name] = actor
        self._out[name] = []
        self._in[name] = []
        self.invalidate_caches()
        return actor

    def add_actors(self, names: Iterable[str]) -> List[Actor]:
        """Add several unit-cost actors at once."""
        return [self.add_actor(n) for n in names]

    def add_edge(
        self,
        source: str,
        sink: str,
        production: int,
        consumption: int,
        delay: int = 0,
        token_size: int = 1,
        broadcast: Optional[str] = None,
    ) -> Edge:
        """Add a FIFO channel from ``source`` to ``sink``.

        Parallel edges are permitted and distinguished by an
        automatically assigned ``index``.  ``broadcast`` tags the edge
        as a member of a broadcast group; members must agree on source,
        production, delay, and token size, and have pairwise-distinct
        sinks (use :meth:`add_broadcast` for whole groups).
        """
        for endpoint in (source, sink):
            if endpoint not in self._actors:
                raise GraphStructureError(
                    f"edge endpoint {endpoint!r} is not an actor of "
                    f"graph {self.name!r}"
                )
        if broadcast is not None:
            if source == sink:
                raise GraphStructureError(
                    f"broadcast group {broadcast!r}: member must not be "
                    f"a self-loop ({source!r})"
                )
            for member in self.broadcast_members(broadcast):
                if member.source != source:
                    raise GraphStructureError(
                        f"broadcast group {broadcast!r}: members must "
                        f"share one source ({member.source!r} vs "
                        f"{source!r})"
                    )
                if member.sink == sink:
                    raise GraphStructureError(
                        f"broadcast group {broadcast!r}: duplicate "
                        f"sink {sink!r}"
                    )
                if (member.production, member.delay, member.token_size) != (
                    production, delay, token_size
                ):
                    raise GraphStructureError(
                        f"broadcast group {broadcast!r}: members must "
                        f"share production/delay/token_size"
                    )
        index = sum(
            1 for k in self._out[source] if k[0] == source and k[1] == sink
        )
        edge = Edge(
            source, sink, production, consumption, delay, token_size,
            index, broadcast,
        )
        self._edges[edge.key] = edge
        self._out[source].append(edge.key)
        self._in[sink].append(edge.key)
        self.invalidate_caches()
        return edge

    def add_broadcast(
        self,
        source: str,
        sinks: Sequence[str],
        production: int,
        consumptions: Sequence[int],
        delay: int = 0,
        token_size: int = 1,
        name: Optional[str] = None,
    ) -> List[Edge]:
        """Add a broadcast group: one producer, one shared buffer, k sinks.

        ``consumptions[i]`` is the consumption rate of the member edge
        to ``sinks[i]``.  Every member carries the same production,
        delay, and token size; the physical buffer backing the group is
        sized once (by the member that holds tokens the longest), not
        once per member.  Returns the member edges in ``sinks`` order.
        """
        if len(sinks) != len(consumptions):
            raise GraphStructureError(
                f"broadcast from {source!r}: {len(sinks)} sinks but "
                f"{len(consumptions)} consumption rates"
            )
        if not sinks:
            raise GraphStructureError(
                f"broadcast from {source!r}: needs at least one sink"
            )
        if name is None:
            existing = self.broadcast_names()
            counter = len(existing)
            name = f"bc{counter}"
            while name in existing:
                counter += 1
                name = f"bc{counter}"
        elif name in self.broadcast_names():
            raise GraphStructureError(
                f"duplicate broadcast group name {name!r}"
            )
        return [
            self.add_edge(
                source, sink, production, cns, delay, token_size,
                broadcast=name,
            )
            for sink, cns in zip(sinks, consumptions)
        ]

    # ------------------------------------------------------------------
    # broadcast queries
    # ------------------------------------------------------------------
    def broadcast_groups(self) -> Dict[str, List[Edge]]:
        """Group name -> member edges, in edge insertion order."""
        groups: Dict[str, List[Edge]] = {}
        for e in self._edges.values():
            if e.broadcast is not None:
                groups.setdefault(e.broadcast, []).append(e)
        return groups

    def broadcast_members(self, name: str) -> List[Edge]:
        """Member edges of broadcast group ``name`` (possibly empty)."""
        return [
            e for e in self._edges.values() if e.broadcast == name
        ]

    def broadcast_names(self) -> Set[str]:
        return {
            e.broadcast
            for e in self._edges.values()
            if e.broadcast is not None
        }

    def has_broadcasts(self) -> bool:
        return any(e.broadcast is not None for e in self._edges.values())

    def without_broadcasts(self) -> "SDFGraph":
        """A copy with every broadcast tag dropped.

        The *k-parallel-edges model*: each member becomes an ordinary
        point-to-point FIFO with its own buffer.  Token dynamics (and
        hence schedules and the repetitions vector) are identical; only
        memory accounting changes, which is exactly what the harness's
        sharing-win oracle compares.
        """
        flat = SDFGraph(self.name)
        for a in self._actors.values():
            flat.add_actor(a.name, a.execution_time)
        for e in self.edges():
            flat.add_edge(
                e.source, e.sink, e.production, e.consumption,
                e.delay, e.token_size,
            )
        return flat

    def add_chain(
        self,
        names: Sequence[str],
        rates: Sequence[Tuple[int, int]],
        delays: Optional[Sequence[int]] = None,
    ) -> List[Edge]:
        """Add actors ``names`` connected in a chain.

        ``rates[i]`` is the ``(production, consumption)`` pair for the
        edge from ``names[i]`` to ``names[i+1]``.  Actors already in the
        graph are reused, new ones are created.
        """
        if len(rates) != len(names) - 1:
            raise GraphStructureError(
                f"chain of {len(names)} actors needs {len(names) - 1} "
                f"rate pairs, got {len(rates)}"
            )
        if delays is None:
            delays = [0] * len(rates)
        if len(delays) != len(rates):
            raise GraphStructureError("delays must match rates in length")
        for n in names:
            if n not in self._actors:
                self.add_actor(n)
        edges = []
        for (u, v), (p, c), d in zip(zip(names, names[1:]), rates, delays):
            edges.append(self.add_edge(u, v, p, c, d))
        return edges

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._actors

    def __len__(self) -> int:
        return len(self._actors)

    @property
    def num_actors(self) -> int:
        return len(self._actors)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphStructureError(
                f"no actor {name!r} in graph {self.name!r}"
            ) from None

    def actors(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def actor_names(self) -> List[str]:
        return list(self._actors)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def edge_list(self) -> List[Edge]:
        return list(self._edges.values())

    def edge(self, source: str, sink: str, index: int = 0) -> Edge:
        try:
            return self._edges[(source, sink, index)]
        except KeyError:
            raise GraphStructureError(
                f"no edge ({source!r}, {sink!r}, {index}) in graph "
                f"{self.name!r}"
            ) from None

    def has_edge(self, source: str, sink: str) -> bool:
        return any(k[1] == sink for k in self._out.get(source, ()))

    def out_edges(self, name: str) -> List[Edge]:
        return [self._edges[k] for k in self._out[name]]

    def in_edges(self, name: str) -> List[Edge]:
        return [self._edges[k] for k in self._in[name]]

    def successors(self, name: str) -> List[str]:
        """Distinct successor actor names, in edge insertion order."""
        seen: Set[str] = set()
        result = []
        for k in self._out[name]:
            if k[1] not in seen:
                seen.add(k[1])
                result.append(k[1])
        return result

    def predecessors(self, name: str) -> List[str]:
        seen: Set[str] = set()
        result = []
        for k in self._in[name]:
            if k[0] not in seen:
                seen.add(k[0])
                result.append(k[0])
        return result

    def sources(self) -> List[str]:
        """Actors with no input edges."""
        return [a for a in self._actors if not self._in[a]]

    def sinks(self) -> List[str]:
        """Actors with no output edges."""
        return [a for a in self._actors if not self._out[a]]

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        if not self._actors:
            return True
        start = next(iter(self._actors))
        seen = {start}
        stack = [start]
        while stack:
            a = stack.pop()
            for b in self.successors(a) + self.predecessors(a):
                if b not in seen:
                    seen.add(b)
                    stack.append(b)
        return len(seen) == len(self._actors)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except GraphStructureError:
            return False

    def is_homogeneous(self) -> bool:
        """True if every edge has ``production == consumption`` (section 2)."""
        return all(e.production == e.consumption for e in self.edges())

    def is_chain(self) -> bool:
        """True if the graph is a simple directed chain x1 -> x2 -> ... -> xn."""
        order = self.chain_order()
        return order is not None

    def chain_order(self) -> Optional[List[str]]:
        """The actor order of a chain-structured graph, or ``None``.

        A chain-structured graph (paper section 6) has actors
        ``x1, ..., xN`` with exactly one edge from each ``xi`` to
        ``x(i+1)`` and no other edges.
        """
        n = len(self._actors)
        if n == 0:
            return []
        if self.num_edges != n - 1:
            return None
        starts = [a for a in self._actors if not self._in[a]]
        if n == 1:
            return starts if len(starts) == 1 else None
        if len(starts) != 1:
            return None
        order = [starts[0]]
        while len(order) < n:
            outs = self._out[order[-1]]
            if len(outs) != 1:
                return None
            nxt = outs[0][1]
            if self._in[nxt] != [outs[0]]:
                return None
            order.append(nxt)
        return order

    def topological_order(self) -> List[str]:
        """A topological order of the actors (Kahn's algorithm).

        Deterministic: ties are broken by actor insertion order.
        Raises :class:`GraphStructureError` if the graph has a cycle.
        """
        indeg = {a: 0 for a in self._actors}
        for e in self.edges():
            indeg[e.sink] += 1
        ready = [a for a in self._actors if indeg[a] == 0]
        order: List[str] = []
        position = {a: i for i, a in enumerate(self._actors)}
        while ready:
            ready.sort(key=position.__getitem__)
            a = ready.pop(0)
            order.append(a)
            for e in self.out_edges(a):
                indeg[e.sink] -= 1
                if indeg[e.sink] == 0:
                    ready.append(e.sink)
        if len(order) != len(self._actors):
            raise GraphStructureError(
                f"graph {self.name!r} contains a cycle"
            )
        return order

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, actor_names: Iterable[str], name: str = "") -> "SDFGraph":
        """The induced subgraph on ``actor_names`` (edges with both ends in)."""
        keep = set(actor_names)
        unknown = keep - set(self._actors)
        if unknown:
            raise GraphStructureError(
                f"subgraph: unknown actors {sorted(unknown)!r}"
            )
        sub = SDFGraph(name or f"{self.name}[{len(keep)}]")
        for a in self._actors.values():
            if a.name in keep:
                sub.add_actor(a.name, a.execution_time)
        for e in self.edges():
            if e.source in keep and e.sink in keep:
                sub.add_edge(
                    e.source, e.sink, e.production, e.consumption,
                    e.delay, e.token_size, broadcast=e.broadcast,
                )
        return sub

    def copy(self) -> "SDFGraph":
        return self.subgraph(self._actors, name=self.name)

    def reversed(self) -> "SDFGraph":
        """The graph with every edge reversed (production/consumption swapped).

        Broadcast tags are dropped: reversing a broadcast group would
        turn one-writer-many-readers into many-writers-one-reader,
        which is a merge, not a broadcast.
        """
        rev = SDFGraph(f"{self.name}_rev")
        for a in self._actors.values():
            rev.add_actor(a.name, a.execution_time)
        for e in self.edges():
            rev.add_edge(
                e.sink, e.source, e.consumption, e.production,
                e.delay, e.token_size,
            )
        return rev

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SDFGraph({self.name!r}, actors={self.num_actors}, "
            f"edges={self.num_edges})"
        )
