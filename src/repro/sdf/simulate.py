"""Schedule interpretation: token counting and buffer profiles.

The algorithms in this package reason about schedules symbolically, but
everything they claim must be checkable by actually *running* the
schedule.  This module executes a looped schedule against a graph,
tracking the token count of every edge, and derives:

* validity (paper section 2): each actor fires ``q`` times, no edge goes
  negative, and every edge returns to its initial token count;
* ``max_tokens(e, S)`` (section 4): the peak token count per edge, the
  cost metric of the non-shared buffer model (EQ 1);
* fine-grained and coarse-grained buffer liveness profiles (section 5,
  figure 3), used to validate the lifetime analysis of sections 8–9
  against ground truth;
* deadlock detection for arbitrary (possibly cyclic) graphs, via greedy
  symbolic execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InconsistentGraphError, ScheduleError
from .graph import Edge, SDFGraph
from .repetitions import repetitions_vector
from .schedule import LoopedSchedule

__all__ = [
    "BACKENDS",
    "validate_schedule",
    "is_valid_schedule",
    "max_tokens",
    "buffer_memory_nonshared",
    "TokenTrace",
    "simulate_schedule",
    "coarse_live_intervals",
    "max_live_tokens",
    "assert_deadlock_free",
    "has_valid_schedule",
]


#: Recognized values of the ``backend`` parameter accepted by
#: :func:`validate_schedule`, :func:`max_tokens`,
#: :func:`coarse_live_intervals` and :func:`max_live_tokens`.
#: ``"auto"`` uses the loop-compressed symbolic engine
#: (:mod:`repro.sdf.symbolic`) whenever its closed forms apply —
#: bit-identical results in time independent of the firing count — and
#: falls back to the firing interpreter otherwise (delays, self-loops,
#: non-SAS or non-topological schedules).  ``"batched"`` executes one
#: closed-form step per counted firing *block* (a ``Firing`` leaf)
#: instead of one step per firing — the observable engine behind the
#: vectorization pass (:mod:`repro.scheduling.vectorize`); it supports
#: every graph/schedule the interpreter does and is bit-identical to
#: it.
BACKENDS = ("auto", "interpreter", "symbolic", "batched")


def _try_symbolic(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    backend: str,
    recorder=None,
):
    """Resolve ``backend`` to a SymbolicTrace, None (interpret), or raise."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend in ("interpreter", "batched"):
        # "batched" is dispatched before _try_symbolic is consulted;
        # reaching here with it simply means: do not use symbolic.
        return None
    # Function-level import: repro.sdf.__init__ imports this module, and
    # symbolic pulls in repro.lifetimes which imports repro.sdf.
    from .symbolic import SymbolicTrace

    trace = SymbolicTrace.try_build(graph, schedule, recorder=recorder)
    if trace is None and backend == "symbolic":
        raise ScheduleError(
            "symbolic backend does not support this graph/schedule "
            "(needs a delayless, self-loop-free graph under a full "
            "topological single appearance schedule)"
        )
    return trace


def _fire(
    graph: SDFGraph,
    actor: str,
    tokens: Dict[Tuple[str, str, int], int],
    allow_negative: bool = False,
) -> None:
    for e in graph.in_edges(actor):
        tokens[e.key] -= e.consumption
        if tokens[e.key] < 0 and not allow_negative:
            raise ScheduleError(
                f"firing {actor!r} drives edge {e} to "
                f"{tokens[e.key]} tokens"
            )
    for e in graph.out_edges(actor):
        tokens[e.key] += e.production


def _check_firing_counts(
    graph: SDFGraph, schedule: LoopedSchedule
) -> Dict[str, int]:
    """The structural half of schedule validation: firing counts only.

    Checks that every fired actor exists, every graph actor fires, and
    the per-actor counts are a uniform positive multiple of the
    repetitions vector.  Shared between the interpreter and the
    block-level engine (:mod:`repro.sdf.batched`) so both enforce
    identical count semantics.
    """
    counts = schedule.firings_per_actor()
    for a in counts:
        if a not in graph:
            raise ScheduleError(f"schedule fires unknown actor {a!r}")
    missing = [a for a in graph.actor_names() if a not in counts]
    if missing:
        raise ScheduleError(f"schedule never fires actors {missing!r}")

    q = repetitions_vector(graph)
    blocking = None
    for a, n in counts.items():
        if n % q[a] != 0:
            raise ScheduleError(
                f"actor {a!r} fires {n} times, not a multiple of its "
                f"repetition count {q[a]}"
            )
        factor = n // q[a]
        if blocking is None:
            blocking = factor
        elif factor != blocking:
            raise ScheduleError(
                f"actor firing counts are not a uniform multiple of the "
                f"repetitions vector (actor {a!r}: {factor} periods, "
                f"expected {blocking})"
            )
    return counts


def validate_schedule(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    backend: str = "auto",
    recorder=None,
) -> Dict[str, int]:
    """Check that ``schedule`` is a valid schedule for ``graph``.

    Returns the per-actor firing counts on success.  With the default
    ``backend="auto"``, schedules the symbolic engine covers are proved
    valid from the schedule tree (the closed forms guarantee no
    underflow and per-period balance) without the O(firings) replay.

    Raises
    ------
    ScheduleError
        If an actor outside the graph is fired, a firing would consume
        from an empty buffer, an actor fires a number of times that is
        not its repetition count (times a common positive integer), or
        an edge does not return to its initial token count.
    """
    if backend == "batched":
        from .batched import batched_validate_schedule

        return batched_validate_schedule(graph, schedule, recorder=recorder)
    counts = _check_firing_counts(graph, schedule)

    if _try_symbolic(graph, schedule, backend, recorder=recorder) is not None:
        # The symbolic preconditions hold: within each least-parent
        # iteration all production precedes all consumption and balances
        # it exactly, so no edge underflows and every edge returns to
        # its initial (zero) token count.  The replay below would find
        # nothing.
        if recorder is not None:
            recorder.count("sim.symbolic_shortcuts")
        return counts

    if recorder is not None:
        recorder.count("sim.firings", sum(counts.values()))
    tokens = {e.key: e.delay for e in graph.edges()}
    for actor in schedule.firing_sequence():
        _fire(graph, actor, tokens)
    for e in graph.edges():
        if tokens[e.key] != e.delay:
            raise ScheduleError(
                f"edge {e} ends with {tokens[e.key]} tokens, "
                f"expected {e.delay}"
            )
    return counts


def is_valid_schedule(graph: SDFGraph, schedule: LoopedSchedule) -> bool:
    try:
        validate_schedule(graph, schedule)
        return True
    except (ScheduleError, InconsistentGraphError):
        return False


def max_tokens(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    backend: str = "auto",
    recorder=None,
) -> Dict[Tuple[str, str, int], int]:
    """``max_tokens(e, S)`` for every edge: the peak token count.

    This is the size of the buffer needed for each edge when each edge
    gets its own, non-shared buffer.  Includes initial tokens.  With
    the default ``backend="auto"`` the peaks of supported schedules
    come from the closed forms of :mod:`repro.sdf.symbolic` (cost
    independent of the firing count) and are bit-identical to the
    firing interpreter's.

    Examples
    --------
    Paper section 4: for figure 1's graph with S1 = (3A)(6B)(2C),
    ``max_tokens((A,B)) == 7`` (one delay plus six produced) and for
    S2 = (3A(2B))(2C) it is 3.
    """
    if backend == "batched":
        from .batched import batched_max_tokens

        return batched_max_tokens(graph, schedule, recorder=recorder)
    symbolic = _try_symbolic(graph, schedule, backend, recorder=recorder)
    if symbolic is not None:
        if recorder is not None:
            recorder.count("sim.symbolic_shortcuts")
        return symbolic.max_tokens()
    peaks = {e.key: e.delay for e in graph.edges()}
    tokens = {e.key: e.delay for e in graph.edges()}
    fired = 0
    for actor in schedule.firing_sequence():
        _fire(graph, actor, tokens)
        fired += 1
        for e in graph.out_edges(actor):
            if tokens[e.key] > peaks[e.key]:
                peaks[e.key] = tokens[e.key]
    if recorder is not None:
        recorder.count("sim.firings", fired)
    return peaks


def buffer_memory_nonshared(graph: SDFGraph, schedule: LoopedSchedule) -> int:
    """``bufmem(S)`` under the non-shared model (EQ 1), in words.

    A broadcast group owns *one* physical buffer: every member sink
    reads the same produced stream, and each member's unread tokens are
    a suffix of that stream, so the group's occupancy is the *maximum*
    member token count (the union of suffixes is the largest suffix) —
    counted once, not once per member.
    """
    peaks = max_tokens(graph, schedule)
    by_key = {e.key: e for e in graph.edges()}
    total = 0
    group_peaks: Dict[str, int] = {}
    group_sizes: Dict[str, int] = {}
    for k, peak in peaks.items():
        e = by_key[k]
        if e.broadcast is None:
            total += peak * e.token_size
        else:
            group_peaks[e.broadcast] = max(
                group_peaks.get(e.broadcast, 0), peak
            )
            group_sizes[e.broadcast] = e.token_size
    for name, peak in group_peaks.items():
        total += peak * group_sizes[name]
    return total


#: Full-state snapshots are kept every this many firings; states between
#: checkpoints are reconstructed by replaying the per-firing deltas.
#: Overridable per trace (``checkpoint_stride=``) so tests and the
#: differential harness can force multiple checkpoints on short
#: schedules.
_CHECKPOINT_STRIDE = 64


class _CountsView(Sequence):
    """Read-only sequence of per-step token states, built on demand.

    Presents the historical ``trace.counts`` interface — ``counts[t]``
    is a dict of token counts after the ``t``-th firing — while the
    trace itself stores only deltas.  Random access replays at most
    ``_CHECKPOINT_STRIDE`` deltas from the nearest checkpoint; sequential
    iteration replays each delta once.
    """

    def __init__(self, trace: "TokenTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace._deltas) + 1

    def __getitem__(self, t: int) -> Dict[Tuple[str, str, int], int]:
        n = len(self)
        if isinstance(t, slice):
            return [self[i] for i in range(*t.indices(n))]
        if t < 0:
            t += n
        if not 0 <= t < n:
            raise IndexError(f"trace step {t} out of range")
        trace = self._trace
        stride = trace._stride
        base = t // stride
        state = dict(trace._checkpoints[base])
        for step in range(base * stride, t):
            state.update(trace._deltas[step])
        return state

    def __iter__(self) -> Iterator[Dict[Tuple[str, str, int], int]]:
        state = dict(self._trace._checkpoints[0])
        yield dict(state)
        for delta in self._trace._deltas:
            state.update(delta)
            yield dict(state)


class TokenTrace:
    """Token counts of every edge after each firing of a schedule.

    ``counts[t]`` is the token state after the ``t``-th firing;
    ``counts[0]`` is the initial state (delays).  ``firings[t]`` is the
    actor fired at step ``t`` (1-based alignment with ``counts``).

    Storage is delta-based: each step records only the edges the firing
    touched (plus a full checkpoint every ``_CHECKPOINT_STRIDE`` steps),
    so a trace costs O(firings x degree) instead of O(firings x edges).
    Per-edge peaks and the summed-token peak are computed while the
    trace is recorded, so :meth:`peak` and :meth:`total_peak` are O(1).
    """

    def __init__(
        self,
        edge_keys: Sequence[Tuple[str, str, int]],
        initial: Dict[Tuple[str, str, int], int],
        checkpoint_stride: int = _CHECKPOINT_STRIDE,
    ) -> None:
        if checkpoint_stride < 1:
            raise ValueError("checkpoint_stride must be >= 1")
        self.edge_keys: List[Tuple[str, str, int]] = list(edge_keys)
        self._stride = checkpoint_stride
        self.firings: List[str] = []
        self._deltas: List[Tuple[Tuple[Tuple[str, str, int], int], ...]] = []
        self._checkpoints: List[Dict[Tuple[str, str, int], int]] = [dict(initial)]
        self._peaks: Dict[Tuple[str, str, int], int] = dict(initial)
        self._total = sum(initial.values())
        self._total_peak = self._total

    @property
    def counts(self) -> _CountsView:
        return _CountsView(self)

    def _record(
        self,
        actor: str,
        touched: Dict[Tuple[str, str, int], int],
        state: Dict[Tuple[str, str, int], int],
    ) -> None:
        """Append one firing: ``touched`` maps edge key -> new count."""
        self.firings.append(actor)
        delta = tuple(touched.items())
        for key, value in delta:
            if value > self._peaks[key]:
                self._peaks[key] = value
        self._deltas.append(delta)
        if len(self._deltas) % self._stride == 0:
            self._checkpoints.append(dict(state))

    def peak(self, key: Tuple[str, str, int]) -> int:
        return self._peaks[key]

    def total_peak(self) -> int:
        """Peak over time of the summed live tokens (all edges)."""
        return self._total_peak


def simulate_schedule(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    checkpoint_stride: int = _CHECKPOINT_STRIDE,
    recorder=None,
) -> TokenTrace:
    """Run ``schedule`` and record the token trace (delta-encoded).

    The trace exposes the same interface as a full per-step snapshot
    list but stores only the edges each firing touches, which keeps the
    188-node filterbanks and the full-scale figure 26/27 sweeps
    tractable.  ``checkpoint_stride`` controls how often a full snapshot
    is kept (tests and the differential harness lower it to exercise
    checkpoint replay on short schedules).
    """
    tokens = {e.key: e.delay for e in graph.edges()}
    trace = TokenTrace(
        [e.key for e in graph.edges()], tokens,
        checkpoint_stride=checkpoint_stride,
    )
    in_edges = {a: graph.in_edges(a) for a in graph.actor_names()}
    out_edges = {a: graph.out_edges(a) for a in graph.actor_names()}
    for actor in schedule.firing_sequence():
        ins = in_edges.get(actor)
        if ins is None:
            ins = graph.in_edges(actor)  # raises for unknown actors
        touched: Dict[Tuple[str, str, int], int] = {}
        total_change = 0
        for e in ins:
            value = tokens[e.key] - e.consumption
            if value < 0:
                raise ScheduleError(
                    f"firing {actor!r} drives edge {e} to {value} tokens"
                )
            tokens[e.key] = value
            touched[e.key] = value
            total_change -= e.consumption
        for e in out_edges[actor]:
            value = tokens[e.key] + e.production
            tokens[e.key] = value
            touched[e.key] = value
            total_change += e.production
        trace._total += total_change
        if trace._total > trace._total_peak:
            trace._total_peak = trace._total
        trace._record(actor, touched, tokens)
    if recorder is not None:
        recorder.count("sim.firings", len(trace.firings))
    return trace


@dataclass
class _EpisodeScan:
    """One streaming simulation's coarse-model episode data.

    ``intervals`` are the per-edge live episodes; ``episodes`` flattens
    them to ``(edge key, start, stop, array words)`` with the array size
    being everything transferred during the episode (the coarse model's
    buffer) — both derived in a single pass over the firing sequence.

    Broadcast members appear per-edge in ``intervals`` (logical token
    counts) but their *physical* buffer is shared: ``group_episodes``
    holds the merged episodes, one per broadcast group, live while any
    member holds tokens and sized by the shared stream (production
    counted once; occupancy = max member count).  ``member_keys`` lets
    memory accounting swap member episodes for their group's.
    """

    intervals: Dict[Tuple[str, str, int], List[Tuple[int, int]]]
    episodes: List[Tuple[Tuple[str, str, int], int, int, int]]
    group_episodes: List[Tuple[str, int, int, int]]
    member_keys: frozenset


def _scan_episodes(graph: SDFGraph, schedule: LoopedSchedule) -> _EpisodeScan:
    """Simulate once, streaming out live episodes and their array sizes.

    Replaces the historical two-full-trace pipeline (simulate, then
    re-simulate for intervals, then walk O(firings x edges) snapshots):
    liveness can only change on the edges a firing touches, so one pass
    tracking per-edge open episodes suffices.
    """
    by_key = {e.key: e for e in graph.edges()}
    tokens = {k: e.delay for k, e in by_key.items()}
    in_edges = {a: graph.in_edges(a) for a in graph.actor_names()}
    out_edges = {a: graph.out_edges(a) for a in graph.actor_names()}

    intervals: Dict[Tuple[str, str, int], List[Tuple[int, int]]] = {
        k: [] for k in by_key
    }
    episodes: List[Tuple[Tuple[str, str, int], int, int, int]] = []
    # Per-edge open episode state: start step, tokens present at the
    # start, tokens produced by src(e) since (through the current
    # firing), and the peak token occupancy seen during the episode.
    # Edges with initial tokens start live at step 0.
    open_at: Dict[Tuple[str, str, int], Optional[int]] = {}
    start_count: Dict[Tuple[str, str, int], int] = {}
    produced: Dict[Tuple[str, str, int], int] = {}
    peak_occ: Dict[Tuple[str, str, int], int] = {}
    for k, e in by_key.items():
        open_at[k] = 0 if e.delay > 0 else None
        start_count[k] = e.delay
        produced[k] = 0
        peak_occ[k] = e.delay

    # Broadcast groups: one shared physical buffer per group, live
    # while *any* member holds tokens.  Production is counted once per
    # group (all members receive the same stream); occupancy is the
    # max member count (union of unread suffixes = largest suffix).
    groups = graph.broadcast_groups()
    group_keys = {name: [m.key for m in members] for name, members in groups.items()}
    group_episodes: List[Tuple[str, int, int, int]] = []
    g_open: Dict[str, Optional[int]] = {}
    g_start: Dict[str, int] = {}
    g_produced: Dict[str, int] = {}
    g_peak: Dict[str, int] = {}
    for name, members in groups.items():
        first = members[0]
        g_open[name] = 0 if first.delay > 0 else None
        g_start[name] = first.delay
        g_produced[name] = 0
        g_peak[name] = first.delay

    def group_words(name: str) -> int:
        first = groups[name][0]
        if first.delay > 0:
            return g_peak[name] * first.token_size
        return (g_start[name] + g_produced[name]) * first.token_size

    def episode_words(k: Tuple[str, str, int], e: Edge) -> int:
        # A delayed edge wraps its del(e) tokens around the period
        # boundary, so its buffer is circular: capacity is the peak
        # token occupancy, not the episode's total traffic.  Delayless
        # episodes fill a linear array with everything transferred
        # (tokens at start plus tokens produced), as in section 5.
        if e.delay > 0:
            return peak_occ[k] * e.token_size
        return (start_count[k] + produced[k]) * e.token_size

    t = 0
    for actor in schedule.firing_sequence():
        t += 1
        ins = in_edges.get(actor)
        if ins is None:
            ins = graph.in_edges(actor)  # raises for unknown actors
        for e in ins:
            value = tokens[e.key] - e.consumption
            if value < 0:
                raise ScheduleError(
                    f"firing {actor!r} drives edge {e} to {value} tokens"
                )
            tokens[e.key] = value
        outs = out_edges[actor]
        for e in outs:
            tokens[e.key] += e.production
        # Liveness transitions, evaluated on the post-firing state (the
        # only state the coarse model sees; a self-loop that transits
        # zero mid-firing does not end its episode).
        for e in outs:
            k = e.key
            if open_at[k] is None:
                # Production on a dead edge always revives it.
                open_at[k] = t - 1
                start_count[k] = 0
                produced[k] = e.production
                peak_occ[k] = tokens[k]
            else:
                produced[k] += e.production
                if tokens[k] > peak_occ[k]:
                    peak_occ[k] = tokens[k]
        for e in ins:
            k = e.key
            if tokens[k] == 0 and open_at[k] is not None:
                s = open_at[k]
                intervals[k].append((s, t))
                episodes.append((k, s, t, episode_words(k, e)))
                open_at[k] = None
                produced[k] = 0
                peak_occ[k] = 0
        # Group liveness transitions (same post-firing convention).
        touched_groups = {e.broadcast for e in outs if e.broadcast}
        touched_groups.update(e.broadcast for e in ins if e.broadcast)
        for name in touched_groups:
            occ = max(tokens[k] for k in group_keys[name])
            if g_open[name] is None:
                if occ > 0:
                    g_open[name] = t - 1
                    g_start[name] = 0
                    g_produced[name] = (
                        groups[name][0].production
                        if actor == groups[name][0].source
                        else 0
                    )
                    g_peak[name] = occ
            else:
                if actor == groups[name][0].source:
                    g_produced[name] += groups[name][0].production
                if occ > g_peak[name]:
                    g_peak[name] = occ
                if occ == 0:
                    s = g_open[name]
                    group_episodes.append((name, s, t, group_words(name)))
                    g_open[name] = None
                    g_produced[name] = 0
                    g_peak[name] = 0
    for k, e in by_key.items():
        if open_at[k] is not None:
            s = open_at[k]
            intervals[k].append((s, t))
            episodes.append((k, s, t, episode_words(k, e)))
    for name in groups:
        if g_open[name] is not None:
            s = g_open[name]
            group_episodes.append((name, s, t, group_words(name)))
    return _EpisodeScan(
        intervals=intervals,
        episodes=episodes,
        group_episodes=group_episodes,
        member_keys=frozenset(
            k for keys in group_keys.values() for k in keys
        ),
    )


def coarse_live_intervals(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    backend: str = "auto",
    recorder=None,
) -> Dict[Tuple[str, str, int], List[Tuple[int, int]]]:
    """Ground-truth coarse-grained liveness intervals per edge.

    Under the coarse model (section 5, figure 3) a buffer is live from
    the firing that makes its token count non-zero until the firing that
    returns it to zero; an edge with initial tokens starts live.  Time is
    measured in *firings* of the flattened schedule: the interval
    ``(s, t)`` means the buffer is live after firing ``s`` up to and
    including the state after firing ``t`` (with 0 = initial state).

    Used by tests to cross-check the schedule-tree lifetime extraction.
    Computed in one streaming pass (no trace materialization); with the
    default ``backend="auto"``, supported schedules skip the pass and
    enumerate the episodes from their mixed-radix closed form instead
    (output-sized rather than firing-count-sized).
    """
    if backend == "batched":
        from .batched import batched_coarse_live_intervals

        return batched_coarse_live_intervals(
            graph, schedule, recorder=recorder
        )
    symbolic = _try_symbolic(graph, schedule, backend, recorder=recorder)
    if symbolic is not None:
        if recorder is not None:
            recorder.count("sim.symbolic_shortcuts")
        return symbolic.coarse_live_intervals()
    if recorder is not None:
        recorder.count(
            "sim.firings", sum(schedule.firings_per_actor().values())
        )
    return _scan_episodes(graph, schedule).intervals


def max_live_tokens(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    backend: str = "auto",
    recorder=None,
) -> int:
    """Peak of the coarse-model live-array total over the schedule.

    Under the coarse model each live episode of a delayless edge's
    buffer requires an array holding *all* tokens that pass through
    during that episode (tokens present at episode start plus tokens
    produced before it drains); a delayed edge's buffer is circular
    (its initial tokens wrap the period boundary) and needs only its
    peak token occupancy.  This sums, per time step, the episode array
    sizes of the edges whose episodes cover that step — ground truth
    against which the schedule-tree lifetime extraction and the
    allocators are checked.

    A single simulation produces both the episodes and their sizes (the
    historical implementation simulated the same schedule three times
    and walked full per-step snapshots).  With the default
    ``backend="auto"``, supported schedules instead resolve the peak by
    a hierarchical range-max over the schedule tree — no simulation and
    no episode enumeration at all.
    """
    if backend == "batched":
        from .batched import batched_max_live_tokens

        return batched_max_live_tokens(graph, schedule, recorder=recorder)
    symbolic = _try_symbolic(graph, schedule, backend, recorder=recorder)
    if symbolic is not None:
        if recorder is not None:
            recorder.count("sim.symbolic_shortcuts")
        return symbolic.max_live_tokens()
    if recorder is not None:
        recorder.count(
            "sim.firings", sum(schedule.firings_per_actor().values())
        )
    return _sweep_peak(_scan_episodes(graph, schedule))


def _sweep_peak(scan: _EpisodeScan) -> int:
    """Peak summed episode size of one scan (shared with the batched
    engine so both resolve ties the same way)."""
    events: List[Tuple[int, int]] = []  # (time, +size/-size)
    # Broadcast member episodes are logical views of one shared buffer;
    # memory accounting uses the merged group episodes instead.
    for k, s, t, size in scan.episodes:
        if k in scan.member_keys:
            continue
        events.append((s, size))
        events.append((t, -size))
    for _, s, t, size in scan.group_episodes:
        events.append((s, size))
        events.append((t, -size))
    # Intervals are half-open: a buffer dying at firing t frees its
    # memory before anything born at t occupies it, so deaths (negative
    # deltas) sort first at equal times.
    events.sort(key=lambda ev: (ev[0], ev[1]))
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def assert_deadlock_free(graph: SDFGraph) -> LoopedSchedule:
    """Prove a consistent graph deadlock-free by constructing a schedule.

    Greedy symbolic execution: repeatedly fire any actor that has enough
    input tokens and has not yet reached its repetition count.  For SDF
    this is complete — if the greedy run stalls, *every* schedule
    deadlocks (class-S algorithm of Lee & Messerschmitt).

    Returns the constructed (generally non-single-appearance) valid
    schedule as a flat firing list.

    Raises
    ------
    InconsistentGraphError
        With ``kind="deadlock"`` if the graph deadlocks, or
        ``kind="rate"`` if the balance equations fail.
    """
    from .schedule import Firing

    q = repetitions_vector(graph)
    tokens = {e.key: e.delay for e in graph.edges()}
    remaining = dict(q)
    firings: List[str] = []

    def can_fire(a: str) -> bool:
        return remaining[a] > 0 and all(
            tokens[e.key] >= e.consumption for e in graph.in_edges(a)
        )

    ready = [a for a in graph.actor_names() if can_fire(a)]
    while ready:
        a = ready.pop()
        if not can_fire(a):
            continue
        _fire(graph, a, tokens)
        remaining[a] -= 1
        firings.append(a)
        if can_fire(a):
            ready.append(a)
        for e in graph.out_edges(a):
            if can_fire(e.sink):
                ready.append(e.sink)
    if any(r > 0 for r in remaining.values()):
        stuck = sorted(a for a, r in remaining.items() if r > 0)
        raise InconsistentGraphError(
            f"graph {graph.name!r} deadlocks; actors never enabled: {stuck}",
            kind="deadlock",
        )
    return LoopedSchedule([Firing(a) for a in firings])


def has_valid_schedule(graph: SDFGraph) -> bool:
    """True if ``graph`` is consistent: rates balance and no deadlock."""
    try:
        assert_deadlock_free(graph)
        return True
    except InconsistentGraphError:
        return False
