"""Schedule interpretation: token counting and buffer profiles.

The algorithms in this package reason about schedules symbolically, but
everything they claim must be checkable by actually *running* the
schedule.  This module executes a looped schedule against a graph,
tracking the token count of every edge, and derives:

* validity (paper section 2): each actor fires ``q`` times, no edge goes
  negative, and every edge returns to its initial token count;
* ``max_tokens(e, S)`` (section 4): the peak token count per edge, the
  cost metric of the non-shared buffer model (EQ 1);
* fine-grained and coarse-grained buffer liveness profiles (section 5,
  figure 3), used to validate the lifetime analysis of sections 8–9
  against ground truth;
* deadlock detection for arbitrary (possibly cyclic) graphs, via greedy
  symbolic execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import InconsistentGraphError, ScheduleError
from .graph import Edge, SDFGraph
from .repetitions import repetitions_vector
from .schedule import LoopedSchedule

__all__ = [
    "validate_schedule",
    "is_valid_schedule",
    "max_tokens",
    "buffer_memory_nonshared",
    "TokenTrace",
    "simulate_schedule",
    "coarse_live_intervals",
    "max_live_tokens",
    "assert_deadlock_free",
    "has_valid_schedule",
]


def _fire(
    graph: SDFGraph,
    actor: str,
    tokens: Dict[Tuple[str, str, int], int],
    allow_negative: bool = False,
) -> None:
    for e in graph.in_edges(actor):
        tokens[e.key] -= e.consumption
        if tokens[e.key] < 0 and not allow_negative:
            raise ScheduleError(
                f"firing {actor!r} drives edge {e} to "
                f"{tokens[e.key]} tokens"
            )
    for e in graph.out_edges(actor):
        tokens[e.key] += e.production


def validate_schedule(graph: SDFGraph, schedule: LoopedSchedule) -> Dict[str, int]:
    """Check that ``schedule`` is a valid schedule for ``graph``.

    Returns the per-actor firing counts on success.

    Raises
    ------
    ScheduleError
        If an actor outside the graph is fired, a firing would consume
        from an empty buffer, an actor fires a number of times that is
        not its repetition count (times a common positive integer), or
        an edge does not return to its initial token count.
    """
    counts = schedule.firings_per_actor()
    for a in counts:
        if a not in graph:
            raise ScheduleError(f"schedule fires unknown actor {a!r}")
    missing = [a for a in graph.actor_names() if a not in counts]
    if missing:
        raise ScheduleError(f"schedule never fires actors {missing!r}")

    q = repetitions_vector(graph)
    blocking = None
    for a, n in counts.items():
        if n % q[a] != 0:
            raise ScheduleError(
                f"actor {a!r} fires {n} times, not a multiple of its "
                f"repetition count {q[a]}"
            )
        factor = n // q[a]
        if blocking is None:
            blocking = factor
        elif factor != blocking:
            raise ScheduleError(
                f"actor firing counts are not a uniform multiple of the "
                f"repetitions vector (actor {a!r}: {factor} periods, "
                f"expected {blocking})"
            )

    tokens = {e.key: e.delay for e in graph.edges()}
    for actor in schedule.firing_sequence():
        _fire(graph, actor, tokens)
    for e in graph.edges():
        if tokens[e.key] != e.delay:
            raise ScheduleError(
                f"edge {e} ends with {tokens[e.key]} tokens, "
                f"expected {e.delay}"
            )
    return counts


def is_valid_schedule(graph: SDFGraph, schedule: LoopedSchedule) -> bool:
    try:
        validate_schedule(graph, schedule)
        return True
    except (ScheduleError, InconsistentGraphError):
        return False


def max_tokens(graph: SDFGraph, schedule: LoopedSchedule) -> Dict[Tuple[str, str, int], int]:
    """``max_tokens(e, S)`` for every edge: the peak token count.

    This is the size of the buffer needed for each edge when each edge
    gets its own, non-shared buffer.  Includes initial tokens.

    Examples
    --------
    Paper section 4: for figure 1's graph with S1 = (3A)(6B)(2C),
    ``max_tokens((A,B)) == 7`` (one delay plus six produced) and for
    S2 = (3A(2B))(2C) it is 3.
    """
    peaks = {e.key: e.delay for e in graph.edges()}
    tokens = {e.key: e.delay for e in graph.edges()}
    for actor in schedule.firing_sequence():
        _fire(graph, actor, tokens)
        for e in graph.out_edges(actor):
            if tokens[e.key] > peaks[e.key]:
                peaks[e.key] = tokens[e.key]
    return peaks


def buffer_memory_nonshared(graph: SDFGraph, schedule: LoopedSchedule) -> int:
    """``bufmem(S)`` under the non-shared model (EQ 1), in words."""
    peaks = max_tokens(graph, schedule)
    by_key = {e.key: e for e in graph.edges()}
    return sum(peaks[k] * by_key[k].token_size for k in peaks)


@dataclass
class TokenTrace:
    """Token counts of every edge after each firing of a schedule.

    ``counts[t]`` is the token state after the ``t``-th firing;
    ``counts[0]`` is the initial state (delays).  ``firings[t]`` is the
    actor fired at step ``t`` (1-based alignment with ``counts``).
    """

    edge_keys: List[Tuple[str, str, int]]
    firings: List[str]
    counts: List[Dict[Tuple[str, str, int], int]] = field(default_factory=list)

    def peak(self, key: Tuple[str, str, int]) -> int:
        return max(state[key] for state in self.counts)

    def total_peak(self) -> int:
        """Peak over time of the summed live tokens (all edges)."""
        return max(sum(state.values()) for state in self.counts)


def simulate_schedule(graph: SDFGraph, schedule: LoopedSchedule) -> TokenTrace:
    """Run ``schedule`` and record the full token trace.

    The trace length is the number of firings plus one; use only for
    moderately sized schedules (tests, small experiments).
    """
    tokens = {e.key: e.delay for e in graph.edges()}
    trace = TokenTrace(edge_keys=[e.key for e in graph.edges()], firings=[])
    trace.counts.append(dict(tokens))
    for actor in schedule.firing_sequence():
        _fire(graph, actor, tokens)
        trace.firings.append(actor)
        trace.counts.append(dict(tokens))
    return trace


def coarse_live_intervals(
    graph: SDFGraph, schedule: LoopedSchedule
) -> Dict[Tuple[str, str, int], List[Tuple[int, int]]]:
    """Ground-truth coarse-grained liveness intervals per edge.

    Under the coarse model (section 5, figure 3) a buffer is live from
    the firing that makes its token count non-zero until the firing that
    returns it to zero; an edge with initial tokens starts live.  Time is
    measured in *firings* of the flattened schedule: the interval
    ``(s, t)`` means the buffer is live after firing ``s`` up to and
    including the state after firing ``t`` (with 0 = initial state).

    Used by tests to cross-check the schedule-tree lifetime extraction.
    """
    trace = simulate_schedule(graph, schedule)
    intervals: Dict[Tuple[str, str, int], List[Tuple[int, int]]] = {
        k: [] for k in trace.edge_keys
    }
    open_at: Dict[Tuple[str, str, int], Optional[int]] = {}
    for k in trace.edge_keys:
        open_at[k] = 0 if trace.counts[0][k] > 0 else None
    for t in range(1, len(trace.counts)):
        state = trace.counts[t]
        for k in trace.edge_keys:
            live = state[k] > 0
            if live and open_at[k] is None:
                # Became live at this firing: the producer fired at step t.
                open_at[k] = t - 1
            elif not live and open_at[k] is not None:
                intervals[k].append((open_at[k], t))
                open_at[k] = None
    for k in trace.edge_keys:
        if open_at[k] is not None:
            intervals[k].append((open_at[k], len(trace.counts) - 1))
    return intervals


def max_live_tokens(graph: SDFGraph, schedule: LoopedSchedule) -> int:
    """Peak of the coarse-model live-array total over the schedule.

    Under the coarse model each live episode of an edge's buffer requires
    an array holding *all* tokens that pass through during that episode
    (tokens present at episode start plus tokens produced before it
    drains).  This sums, per time step, the episode array sizes of the
    edges whose episodes cover that step — ground truth against which the
    schedule-tree lifetime extraction and the allocators are checked.
    """
    trace = simulate_schedule(graph, schedule)
    intervals = coarse_live_intervals(graph, schedule)
    by_key = {e.key: e for e in graph.edges()}
    events: List[Tuple[int, int]] = []  # (time, +size/-size)
    for k, ivals in intervals.items():
        e = by_key[k]
        for s, t in ivals:
            # Tokens present at episode start plus everything produced
            # by src(e) during firings s+1 .. t.
            produced = sum(
                e.production
                for step in range(s, t)
                if trace.firings[step] == e.source
            )
            size = (trace.counts[s][k] + produced) * e.token_size
            events.append((s, size))
            events.append((t, -size))
    # Intervals are half-open: a buffer dying at firing t frees its
    # memory before anything born at t occupies it, so deaths (negative
    # deltas) sort first at equal times.
    events.sort(key=lambda ev: (ev[0], ev[1]))
    live = 0
    peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def assert_deadlock_free(graph: SDFGraph) -> LoopedSchedule:
    """Prove a consistent graph deadlock-free by constructing a schedule.

    Greedy symbolic execution: repeatedly fire any actor that has enough
    input tokens and has not yet reached its repetition count.  For SDF
    this is complete — if the greedy run stalls, *every* schedule
    deadlocks (class-S algorithm of Lee & Messerschmitt).

    Returns the constructed (generally non-single-appearance) valid
    schedule as a flat firing list.

    Raises
    ------
    InconsistentGraphError
        With ``kind="deadlock"`` if the graph deadlocks, or
        ``kind="rate"`` if the balance equations fail.
    """
    from .schedule import Firing

    q = repetitions_vector(graph)
    tokens = {e.key: e.delay for e in graph.edges()}
    remaining = dict(q)
    firings: List[str] = []

    def can_fire(a: str) -> bool:
        return remaining[a] > 0 and all(
            tokens[e.key] >= e.consumption for e in graph.in_edges(a)
        )

    ready = [a for a in graph.actor_names() if can_fire(a)]
    while ready:
        a = ready.pop()
        if not can_fire(a):
            continue
        _fire(graph, a, tokens)
        remaining[a] -= 1
        firings.append(a)
        if can_fire(a):
            ready.append(a)
        for e in graph.out_edges(a):
            if can_fire(e.sink):
                ready.append(e.sink)
    if any(r > 0 for r in remaining.values()):
        stuck = sorted(a for a, r in remaining.items() if r > 0)
        raise InconsistentGraphError(
            f"graph {graph.name!r} deadlocks; actors never enabled: {stuck}",
            kind="deadlock",
        )
    return LoopedSchedule([Firing(a) for a in firings])


def has_valid_schedule(graph: SDFGraph) -> bool:
    """True if ``graph`` is consistent: rates balance and no deadlock."""
    try:
        assert_deadlock_free(graph)
        return True
    except InconsistentGraphError:
        return False
