"""Block-level schedule observables: one closed-form step per firing block.

The firing interpreter in :mod:`repro.sdf.simulate` pays one step per
firing; the symbolic engine (:mod:`repro.sdf.symbolic`) pays nothing
per firing but only covers delay-free, self-loop-free graphs under
topological single appearance schedules.  This module is the middle
point the vectorization pass (:mod:`repro.scheduling.vectorize`) needs:
it executes one step per *dispatch block* — a ``Firing(actor, n)`` leaf
visit — and covers everything the interpreter covers (delays,
self-loops, broadcasts, cyclic schedules, non-SAS trees).

Within a block of ``n`` firings of one actor, every touched token count
is linear in the firing index ``i``: an in-edge falls by ``c`` per
firing, an out-edge rises by ``p``, a self-loop moves by ``p - c``, and
a broadcast group's occupancy is the max of its members' linears.  Three
consequences carry the whole module:

* underflow (the mid-firing value ``T - c`` going negative) is checked
  at the endpoints of each linear, and the first failing firing is
  recoverable in closed form — same exception, same message, same
  failing edge as the interpreter;
* post-firing peaks of a linear sit at ``i = 1`` or ``i = n``, so
  ``max_tokens`` and episode peak occupancy need two evaluations per
  block, not ``n``;
* on a *valid* schedule no token count reaches zero strictly inside a
  block (a non-self in-edge at zero underflows on the next firing of
  the same block; rising counts never return to zero), so coarse-model
  episodes open at block starts and close at block ends — the episode
  bookkeeping of ``_scan_episodes`` transplants to block granularity
  unchanged.

All four observables are bit-identical to the interpreter by
construction and checked to be so by ``oracle.vectorize`` and
``benchmarks/bench_vectorize.py`` on every run.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..exceptions import ScheduleError
from .graph import SDFGraph
from .schedule import Firing, LoopedSchedule, ScheduleNode
from .simulate import (
    _EpisodeScan,
    _check_firing_counts,
    _sweep_peak,
)

__all__ = [
    "batched_validate_schedule",
    "batched_max_tokens",
    "batched_coarse_live_intervals",
    "batched_max_live_tokens",
]

Key = Tuple[str, str, int]


def iter_blocks(schedule: LoopedSchedule) -> Iterator[Tuple[str, int]]:
    """The dispatch-block sequence of one schedule period.

    Yields ``(actor, n)`` per ``Firing`` leaf visit, in execution
    order.  A fully blocked SAS yields one entry per actor; a flat
    unblocked schedule degenerates to one entry per firing (the engine
    then matches the interpreter step for step).
    """

    def walk(node: ScheduleNode) -> Iterator[Tuple[str, int]]:
        if isinstance(node, Firing):
            yield node.actor, node.count
        else:
            for _ in range(node.count):
                for child in node.body:
                    yield from walk(child)

    for node in schedule.body:
        yield from walk(node)


class _BlockScan:
    """One block-level simulation: final tokens, peaks, episodes."""

    def __init__(self, graph: SDFGraph, schedule: LoopedSchedule) -> None:
        self.graph = graph
        by_key = {e.key: e for e in graph.edges()}
        self.by_key = by_key
        self.tokens: Dict[Key, int] = {k: e.delay for k, e in by_key.items()}
        self.peaks: Dict[Key, int] = dict(self.tokens)
        self.blocks = 0
        self.firings = 0

        in_edges = {a: graph.in_edges(a) for a in graph.actor_names()}
        out_edges = {a: graph.out_edges(a) for a in graph.actor_names()}

        intervals: Dict[Key, List[Tuple[int, int]]] = {k: [] for k in by_key}
        episodes: List[Tuple[Key, int, int, int]] = []
        open_at: Dict[Key, Optional[int]] = {}
        start_count: Dict[Key, int] = {}
        produced: Dict[Key, int] = {}
        peak_occ: Dict[Key, int] = {}
        for k, e in by_key.items():
            open_at[k] = 0 if e.delay > 0 else None
            start_count[k] = e.delay
            produced[k] = 0
            peak_occ[k] = e.delay

        groups = graph.broadcast_groups()
        group_keys = {
            name: [m.key for m in members] for name, members in groups.items()
        }
        group_episodes: List[Tuple[str, int, int, int]] = []
        g_open: Dict[str, Optional[int]] = {}
        g_start: Dict[str, int] = {}
        g_produced: Dict[str, int] = {}
        g_peak: Dict[str, int] = {}
        for name, members in groups.items():
            first = members[0]
            g_open[name] = 0 if first.delay > 0 else None
            g_start[name] = first.delay
            g_produced[name] = 0
            g_peak[name] = first.delay

        def group_words(name: str) -> int:
            first = groups[name][0]
            if first.delay > 0:
                return g_peak[name] * first.token_size
            return (g_start[name] + g_produced[name]) * first.token_size

        def episode_words(k: Key) -> int:
            e = by_key[k]
            if e.delay > 0:
                return peak_occ[k] * e.token_size
            return (start_count[k] + produced[k]) * e.token_size

        tokens = self.tokens
        peaks = self.peaks
        t = 0
        for actor, n in iter_blocks(schedule):
            self.blocks += 1
            self.firings += n
            ins = in_edges.get(actor)
            if ins is None:
                ins = graph.in_edges(actor)  # raises for unknown actors
            outs = out_edges[actor]
            self_keys = {e.key for e in ins if e.is_self_loop()}

            # Underflow: each in-edge's mid-firing value at firing i is
            # linear in i, so the first failing firing (if any) is a
            # division away.  Earliest firing wins; ties resolve in
            # in-edge order — exactly the interpreter's raise point.
            fail: Optional[Tuple[int, Key, int]] = None
            for e in ins:
                T = tokens[e.key]
                c = e.consumption
                if e.key in self_keys:
                    slope = e.production - c
                    if T - c < 0:
                        i = 1
                    elif slope >= 0:
                        continue
                    else:
                        i = (T - c) // (-slope) + 2
                        if i > n:
                            continue
                    value = T + (i - 1) * slope - c
                else:
                    if T - n * c >= 0:
                        continue
                    i = T // c + 1
                    value = T - i * c
                if fail is None or i < fail[0]:
                    fail = (i, e.key, value)
            if fail is not None:
                _, k, value = fail
                raise ScheduleError(
                    f"firing {actor!r} drives edge {by_key[k]} to "
                    f"{value} tokens"
                )

            # Post-block state, plus each touched edge's post-firing
            # value after the FIRST firing of the block (``v1``): a
            # linear's peak sits at an endpoint, so ``v1`` and the final
            # count are all the peak logic below ever needs.
            t0 = t
            t += n
            v1: Dict[Key, int] = {}
            for e in ins:
                k = e.key
                if k in self_keys:
                    continue
                v1[k] = tokens[k] - e.consumption
                tokens[k] -= n * e.consumption
            for e in outs:
                k = e.key
                step = e.production
                if k in self_keys:
                    step -= e.consumption
                v1[k] = tokens[k] + step
                tokens[k] += n * step

            # max_tokens peaks: post-firing counts of the fired actor's
            # out-edges only, mirroring the interpreter.
            for e in outs:
                k = e.key
                cand = max(v1[k], tokens[k])
                if cand > peaks[k]:
                    peaks[k] = cand

            # Episode transitions at block granularity (outs open/peak
            # before ins close, post-firing convention — the order the
            # scalar scan uses within each firing).
            for e in outs:
                k = e.key
                if open_at[k] is None:
                    # A dead edge holds zero tokens; the first firing's
                    # production revives it at time t0.
                    open_at[k] = t0
                    start_count[k] = 0
                    produced[k] = n * e.production
                    peak_occ[k] = max(v1[k], tokens[k])
                else:
                    produced[k] += n * e.production
                    cand = max(v1[k], tokens[k])
                    if cand > peak_occ[k]:
                        peak_occ[k] = cand
            for e in ins:
                k = e.key
                if tokens[k] == 0 and open_at[k] is not None:
                    s = open_at[k]
                    intervals[k].append((s, t))
                    episodes.append((k, s, t, episode_words(k)))
                    open_at[k] = None
                    produced[k] = 0
                    peak_occ[k] = 0

            # Group transitions: occupancy is the max of the members'
            # linears, so its peak also sits at an endpoint.
            touched_groups = {e.broadcast for e in outs if e.broadcast}
            touched_groups.update(e.broadcast for e in ins if e.broadcast)
            for name in touched_groups:
                keys = group_keys[name]
                occ1 = max(v1.get(k, tokens[k]) for k in keys)
                occn = max(tokens[k] for k in keys)
                first = groups[name][0]
                inc = n * first.production if actor == first.source else 0
                if g_open[name] is None:
                    if occn > 0:
                        g_open[name] = t0
                        g_start[name] = 0
                        g_produced[name] = inc
                        g_peak[name] = max(occ1, occn)
                else:
                    g_produced[name] += inc
                    cand = max(occ1, occn)
                    if cand > g_peak[name]:
                        g_peak[name] = cand
                    if occn == 0:
                        s = g_open[name]
                        group_episodes.append((name, s, t, group_words(name)))
                        g_open[name] = None
                        g_produced[name] = 0
                        g_peak[name] = 0

        for k in by_key:
            if open_at[k] is not None:
                s = open_at[k]
                intervals[k].append((s, t))
                episodes.append((k, s, t, episode_words(k)))
        for name in groups:
            if g_open[name] is not None:
                s = g_open[name]
                group_episodes.append((name, s, t, group_words(name)))
        self.scan = _EpisodeScan(
            intervals=intervals,
            episodes=episodes,
            group_episodes=group_episodes,
            member_keys=frozenset(
                k for keys in group_keys.values() for k in keys
            ),
        )


def _scan(graph: SDFGraph, schedule: LoopedSchedule, recorder) -> _BlockScan:
    scan = _BlockScan(graph, schedule)
    if recorder is not None:
        recorder.count("sim.blocks", scan.blocks)
        recorder.count("sim.batched_firings", scan.firings)
    return scan


def batched_validate_schedule(
    graph: SDFGraph, schedule: LoopedSchedule, recorder=None
) -> Dict[str, int]:
    """``validate_schedule`` at one closed-form step per firing block."""
    counts = _check_firing_counts(graph, schedule)
    scan = _scan(graph, schedule, recorder)
    for k, e in scan.by_key.items():
        if scan.tokens[k] != e.delay:
            raise ScheduleError(
                f"edge {e} ends with {scan.tokens[k]} tokens, "
                f"expected {e.delay}"
            )
    return counts


def batched_max_tokens(
    graph: SDFGraph, schedule: LoopedSchedule, recorder=None
) -> Dict[Key, int]:
    """``max_tokens`` at one closed-form step per firing block."""
    return _scan(graph, schedule, recorder).peaks


def batched_coarse_live_intervals(
    graph: SDFGraph, schedule: LoopedSchedule, recorder=None
) -> Dict[Key, List[Tuple[int, int]]]:
    """``coarse_live_intervals`` at one step per firing block."""
    return _scan(graph, schedule, recorder).scan.intervals


def batched_max_live_tokens(
    graph: SDFGraph, schedule: LoopedSchedule, recorder=None
) -> int:
    """``max_live_tokens`` at one step per firing block."""
    return _sweep_peak(_scan(graph, schedule, recorder).scan)
