"""Loop-compressed symbolic simulation of single appearance schedules.

The firing interpreter in :mod:`repro.sdf.simulate` executes every
firing, so its cost scales with the sum of the repetitions vector —
ruinous for high-rate graphs (a scaled CD-DAT chain fires millions of
times per period).  But the paper's whole premise (sections 3–5) is
that single appearance schedules *are* loops, and within a loop body
the token profile of every edge is affine-periodic: exactly the
structure :class:`~repro.lifetimes.periodic.PeriodicLifetime` models.

This module computes the interpreter's observables directly from the
binary schedule tree, in time polynomial in the *tree* size and
independent of the firing count:

``max_tokens``
    For a delayless edge whose producer appears lexically before its
    consumer, all production inside one iteration of the pair's
    innermost common loop (the *least parent*) precedes all
    consumption, and local balance returns the edge to zero tokens at
    the end of each iteration.  The peak is therefore exactly
    ``n_p * prod(e)``, where ``n_p`` is the producer's firing count per
    least-parent body iteration.

``coarse_live_intervals``
    The edge has exactly one live episode per least-parent iteration
    (the count rises monotonically through the producer phase and
    strictly falls at each consumer firing, so it cannot touch zero
    early).  The first episode starts at the producer leaf's first
    firing and stops at the consumer's last firing of the iteration;
    the remaining episodes are its translates under the mixed-radix
    basis of the pair's parent set, measured on the flat *firing-time*
    clock (``fdur``/``fstart``) that the schedule tree carries
    alongside the paper's schedule-step clock.

``max_live_tokens``
    A hierarchical range-max over the tree: each node owns the episode
    rectangles of the edges whose least parent it is, the profile of a
    node's full span is periodic with its body length, and the peak
    over a body is resolved by splitting at episode boundaries, adding
    the (constant) covering-episode elevation per segment, and
    recursing into the child spans.  Memoized per ``(node, lo, hi)``.

``validate_schedule``
    If the symbolic preconditions hold, the schedule provably never
    underflows an edge and returns every edge to its initial (zero)
    token count, so the O(firings) token replay can be skipped.

Supported exactly (bit-identical to the interpreter): single
appearance schedules covering all graph actors, where every edge is
delayless, is not a self-loop, and has its producer lexically before
its consumer.  Everything else — delays, self-loops, non-SAS
schedules, partial or non-topological schedules — makes
:meth:`SymbolicTrace.try_build` return ``None`` and the callers in
:mod:`repro.sdf.simulate` fall back to the firing interpreter (this
mirrors the delay-model limitations pinned in
``tests/test_check_regressions.py``: the closed forms are only claimed
where the coarse model itself is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import ScheduleError
from ..lifetimes.periodic import PeriodicLifetime
from ..lifetimes.schedule_tree import ScheduleTree, ScheduleTreeNode
from .graph import SDFGraph
from .schedule import LoopedSchedule

__all__ = ["EdgeProfile", "SymbolicTrace"]

EdgeKey = Tuple[str, str, int]


@dataclass(frozen=True)
class EdgeProfile:
    """Closed-form per-edge summary on the flat firing-time clock."""

    key: EdgeKey
    #: ``max_tokens(e, S)``: peak token count (tokens, not words).
    peak: int
    #: Coarse-model episode array size in words (everything transferred
    #: during one episode, times ``token_size``).
    words: int
    #: First episode as a 0-based half-open firing interval.
    start: int
    stop: int
    #: All episodes: the first one repeated under the parent-set basis.
    lifetime: PeriodicLifetime


class SymbolicTrace:
    """Interpreter observables computed from the schedule tree.

    Build via :meth:`try_build`, which returns ``None`` whenever the
    closed forms do not apply; the dispatchers in ``simulate`` then
    fall back to actually firing the schedule.
    """

    def __init__(
        self,
        graph: SDFGraph,
        schedule: LoopedSchedule,
        tree: ScheduleTree,
        profiles: Dict[EdgeKey, EdgeProfile],
        own_ranges: Dict[int, List[Tuple[int, int, int]]],
    ) -> None:
        self.graph = graph
        self.schedule = schedule
        self.tree = tree
        self.profiles = profiles
        # node id -> [(start, stop, words)] episode ranges, body-relative,
        # for the edges whose least parent is that node.
        self._own = own_ranges
        self._memo: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def try_build(
        cls,
        graph: SDFGraph,
        schedule: LoopedSchedule,
        recorder=None,
    ) -> Optional["SymbolicTrace"]:
        """Build a symbolic trace, or ``None`` if unsupported.

        With a ``recorder``, tallies ``symbolic.builds`` /
        ``symbolic.declines`` so traces show how often the closed forms
        applied versus fell back to the firing interpreter.
        """
        trace = cls._try_build(graph, schedule)
        if recorder is not None:
            recorder.count(
                "symbolic.builds" if trace is not None
                else "symbolic.declines"
            )
        return trace

    @classmethod
    def _try_build(
        cls, graph: SDFGraph, schedule: LoopedSchedule
    ) -> Optional["SymbolicTrace"]:
        """The coverage test and construction behind :meth:`try_build`.

        Preconditions (each checked; any failure means the firing
        interpreter must be used instead):

        * the schedule is a single appearance schedule whose actor set
          equals the graph's (every actor fires, none is unknown);
        * every edge is delayless and not a self-loop;
        * every edge's producer leaf precedes its consumer leaf
          (otherwise the first consumer firing underflows);
        * local balance: per least-parent iteration, tokens produced
          equal tokens consumed (rules out truncated schedules whose
          firing counts are not a repetitions-vector multiple).
        """
        if not schedule.body or not schedule.is_single_appearance():
            return None
        # Broadcast groups share one physical buffer across members;
        # the per-edge episode algebra below models disjoint buffers,
        # so decline and let the firing interpreter handle them.
        if graph.has_broadcasts():
            return None
        try:
            tree = ScheduleTree(schedule)
        except ScheduleError:
            return None
        if set(graph.actor_names()) != set(tree.actors()):
            return None
        total = tree.total_firings()
        profiles: Dict[EdgeKey, EdgeProfile] = {}
        own: Dict[int, List[Tuple[int, int, int]]] = {}
        for e in graph.edges():
            if e.delay != 0 or e.source == e.sink:
                return None
            src_leaf = tree.leaf(e.source)
            snk_leaf = tree.leaf(e.sink)
            if src_leaf.start >= snk_leaf.start:
                return None
            lp = tree.least_parent(e.source, e.sink)
            n_p = tree.invocations_per_iteration(e.source, lp)
            n_c = tree.invocations_per_iteration(e.sink, lp)
            if n_p * e.production != n_c * e.consumption:
                return None
            # First episode: opens one step before the producer's first
            # firing (the interpreter's 0-based episode start), closes
            # at the consumer's last firing of the least-parent body
            # iteration — its leaf start plus the last-iteration offset
            # of every loop strictly between the leaf and the least
            # parent, plus the leaf's own residual firings.
            start = src_leaf.fstart
            stop = snk_leaf.fstart + snk_leaf.residual
            node = snk_leaf.parent
            while node is not lp:
                stop += (node.loop - 1) * node.body_firings()
                node = node.parent
            peak = n_p * e.production
            words = peak * e.token_size
            lifetime = PeriodicLifetime.from_basis(
                name=f"{e.source}->{e.sink}",
                size=words,
                start=start,
                duration=stop - start,
                basis=[
                    (w.body_firings(), w.loop)
                    for w in tree.parent_set(e.source, e.sink)
                ],
                total_span=total,
            )
            profiles[e.key] = EdgeProfile(
                key=e.key, peak=peak, words=words,
                start=start, stop=stop, lifetime=lifetime,
            )
            own.setdefault(id(lp), []).append(
                (start - lp.fstart, stop - lp.fstart, words)
            )
        return cls(graph, schedule, tree, profiles, own)

    # ------------------------------------------------------------------
    # interpreter observables
    # ------------------------------------------------------------------
    def max_tokens(self) -> Dict[EdgeKey, int]:
        """Per-edge peak token counts (``simulate.max_tokens``)."""
        return {key: p.peak for key, p in self.profiles.items()}

    def coarse_live_intervals(self) -> Dict[EdgeKey, List[Tuple[int, int]]]:
        """Per-edge live episodes (``simulate.coarse_live_intervals``).

        Output-sized: materializes one interval per episode, without
        replaying the firings between them.
        """
        return {
            key: list(p.lifetime.intervals())
            for key, p in self.profiles.items()
        }

    def edge_lifetime(self, key: EdgeKey) -> PeriodicLifetime:
        """The edge's episodes as a mixed-radix periodic lifetime."""
        return self.profiles[key].lifetime

    def max_live_tokens(self) -> int:
        """Peak summed episode-array words (``simulate.max_live_tokens``).

        Hierarchical range-max over the tree; cost is polynomial in the
        tree size, independent of the firing count.
        """
        if not self.profiles:
            return 0
        return self._span_max(self.tree.root, 0, self.tree.root.fdur)

    def _span_max(self, node: ScheduleTreeNode, lo: int, hi: int) -> int:
        """Peak of the subtree profile over firing offsets [lo, hi).

        A node's full span is ``loop`` identical tiles of its body, so
        the query reduces to at most two partial body tiles plus (when
        the window covers one) the memoized full-body peak.
        """
        if lo >= hi or node.is_leaf():
            return 0
        body = node.body_firings()
        first, last = lo // body, (hi - 1) // body
        if first == last:
            return self._body_max(node, lo - first * body, hi - first * body)
        best = self._body_max(node, lo - first * body, body)
        best = max(best, self._body_max(node, 0, hi - last * body))
        if last - first >= 2:
            best = max(best, self._body_max(node, 0, body))
        return best

    def _body_max(self, node: ScheduleTreeNode, lo: int, hi: int) -> int:
        """Peak over [lo, hi) of one iteration of ``node``'s body.

        The body profile is the sum of the node's own episode ranges
        (edges whose least parent is ``node``; each spans the left/right
        boundary) and the child span profiles.  Splitting at range
        endpoints makes the own-range elevation constant per segment,
        so the peak is elevation plus the child-span peak, maximized
        over segments.
        """
        if lo >= hi:
            return 0
        key = (id(node), lo, hi)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        ranges = self._own.get(id(node), ())
        left_span = node.left.fdur
        cuts = {lo, hi}
        if lo < left_span < hi:
            cuts.add(left_span)
        for s, t, _ in ranges:
            if lo < s < hi:
                cuts.add(s)
            if lo < t < hi:
                cuts.add(t)
        points = sorted(cuts)
        best = 0
        for a, b in zip(points, points[1:]):
            elevation = sum(w for s, t, w in ranges if s <= a and b <= t)
            if a >= left_span:
                below = self._span_max(node.right, a - left_span, b - left_span)
            else:
                below = self._span_max(node.left, a, b)
            best = max(best, elevation + below)
        self._memo[key] = best
        return best
