"""Balance equations and the repetitions vector (paper section 2).

A valid schedule fires each actor a whole number of times and leaves the
token count of every edge unchanged.  The minimum positive firing counts
form the *repetitions vector* ``q``, the smallest positive integer
solution of the balance equations

    prod(e) * q(src(e)) = cns(e) * q(snk(e))      for every edge e.

An SDF graph with a solution is *sample-rate consistent*.  Consistency is
necessary but not sufficient for a valid schedule to exist: the graph
must also not deadlock (see :mod:`repro.sdf.simulate` for the symbolic
execution used to detect deadlock on cyclic graphs).

The solver propagates exact rational firing ratios over a spanning
forest, then verifies the remaining edges — the classic O(|V| + |E|)
algorithm of Lee & Messerschmitt as presented in Bhattacharyya, Murthy &
Lee, *Software Synthesis from Dataflow Graphs* (reference [3] of the
paper).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, List

from ..exceptions import InconsistentGraphError
from .graph import Edge, SDFGraph

__all__ = [
    "repetitions_vector",
    "is_consistent",
    "total_tokens_exchanged",
    "gcd_of",
    "check_self_loops",
]


def gcd_of(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of positive integers."""
    result = 0
    for v in values:
        result = gcd(result, v)
    return result


def check_self_loops(graph: SDFGraph) -> None:
    """Raise if a self-loop edge cannot fire (needs more tokens than delay).

    A self-loop ``(A, A)`` with ``prod != cns`` is always inconsistent;
    one with ``prod == cns`` merely requires ``delay >= cns`` to avoid
    deadlock.
    """
    for e in graph.edges():
        if not e.is_self_loop():
            continue
        if e.production != e.consumption:
            raise InconsistentGraphError(
                f"self-loop {e} has production != consumption", kind="rate"
            )
        if e.delay < e.consumption:
            raise InconsistentGraphError(
                f"self-loop {e} deadlocks: delay {e.delay} < "
                f"consumption {e.consumption}",
                kind="deadlock",
            )


def repetitions_vector(graph: SDFGraph) -> Dict[str, int]:
    """The minimal repetitions vector ``q`` of ``graph``.

    Each connected component is normalised independently so that the
    smallest firing count in the component is as small as possible
    (component-wise minimal positive integer solution).

    Raises
    ------
    InconsistentGraphError
        If the balance equations have no positive solution.

    Examples
    --------
    For figure 1 of the paper (A -2/1-> B, B -1/3-> C)::

        >>> from repro.sdf.graph import SDFGraph
        >>> g = SDFGraph()
        >>> _ = g.add_actors("ABC")
        >>> _ = g.add_edge("A", "B", 2, 1)
        >>> _ = g.add_edge("B", "C", 1, 3)
        >>> repetitions_vector(g) == {"A": 3, "B": 6, "C": 2}
        True

    The solve is memoized on the graph (``graph._q_cache``, dropped by
    :meth:`~repro.sdf.graph.SDFGraph.invalidate_caches` on mutation),
    so repeated ``bounds``/``simulate``/pipeline calls on one graph pay
    for the balance equations once.  Callers get a fresh dict each time
    — mutating the returned vector cannot poison the cache.
    """
    cached = getattr(graph, "_q_cache", None)
    if cached is not None:
        return dict(cached)
    check_self_loops(graph)
    ratio: Dict[str, Fraction] = {}
    component: Dict[str, int] = {}
    components: List[List[str]] = []

    # Build undirected adjacency over edges for ratio propagation.
    adjacency: Dict[str, List[Edge]] = {a: [] for a in graph.actor_names()}
    for e in graph.edges():
        if e.is_self_loop():
            continue
        adjacency[e.source].append(e)
        adjacency[e.sink].append(e)

    for start in graph.actor_names():
        if start in ratio:
            continue
        comp_id = len(components)
        members = [start]
        ratio[start] = Fraction(1)
        component[start] = comp_id
        stack = [start]
        while stack:
            a = stack.pop()
            for e in adjacency[a]:
                # firing ratio: q(src) / q(snk) = cns / prod
                if e.source == a:
                    other, other_ratio = e.sink, ratio[a] * Fraction(
                        e.production, e.consumption
                    )
                else:
                    other, other_ratio = e.source, ratio[a] * Fraction(
                        e.consumption, e.production
                    )
                if other not in ratio:
                    ratio[other] = other_ratio
                    component[other] = comp_id
                    members.append(other)
                    stack.append(other)
                elif ratio[other] != other_ratio:
                    raise InconsistentGraphError(
                        f"balance equations inconsistent at edge {e}: "
                        f"q({other}) would need both {ratio[other]} and "
                        f"{other_ratio} relative to q({start})",
                        kind="rate",
                    )
        components.append(members)

    # Scale each component to the minimal positive integer vector.
    q: Dict[str, int] = {}
    for members in components:
        lcm_den = 1
        for a in members:
            d = ratio[a].denominator
            lcm_den = lcm_den // gcd(lcm_den, d) * d
        ints = {a: int(ratio[a] * lcm_den) for a in members}
        g = gcd_of(ints.values())
        for a in members:
            q[a] = ints[a] // g

    # Verify every edge (spanning-tree propagation covers trees; this
    # catches inconsistencies on non-tree edges and is cheap).
    for e in graph.edges():
        if e.is_self_loop():
            continue
        if e.production * q[e.source] != e.consumption * q[e.sink]:
            raise InconsistentGraphError(
                f"balance equation violated on {e}: "
                f"{e.production}*{q[e.source]} != {e.consumption}*{q[e.sink]}",
                kind="rate",
            )
    graph._q_cache = dict(q)
    return q


def is_consistent(graph: SDFGraph) -> bool:
    """True if the balance equations have a positive solution."""
    try:
        repetitions_vector(graph)
        return True
    except InconsistentGraphError:
        return False


def total_tokens_exchanged(edge: Edge, q: Dict[str, int]) -> int:
    """``TNSE(e)``: tokens moved across ``edge`` in one schedule period.

    Equals ``prod(e) * q(src(e))`` (= ``cns(e) * q(snk(e))`` by the
    balance equations), in *tokens*; multiply by ``edge.token_size`` for
    words.
    """
    return edge.production * q[edge.source]
