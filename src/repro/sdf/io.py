"""SDF graph serialization: JSON documents and Graphviz DOT export.

A small, stable interchange format so graphs can live outside Python
(test fixtures, user designs, tool pipelines):

.. code-block:: json

    {
      "name": "fig1",
      "actors": [{"name": "A", "execution_time": 1}, ...],
      "edges": [
        {"source": "A", "sink": "B", "production": 2,
         "consumption": 1, "delay": 1, "token_size": 1}
      ]
    }

``to_dot`` renders the paper's drawing conventions: edges annotated
``prod/cons`` with ``nD`` for n initial tokens.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, IO, Union

from ..exceptions import GraphStructureError
from .graph import SDFGraph

__all__ = [
    "to_json",
    "from_json",
    "save_graph",
    "load_graph",
    "canonical_document",
    "canonical_hash",
    "to_dot",
]


def to_json(graph: SDFGraph) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a graph."""
    return {
        "name": graph.name,
        "actors": [
            {"name": a.name, "execution_time": a.execution_time}
            for a in graph.actors()
        ],
        "edges": [
            {
                "source": e.source,
                "sink": e.sink,
                "production": e.production,
                "consumption": e.consumption,
                "delay": e.delay,
                "token_size": e.token_size,
                # Only present for broadcast members: keeps the
                # canonical document (and hence every content address
                # already in a serve cache) byte-stable for ordinary
                # graphs.
                **({"broadcast": e.broadcast} if e.broadcast else {}),
            }
            for e in graph.edges()
        ],
    }


def from_json(document: Dict[str, Any]) -> SDFGraph:
    """Rebuild a graph from :func:`to_json` output.

    Raises :class:`GraphStructureError` on malformed documents (missing
    keys, unknown endpoint names, bad rates).
    """
    try:
        graph = SDFGraph(document.get("name", "sdf"))
        for actor in document["actors"]:
            graph.add_actor(
                actor["name"], int(actor.get("execution_time", 1))
            )
        for edge in document["edges"]:
            broadcast = edge.get("broadcast")
            graph.add_edge(
                edge["source"],
                edge["sink"],
                int(edge["production"]),
                int(edge["consumption"]),
                int(edge.get("delay", 0)),
                int(edge.get("token_size", 1)),
                broadcast=str(broadcast) if broadcast is not None else None,
            )
    except (KeyError, TypeError) as exc:
        raise GraphStructureError(
            f"malformed SDF graph document: {exc!r}"
        ) from exc
    return graph


def canonical_document(
    document: Union[SDFGraph, Dict[str, Any]]
) -> str:
    """The canonical serialized form of a graph document.

    Accepts either an :class:`SDFGraph` or a :func:`to_json`-shaped
    dictionary.  Object keys are sorted and whitespace is fixed, so two
    documents that differ only in JSON key order (or in insignificant
    formatting) canonicalize to the same string.  List order is kept:
    actor order and edge order are semantic (they break ties in
    topological sorts and name parallel edges), so reordering them is a
    *different* graph and must produce a different canonical form.
    """
    if isinstance(document, SDFGraph):
        document = to_json(document)
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def canonical_hash(document: Union[SDFGraph, Dict[str, Any]]) -> str:
    """SHA-256 hex digest of :func:`canonical_document`.

    The content address of a graph: stable across Python processes,
    file formatting, and JSON key ordering.  The compilation service's
    artifact cache (:mod:`repro.serve.cache`) derives its keys from
    this digest.
    """
    return hashlib.sha256(
        canonical_document(document).encode("utf-8")
    ).hexdigest()


def save_graph(graph: SDFGraph, target: Union[str, IO[str]]) -> None:
    """Write a graph to a JSON file (path or open text handle)."""
    document = to_json(graph)
    if isinstance(target, str):
        with open(target, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(document, target, indent=2, sort_keys=True)


def load_graph(source: Union[str, IO[str]]) -> SDFGraph:
    """Read a graph from a JSON file (path or open text handle)."""
    if isinstance(source, str):
        with open(source) as handle:
            return from_json(json.load(handle))
    return from_json(json.load(source))


def to_dot(graph: SDFGraph) -> str:
    """Graphviz DOT rendering with the paper's edge annotations."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for a in graph.actors():
        lines.append(f'  "{a.name}" [shape=circle];')
    for e in graph.edges():
        label = f"{e.production}/{e.consumption}"
        if e.delay:
            label += f", {e.delay}D"
        if e.token_size != 1:
            label += f" x{e.token_size}w"
        attrs = f'label="{label}"'
        if e.broadcast:
            attrs = f'label="{label} [{e.broadcast}]" style=dashed'
        lines.append(f'  "{e.source}" -> "{e.sink}" [{attrs}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
