"""Random consistent SDF graph generation (paper section 10.3).

The paper evaluates on "randomly generated SDF graphs having 20, 50, 100
and 150 nodes" without specifying the generator.  We generate connected
acyclic multirate graphs that are *consistent by construction*:

1. sample a repetition count ``q(v)`` for each actor from a small range;
2. build a random connected DAG (random spanning tree over a random
   actor order, plus extra forward edges up to a target edge density);
3. for each edge ``(u, v)`` set rates ``prod = q(v)/g``, ``cons = q(u)/g``
   with ``g = gcd(q(u), q(v))``, optionally scaled by a small random
   factor — this satisfies the balance equation by construction.

The resulting graphs are sparse (like practical SDF systems: the paper's
examples average < 1.5 edges per actor) and exhibit the modest rate
changes typical of multirate DSP graphs.  The generator is fully
deterministic given a seed.
"""

from __future__ import annotations

import random
from math import gcd
from typing import List, Optional, Sequence

from .graph import SDFGraph

__all__ = ["random_sdf_graph", "random_chain_graph"]


def random_sdf_graph(
    num_actors: int,
    seed: Optional[int] = None,
    extra_edge_fraction: float = 0.3,
    max_repetition: int = 12,
    rate_scale_choices: Sequence[int] = (1, 1, 1, 2, 3),
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> SDFGraph:
    """A random connected, acyclic, consistent SDF graph.

    Parameters
    ----------
    num_actors:
        Number of actors (>= 1).
    seed / rng:
        Randomness; pass exactly one.  ``seed`` creates a private
        ``random.Random``.
    extra_edge_fraction:
        Additional edges beyond the spanning tree, as a fraction of
        ``num_actors``.
    max_repetition:
        Per-actor repetition counts are drawn from ``1..max_repetition``.
    rate_scale_choices:
        Each edge's balanced rates are multiplied by a factor drawn from
        this sequence (values > 1 add tokens without changing the
        repetitions vector, mimicking block-processing actors).
    """
    if num_actors < 1:
        raise ValueError("num_actors must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    g = SDFGraph(name or f"random{num_actors}")
    names = [f"n{i}" for i in range(num_actors)]
    reps = {}
    for n in names:
        g.add_actor(n)
        reps[n] = rng.randint(1, max_repetition)

    order = list(names)
    rng.shuffle(order)
    position = {a: i for i, a in enumerate(order)}

    def add(u: str, v: str) -> None:
        if position[u] > position[v]:
            u, v = v, u
        if u == v or g.has_edge(u, v):
            return
        qu, qv = reps[u], reps[v]
        common = gcd(qu, qv)
        scale = rng.choice(list(rate_scale_choices))
        g.add_edge(u, v, production=(qv // common) * scale,
                   consumption=(qu // common) * scale)

    # Spanning tree: connect each actor (after the first) to a random
    # earlier actor in the shuffled order, guaranteeing connectivity and
    # acyclicity.
    for i in range(1, num_actors):
        j = rng.randrange(i)
        add(order[j], order[i])

    extra = int(extra_edge_fraction * num_actors)
    attempts = 0
    while extra > 0 and attempts < 20 * num_actors:
        attempts += 1
        i, j = rng.randrange(num_actors), rng.randrange(num_actors)
        if i == j:
            continue
        u, v = order[min(i, j)], order[max(i, j)]
        if not g.has_edge(u, v):
            add(u, v)
            extra -= 1
    return g


def random_chain_graph(
    num_actors: int,
    seed: Optional[int] = None,
    max_rate: int = 6,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> SDFGraph:
    """A random chain-structured SDF graph x1 -> x2 -> ... -> xn.

    Rates are drawn independently per edge from ``1..max_rate``; chains
    are always consistent.  Used to exercise the precise chain DP of
    section 6.
    """
    if num_actors < 1:
        raise ValueError("num_actors must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    g = SDFGraph(name or f"chain{num_actors}")
    names = [f"x{i}" for i in range(num_actors)]
    for n in names:
        g.add_actor(n)
    for u, v in zip(names, names[1:]):
        g.add_edge(u, v, rng.randint(1, max_rate), rng.randint(1, max_rate))
    return g
