"""Random consistent SDF graph generation (paper section 10.3).

The paper evaluates on "randomly generated SDF graphs having 20, 50, 100
and 150 nodes" without specifying the generator.  We generate connected
acyclic multirate graphs that are *consistent by construction*:

1. sample a repetition count ``q(v)`` for each actor from a small range;
2. build a random connected DAG (random spanning tree over a random
   actor order, plus extra forward edges up to a target edge density);
3. for each edge ``(u, v)`` set rates ``prod = q(v)/g``, ``cons = q(u)/g``
   with ``g = gcd(q(u), q(v))``, optionally scaled by a small random
   factor — this satisfies the balance equation by construction.

The resulting graphs are sparse (like practical SDF systems: the paper's
examples average < 1.5 edges per actor) and exhibit the modest rate
changes typical of multirate DSP graphs.  The generator is fully
deterministic given a seed.
"""

from __future__ import annotations

import random
from math import gcd
from typing import List, Optional, Sequence

from .graph import SDFGraph
from .repetitions import repetitions_vector

__all__ = [
    "random_sdf_graph",
    "random_chain_graph",
    "random_broadcast_sdf_graph",
    "random_cyclic_sdf_graph",
]


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


def random_sdf_graph(
    num_actors: int,
    seed: Optional[int] = None,
    extra_edge_fraction: float = 0.3,
    max_repetition: int = 12,
    rate_scale_choices: Sequence[int] = (1, 1, 1, 2, 3),
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> SDFGraph:
    """A random connected, acyclic, consistent SDF graph.

    Parameters
    ----------
    num_actors:
        Number of actors (>= 1).
    seed / rng:
        Randomness; pass exactly one.  ``seed`` creates a private
        ``random.Random``.
    extra_edge_fraction:
        Additional edges beyond the spanning tree, as a fraction of
        ``num_actors``.
    max_repetition:
        Per-actor repetition counts are drawn from ``1..max_repetition``.
    rate_scale_choices:
        Each edge's balanced rates are multiplied by a factor drawn from
        this sequence (values > 1 add tokens without changing the
        repetitions vector, mimicking block-processing actors).
    """
    if num_actors < 1:
        raise ValueError("num_actors must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    g = SDFGraph(name or f"random{num_actors}")
    names = [f"n{i}" for i in range(num_actors)]
    reps = {}
    for n in names:
        g.add_actor(n)
        reps[n] = rng.randint(1, max_repetition)

    order = list(names)
    rng.shuffle(order)
    position = {a: i for i, a in enumerate(order)}

    def add(u: str, v: str) -> None:
        if position[u] > position[v]:
            u, v = v, u
        if u == v or g.has_edge(u, v):
            return
        qu, qv = reps[u], reps[v]
        common = gcd(qu, qv)
        scale = rng.choice(list(rate_scale_choices))
        g.add_edge(u, v, production=(qv // common) * scale,
                   consumption=(qu // common) * scale)

    # Spanning tree: connect each actor (after the first) to a random
    # earlier actor in the shuffled order, guaranteeing connectivity and
    # acyclicity.
    for i in range(1, num_actors):
        j = rng.randrange(i)
        add(order[j], order[i])

    extra = int(extra_edge_fraction * num_actors)
    attempts = 0
    while extra > 0 and attempts < 20 * num_actors:
        attempts += 1
        i, j = rng.randrange(num_actors), rng.randrange(num_actors)
        if i == j:
            continue
        u, v = order[min(i, j)], order[max(i, j)]
        if not g.has_edge(u, v):
            add(u, v)
            extra -= 1
    return g


def random_broadcast_sdf_graph(
    num_actors: int,
    seed: Optional[int] = None,
    num_groups: int = 2,
    max_fanout: int = 3,
    delayed_group_fraction: float = 0.25,
    token_size_choices: Sequence[int] = (1,),
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
    **base_kwargs,
) -> SDFGraph:
    """A random consistent acyclic SDF graph with broadcast groups.

    Starts from :func:`random_sdf_graph` and attaches up to
    ``num_groups`` broadcast groups, each fanning one source out to
    2..``max_fanout`` later actors (keeping the graph acyclic).  The
    group rates are consistent by construction: with repetitions
    ``q``, the production is ``p = lcm_i(q(v_i) / gcd(q(u), q(v_i)))``
    and each member consumes ``c_i = p * q(u) / q(v_i)`` — the unique
    minimal rates balancing every member simultaneously.

    A ``delayed_group_fraction`` of groups get ``delay = p * q(u)``
    (one full period of production), which keeps any schedule of the
    delay-free graph valid while exercising the circular-buffer path.
    """
    if num_actors < 3:
        raise ValueError("num_actors must be >= 3 for broadcast groups")
    if rng is None:
        rng = random.Random(seed)
    g = random_sdf_graph(
        num_actors,
        rng=rng,
        name=name or f"broadcast{num_actors}",
        **base_kwargs,
    )
    q = repetitions_vector(g)
    order = g.topological_order()
    position = {a: i for i, a in enumerate(order)}
    placed = 0
    attempts = 0
    while placed < num_groups and attempts < 20 * num_groups:
        attempts += 1
        u = order[rng.randrange(num_actors - 2)]
        later = [v for v in order if position[v] > position[u]]
        fanout = rng.randint(2, min(max_fanout, len(later)))
        sinks = rng.sample(later, fanout)
        sinks.sort(key=position.__getitem__)
        p = 1
        for v in sinks:
            p = _lcm(p, q[v] // gcd(q[u], q[v]))
        consumptions = [p * q[u] // q[v] for v in sinks]
        delay = p * q[u] if rng.random() < delayed_group_fraction else 0
        g.add_broadcast(
            u,
            sinks,
            production=p,
            consumptions=consumptions,
            delay=delay,
            token_size=rng.choice(list(token_size_choices)),
        )
        placed += 1
    if placed == 0:
        raise RuntimeError("failed to place any broadcast group")
    return g


def random_cyclic_sdf_graph(
    num_actors: int,
    seed: Optional[int] = None,
    num_feedback: int = 1,
    delay_factor: int = 1,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
    **base_kwargs,
) -> SDFGraph:
    """A random consistent *cyclic* SDF graph that stays schedulable.

    Starts from :func:`random_sdf_graph` and closes up to
    ``num_feedback`` feedback edges ``v -> u`` where ``u`` already
    reaches ``v``, creating directed cycles.  Each feedback edge gets
    balanced rates derived from the repetitions vector and
    ``delay = delay_factor * TNSE`` initial tokens (a full period's
    consumption, times ``delay_factor >= 1``), so every schedule of the
    underlying acyclic graph remains valid — the graph is cyclic but
    deadlock-free by construction.

    At least one feedback edge is always placed (the result is
    guaranteed cyclic); raises if none can be.
    """
    if num_actors < 2:
        raise ValueError("num_actors must be >= 2 for a cycle")
    if delay_factor < 1:
        raise ValueError("delay_factor must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    g = random_sdf_graph(
        num_actors,
        rng=rng,
        name=name or f"cyclic{num_actors}",
        **base_kwargs,
    )
    q = repetitions_vector(g)

    def descendants(start: str) -> List[str]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in g.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        seen.discard(start)
        return sorted(seen)

    placed = 0
    attempts = 0
    names = g.actor_names()
    while placed < num_feedback and attempts < 50 * num_feedback:
        attempts += 1
        u = names[rng.randrange(len(names))]
        reach = descendants(u)
        if not reach:
            continue
        v = reach[rng.randrange(len(reach))]
        if g.has_edge(v, u):
            continue
        common = gcd(q[u], q[v])
        production = q[u] // common
        consumption = q[v] // common
        tnse = production * q[v]
        g.add_edge(
            v,
            u,
            production=production,
            consumption=consumption,
            delay=delay_factor * tnse,
        )
        placed += 1
    if placed == 0:
        raise RuntimeError("failed to close any feedback edge")
    return g


def random_chain_graph(
    num_actors: int,
    seed: Optional[int] = None,
    max_rate: int = 6,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> SDFGraph:
    """A random chain-structured SDF graph x1 -> x2 -> ... -> xn.

    Rates are drawn independently per edge from ``1..max_rate``; chains
    are always consistent.  Used to exercise the precise chain DP of
    section 6.
    """
    if num_actors < 1:
        raise ValueError("num_actors must be >= 1")
    if rng is None:
        rng = random.Random(seed)
    g = SDFGraph(name or f"chain{num_actors}")
    names = [f"x{i}" for i in range(num_actors)]
    for n in names:
        g.add_actor(n)
    for u, v in zip(names, names[1:]):
        g.add_edge(u, v, rng.randint(1, max_rate), rng.randint(1, max_rate))
    return g
