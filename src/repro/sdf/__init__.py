"""SDF model substrate: graphs, repetitions, schedules, simulation, bounds."""

from .graph import Actor, Edge, SDFGraph
from .repetitions import (
    is_consistent,
    repetitions_vector,
    total_tokens_exchanged,
)
from .schedule import (
    Firing,
    Loop,
    LoopedSchedule,
    flat_single_appearance_schedule,
    parse_schedule,
)
from .simulate import (
    assert_deadlock_free,
    buffer_memory_nonshared,
    coarse_live_intervals,
    has_valid_schedule,
    is_valid_schedule,
    max_live_tokens,
    max_tokens,
    simulate_schedule,
    validate_schedule,
)
from .bounds import (
    bmlb,
    bmlb_edge,
    min_buffer_any_schedule,
    min_buffer_any_schedule_edge,
    tnse,
    tnse_map,
)
from .topsort import (
    all_topological_sorts,
    count_topological_sorts,
    is_topological_order,
    random_topological_sort,
)
from .clustering import ClusterGraph, ClusterNode
from .random_graphs import random_chain_graph, random_sdf_graph
from .io import (
    canonical_document,
    canonical_hash,
    from_json,
    load_graph,
    save_graph,
    to_dot,
    to_json,
)
from .transformations import (
    ClusteredActor,
    apply_blocking_factor,
    blocked_repetitions,
    cluster_actors,
    insert_delays,
    normalize_token_sizes,
)

__all__ = [
    "Actor",
    "Edge",
    "SDFGraph",
    "repetitions_vector",
    "is_consistent",
    "total_tokens_exchanged",
    "Firing",
    "Loop",
    "LoopedSchedule",
    "parse_schedule",
    "flat_single_appearance_schedule",
    "validate_schedule",
    "is_valid_schedule",
    "max_tokens",
    "buffer_memory_nonshared",
    "simulate_schedule",
    "coarse_live_intervals",
    "max_live_tokens",
    "assert_deadlock_free",
    "has_valid_schedule",
    "bmlb",
    "bmlb_edge",
    "min_buffer_any_schedule",
    "min_buffer_any_schedule_edge",
    "tnse",
    "tnse_map",
    "random_topological_sort",
    "all_topological_sorts",
    "count_topological_sorts",
    "is_topological_order",
    "ClusterGraph",
    "ClusterNode",
    "random_sdf_graph",
    "random_chain_graph",
    "to_json",
    "canonical_document",
    "canonical_hash",
    "from_json",
    "save_graph",
    "load_graph",
    "to_dot",
    "apply_blocking_factor",
    "blocked_repetitions",
    "cluster_actors",
    "ClusteredActor",
    "insert_delays",
    "normalize_token_sizes",
]
