"""SDF graph transformations (substrate from reference [3]).

Transformations the synthesis flow applies before or around scheduling:

* :func:`apply_blocking_factor` — execute ``J`` periods of the graph as
  one super-period (vectorization): every actor fires ``J * q`` times
  per schedule, trading latency and buffer memory for lower loop
  overhead.  Implemented by scaling production/consumption is *wrong*
  (it changes semantics); the correct form keeps the graph and scales
  the repetitions vector, which :func:`blocked_repetitions` provides
  for schedulers that accept an explicit ``q``.
* :func:`cluster_actors` — replace a set of actors by one composite
  actor (hierarchical abstraction), with the induced edge rates; the
  inverse mapping supports flattening composite firings back into
  subschedules.
* :func:`insert_delays` — add initial tokens to an edge (pipelining);
  delays enable feedback schedulability and shift lifetimes.
* :func:`normalize_token_sizes` — push vector token sizes into scalar
  rates (an ``(p, c)`` edge of ``w``-word tokens becomes ``(p*w, c*w)``
  of 1-word tokens), which some downstream tools prefer; buffer sizes
  in words are invariant under this transformation.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import GraphStructureError
from .graph import SDFGraph
from .repetitions import repetitions_vector

__all__ = [
    "apply_blocking_factor",
    "blocked_repetitions",
    "cluster_actors",
    "ClusteredActor",
    "insert_delays",
    "normalize_token_sizes",
]


def blocked_repetitions(graph: SDFGraph, factor: int) -> Dict[str, int]:
    """The repetitions vector for a blocking factor of ``factor``."""
    if factor < 1:
        raise GraphStructureError("blocking factor must be >= 1")
    q = repetitions_vector(graph)
    return {a: n * factor for a, n in q.items()}


def apply_blocking_factor(graph: SDFGraph, factor: int) -> SDFGraph:
    """A graph whose minimal period equals ``factor`` periods of ``graph``.

    Realized by scaling every *source* actor's production and every
    *sink* actor's consumption is not possible in general; instead the
    standard construction adds a ``tick`` actor driving every source
    once per super-period.  Sources produce their whole super-period's
    tokens per firing of the tick chain, so the minimal repetitions
    vector becomes ``factor * q`` for all original actors.
    """
    if factor < 1:
        raise GraphStructureError("blocking factor must be >= 1")
    result = graph.copy()
    result.name = f"{graph.name}_x{factor}"
    if factor == 1:
        return result
    q = repetitions_vector(graph)
    result.add_actor("__tick__")
    for source in graph.sources():
        # One tick firing enables `factor * q[source]` source firings.
        result.add_edge("__tick__", source, factor * q[source], 1)
    if not graph.sources():
        raise GraphStructureError(
            "apply_blocking_factor requires at least one source actor"
        )
    return result


class ClusteredActor:
    """Bookkeeping for a composite actor produced by :func:`cluster_actors`.

    ``name`` is the composite's name in the clustered graph; ``members``
    the original actors; ``internal`` the subgraph they induce;
    ``repetitions`` the firings of each member per composite firing.
    """

    def __init__(
        self,
        name: str,
        members: List[str],
        internal: SDFGraph,
        repetitions: Dict[str, int],
    ) -> None:
        self.name = name
        self.members = members
        self.internal = internal
        self.repetitions = repetitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusteredActor({self.name!r}, members={self.members})"


def cluster_actors(
    graph: SDFGraph,
    members: Iterable[str],
    name: str = "composite",
) -> Tuple[SDFGraph, ClusteredActor]:
    """Cluster ``members`` into one composite actor.

    The composite fires ``g = gcd(q[m] for m in members)`` times per
    period; edges between a member and an outside actor become edges of
    the composite with production/consumption scaled by the member's
    per-composite-firing count.

    Raises
    ------
    GraphStructureError
        If the member set is empty, contains unknown actors, or the
        clustering would make the graph cyclic while it was acyclic
        (introducing false deadlock).
    """
    member_list = list(dict.fromkeys(members))
    if not member_list:
        raise GraphStructureError("cluster_actors requires members")
    for m in member_list:
        if m not in graph:
            raise GraphStructureError(f"unknown actor {m!r}")
    if name in graph and name not in member_list:
        raise GraphStructureError(
            f"composite name {name!r} collides with an existing actor"
        )
    member_set = set(member_list)
    q = repetitions_vector(graph)
    g = 0
    for m in member_list:
        g = gcd(g, q[m])
    per_firing = {m: q[m] // g for m in member_list}

    clustered = SDFGraph(f"{graph.name}_clustered")
    for a in graph.actors():
        if a.name not in member_set:
            clustered.add_actor(a.name, a.execution_time)
    clustered.add_actor(name)
    for e in graph.edges():
        src_in = e.source in member_set
        snk_in = e.sink in member_set
        if src_in and snk_in:
            continue
        if not src_in and not snk_in:
            clustered.add_edge(
                e.source, e.sink, e.production, e.consumption,
                e.delay, e.token_size,
            )
        elif src_in:
            clustered.add_edge(
                name, e.sink, e.production * per_firing[e.source],
                e.consumption, e.delay, e.token_size,
            )
        else:
            clustered.add_edge(
                e.source, name, e.production,
                e.consumption * per_firing[e.sink], e.delay, e.token_size,
            )
    if graph.is_acyclic() and not clustered.is_acyclic():
        raise GraphStructureError(
            f"clustering {sorted(member_set)} introduces a cycle "
            f"(illegal cluster for SAS construction)"
        )
    info = ClusteredActor(
        name=name,
        members=member_list,
        internal=graph.subgraph(member_list, name=name),
        repetitions=per_firing,
    )
    return clustered, info


def insert_delays(
    graph: SDFGraph, source: str, sink: str, tokens: int, index: int = 0
) -> SDFGraph:
    """A copy of ``graph`` with ``tokens`` extra initial tokens on an edge."""
    if tokens < 0:
        raise GraphStructureError("tokens must be >= 0")
    original = graph.edge(source, sink, index)
    result = SDFGraph(graph.name)
    for a in graph.actors():
        result.add_actor(a.name, a.execution_time)
    for e in graph.edges():
        delay = e.delay + tokens if e.key == original.key else e.delay
        result.add_edge(
            e.source, e.sink, e.production, e.consumption, delay,
            e.token_size,
        )
    return result


def normalize_token_sizes(graph: SDFGraph) -> SDFGraph:
    """Fold vector token sizes into scalar word rates.

    Buffer sizes in words are invariant; repetitions vectors are too.
    """
    result = SDFGraph(graph.name)
    for a in graph.actors():
        result.add_actor(a.name, a.execution_time)
    for e in graph.edges():
        result.add_edge(
            e.source, e.sink,
            e.production * e.token_size,
            e.consumption * e.token_size,
            e.delay * e.token_size,
            1,
        )
    return result
