"""Acyclic clustering of SDF graphs (substrate for APGAN, section 7).

APGAN repeatedly merges an adjacent pair of actors into a composite
*cluster* whose repetition count is the gcd-reduced combination of its
members, provided the merge does not create a cycle among clusters
(which would make the clustered graph unschedulable as a two-level
hierarchy).  This module implements the cluster graph: a quotient of the
SDF graph whose nodes are disjoint actor sets, with cycle-introduction
checks and repetition bookkeeping.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..exceptions import GraphStructureError
from .graph import SDFGraph
from .repetitions import repetitions_vector

__all__ = ["ClusterGraph", "ClusterNode"]


class ClusterNode:
    """A cluster: a set of original actors with a combined repetition count.

    ``repetitions`` is the repetition count of the cluster as a unit:
    ``gcd`` of the member actors' original counts.  ``hierarchy`` records
    the merge tree (``None`` for leaf clusters, else the pair of merged
    clusters) from which APGAN reconstructs its schedule.
    """

    __slots__ = ("members", "repetitions", "hierarchy")

    def __init__(
        self,
        members: FrozenSet[str],
        repetitions: int,
        hierarchy: Optional[Tuple["ClusterNode", "ClusterNode"]] = None,
    ) -> None:
        self.members = members
        self.repetitions = repetitions
        self.hierarchy = hierarchy

    def is_leaf(self) -> bool:
        return self.hierarchy is None

    def sole_member(self) -> str:
        if len(self.members) != 1:
            raise GraphStructureError("cluster is not a leaf")
        return next(iter(self.members))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cluster({sorted(self.members)}, q={self.repetitions})"


class ClusterGraph:
    """A dynamic quotient graph over an SDF graph's actors.

    Supports the two operations APGAN needs:

    * :meth:`merge_would_create_cycle` — would merging two adjacent
      clusters introduce a directed cycle among clusters?
    * :meth:`merge` — perform the merge, combining repetitions by gcd.

    Cluster adjacency (successor/predecessor sets) is maintained
    incrementally across merges; the cycle check is a DFS over those
    cached sets.
    """

    def __init__(
        self, graph: SDFGraph, q: Optional[Dict[str, int]] = None
    ) -> None:
        self.graph = graph
        self.q = q if q is not None else repetitions_vector(graph)
        self._clusters: Dict[int, ClusterNode] = {}
        self._cluster_of: Dict[str, int] = {}
        self._next_id = 0
        for a in graph.actor_names():
            cid = self._next_id
            self._next_id += 1
            self._clusters[cid] = ClusterNode(frozenset([a]), self.q[a])
            self._cluster_of[a] = cid
        # Cluster adjacency, maintained incrementally across merges so
        # the cycle-check DFS never re-derives it from member edges.
        self._succ: Dict[int, Set[int]] = {c: set() for c in self._clusters}
        self._pred: Dict[int, Set[int]] = {c: set() for c in self._clusters}
        for e in graph.edges():
            cu, cv = self._cluster_of[e.source], self._cluster_of[e.sink]
            if cu != cv:
                self._succ[cu].add(cv)
                self._pred[cv].add(cu)

    # ------------------------------------------------------------------
    def cluster_ids(self) -> List[int]:
        return list(self._clusters)

    def cluster(self, cid: int) -> ClusterNode:
        return self._clusters[cid]

    def cluster_id_of(self, actor: str) -> int:
        return self._cluster_of[actor]

    def num_clusters(self) -> int:
        return len(self._clusters)

    def adjacent_pairs(self) -> List[Tuple[int, int]]:
        """Ordered (source-cluster, sink-cluster) pairs joined by >= 1 edge."""
        seen: Set[Tuple[int, int]] = set()
        pairs: List[Tuple[int, int]] = []
        for e in self.graph.edges():
            cu, cv = self._cluster_of[e.source], self._cluster_of[e.sink]
            if cu != cv and (cu, cv) not in seen:
                seen.add((cu, cv))
                pairs.append((cu, cv))
        return pairs

    def successors(self, cid: int) -> Set[int]:
        """The clusters reachable from ``cid`` by one edge (read-only)."""
        return self._succ[cid]

    def _reachable(self, start: int, target: int, skip: Set[int]) -> bool:
        """DFS from ``start`` to ``target`` avoiding clusters in ``skip``."""
        stack = [start]
        visited = {start}
        while stack:
            c = stack.pop()
            if c == target:
                return True
            for nxt in self.successors(c):
                if nxt not in visited and nxt not in skip:
                    visited.add(nxt)
                    stack.append(nxt)
        return False

    def merge_would_create_cycle(self, cid_a: int, cid_b: int) -> bool:
        """True if merging ``cid_a`` and ``cid_b`` creates a cluster cycle.

        A merge of clusters U and V is cycle-free iff there is no path
        from U to V (or V to U) through a *third* cluster.  Direct edges
        between U and V are internalised by the merge and are fine.
        """
        for first, second in ((cid_a, cid_b), (cid_b, cid_a)):
            for mid in self.successors(first):
                if mid == second:
                    continue
                if self._reachable(mid, second, skip={first}):
                    return True
        return False

    def merge(self, cid_a: int, cid_b: int) -> int:
        """Merge two clusters; returns the new cluster id.

        The merged repetition count is ``gcd`` of the two clusters'
        counts, matching the semantics of clustering in SAS construction:
        the composite fires ``gcd(qa, qb)`` times, internally iterating
        each member ``q/gcd`` times.
        """
        if cid_a == cid_b:
            raise GraphStructureError("cannot merge a cluster with itself")
        a, b = self._clusters[cid_a], self._clusters[cid_b]
        merged = ClusterNode(
            a.members | b.members,
            gcd(a.repetitions, b.repetitions),
            hierarchy=(a, b),
        )
        cid = self._next_id
        self._next_id += 1
        self._clusters[cid] = merged
        del self._clusters[cid_a]
        del self._clusters[cid_b]
        for actor in merged.members:
            self._cluster_of[actor] = cid
        succ = (self._succ.pop(cid_a) | self._succ.pop(cid_b)) - {cid_a, cid_b}
        pred = (self._pred.pop(cid_a) | self._pred.pop(cid_b)) - {cid_a, cid_b}
        self._succ[cid] = succ
        self._pred[cid] = pred
        for p in pred:
            s = self._succ[p]
            s.discard(cid_a)
            s.discard(cid_b)
            s.add(cid)
        for t in succ:
            p = self._pred[t]
            p.discard(cid_a)
            p.discard(cid_b)
            p.add(cid)
        return cid

    def is_acyclic(self) -> bool:
        """True if the current cluster graph is a DAG."""
        ids = self.cluster_ids()
        indeg = {c: 0 for c in ids}
        succ = {c: self.successors(c) for c in ids}
        for c in ids:
            for s in succ[c]:
                indeg[s] += 1
        ready = [c for c in ids if indeg[c] == 0]
        seen = 0
        while ready:
            c = ready.pop()
            seen += 1
            for s in succ[c]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        return seen == len(ids)
