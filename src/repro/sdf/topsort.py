"""Topological-sort utilities (paper sections 7 and 10.1).

For a delayless acyclic SDF graph, every single appearance schedule is
determined by (i) a topological sort of the actors (its lexical order)
and (ii) a loop nesting hierarchy over that order.  APGAN and RPMC
(:mod:`repro.scheduling`) construct good topological sorts heuristically;
this module provides the primitives they and the random-search baseline
(section 10.1) are built on:

* deterministic topological ordering (in :class:`~repro.sdf.graph.SDFGraph`);
* uniform-at-random topological sorts (for the random-search experiment);
* exhaustive enumeration of all topological sorts (for small graphs and
  for exact optimality tests);
* counting topological sorts without enumerating them.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..exceptions import GraphStructureError
from .graph import SDFGraph

__all__ = [
    "random_topological_sort",
    "all_topological_sorts",
    "count_topological_sorts",
    "is_topological_order",
]


def is_topological_order(graph: SDFGraph, order: Sequence[str]) -> bool:
    """True if ``order`` is a topological order of ``graph``'s actors."""
    if sorted(order) != sorted(graph.actor_names()):
        return False
    position = {a: i for i, a in enumerate(order)}
    return all(position[e.source] < position[e.sink] for e in graph.edges())


def random_topological_sort(
    graph: SDFGraph, rng: Optional[random.Random] = None
) -> List[str]:
    """A topological sort sampled by random tie-breaking.

    At each step one actor is drawn uniformly from the current ready set
    (indegree zero among unplaced actors).  This reaches every
    topological sort with non-zero probability, which is all the
    random-search baseline of section 10.1 needs.  (The distribution is
    not uniform over sorts; uniform sampling is #P-hard in general.)
    """
    rng = rng or random.Random()
    indeg = {a: 0 for a in graph.actor_names()}
    # Walk raw adjacency keys (key[1] is the sink) — this sampler sits
    # inside RPMC's per-level loop, so avoid materializing Edge lists.
    out_keys = graph._out
    for keys in out_keys.values():
        for k in keys:
            indeg[k[1]] += 1
    ready = [a for a, d in indeg.items() if d == 0]
    order: List[str] = []
    while ready:
        idx = rng.randrange(len(ready))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        a = ready.pop()
        order.append(a)
        for k in out_keys[a]:
            s = k[1]
            d = indeg[s] - 1
            indeg[s] = d
            if d == 0:
                ready.append(s)
    if len(order) != graph.num_actors:
        raise GraphStructureError(f"graph {graph.name!r} contains a cycle")
    return order


def all_topological_sorts(graph: SDFGraph) -> Iterator[List[str]]:
    """Yield every topological sort of ``graph`` (Knuth/Szwarcfiter-style).

    Exponential in general — intended for graphs of up to roughly a
    dozen actors (exact-optimum cross-checks in tests).
    """
    indeg = {a: 0 for a in graph.actor_names()}
    for e in graph.edges():
        indeg[e.sink] += 1
    order: List[str] = []
    n = graph.num_actors

    def backtrack() -> Iterator[List[str]]:
        if len(order) == n:
            yield list(order)
            return
        for a in graph.actor_names():
            if indeg[a] == 0:
                indeg[a] = -1  # mark placed
                order.append(a)
                for e in graph.out_edges(a):
                    indeg[e.sink] -= 1
                yield from backtrack()
                for e in graph.out_edges(a):
                    indeg[e.sink] += 1
                order.pop()
                indeg[a] = 0

    yielded_any = False
    for sort in backtrack():
        yielded_any = True
        yield sort
    if not yielded_any and n:
        raise GraphStructureError(f"graph {graph.name!r} contains a cycle")


def count_topological_sorts(graph: SDFGraph, limit: int = 10 ** 7) -> int:
    """Count topological sorts by memoised DP over ready sets.

    Stops and raises :class:`GraphStructureError` if more than ``limit``
    distinct antichain states are visited (guards against exponential
    blow-up on wide graphs).
    """
    names = graph.actor_names()
    index = {a: i for i, a in enumerate(names)}
    preds_mask = [0] * len(names)
    for e in graph.edges():
        preds_mask[index[e.sink]] |= 1 << index[e.source]
    if len(names) > 62:
        raise GraphStructureError(
            "count_topological_sorts supports at most 62 actors"
        )

    full = (1 << len(names)) - 1
    states = 0
    # Explicit memo keyed on the placed-set mask; masks are only
    # meaningful within one graph's count, so the table lives here
    # rather than in a decorator rebuilt per call.
    memo: Dict[int, int] = {}

    def count(placed: int) -> int:
        nonlocal states
        cached = memo.get(placed)
        if cached is not None:
            return cached
        states += 1
        if states > limit:
            raise GraphStructureError("too many states while counting sorts")
        if placed == full:
            memo[placed] = 1
            return 1
        total = 0
        for i in range(len(names)):
            bit = 1 << i
            if not placed & bit and (preds_mask[i] & placed) == preds_mask[i]:
                total += count(placed | bit)
        memo[placed] = total
        return total

    if not names:
        return 1
    result = count(0)
    if result == 0:
        raise GraphStructureError(f"graph {graph.name!r} contains a cycle")
    return result
