"""Looped schedules and single appearance schedules (paper section 3).

A *schedule* is a sequence of actor firings.  Generated code repeats a
finite *valid schedule* forever, so compact schedules matter: the looped
schedule notation ``(2 B (2 C))`` denotes the firing sequence ``BCCBCC``,
and a *single appearance schedule* (SAS) — one in which each actor
appears exactly once lexically — yields code in which each actor's code
block is instantiated exactly once.

This module defines the schedule syntax tree (:class:`Firing`,
:class:`Loop`, :class:`LoopedSchedule`), a parser for the paper's textual
notation, and structural queries (lexical order, appearance counts,
flattening, firing counts).  Semantic checks that need token counting
live in :mod:`repro.sdf.simulate`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from ..exceptions import ScheduleError

__all__ = [
    "Firing",
    "Loop",
    "ScheduleNode",
    "LoopedSchedule",
    "parse_schedule",
    "flat_single_appearance_schedule",
]


@dataclass(frozen=True)
class Firing:
    """A leaf of the schedule tree: ``count`` consecutive firings of ``actor``.

    The notation ``3A`` is ``Firing("A", 3)``.
    """

    actor: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ScheduleError(
                f"firing count for {self.actor!r} must be positive, "
                f"got {self.count}"
            )

    def __str__(self) -> str:
        return self.actor if self.count == 1 else f"({self.count}{self.actor})"


@dataclass(frozen=True)
class Loop:
    """A schedule loop ``(count body...)``.

    ``Loop(2, (Firing("B"), Loop(2, (Firing("C"),))))`` prints as
    ``(2B(2C))`` and denotes the firing sequence ``BCCBCC``.
    """

    count: int
    body: Tuple["ScheduleNode", ...]

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ScheduleError(f"loop count must be positive, got {self.count}")
        if not self.body:
            raise ScheduleError("loop body must be non-empty")

    def __str__(self) -> str:
        inner = _join_terms(self.body)
        return f"({self.count}{inner})" if self.count != 1 else inner


ScheduleNode = Union[Firing, Loop]


def _join_terms(nodes: Sequence["ScheduleNode"]) -> str:
    """Concatenate term strings, spacing adjacent bare actor names.

    ``(2 B C)`` must not print as ``(2BC)`` — with multi-character
    actor names that would be ambiguous (and unparseable).
    """
    parts: List[str] = []
    for node in nodes:
        text = str(node)
        if parts and parts[-1][-1] not in ")(" and text[0] not in "(":
            parts.append(" ")
        parts.append(text)
    return "".join(parts)


class LoopedSchedule:
    """A complete looped schedule: an ordered forest of schedule nodes.

    The top level has an implicit loop count of one (the whole schedule
    is wrapped in the infinite loop by the code generator, which is
    outside this representation).
    """

    def __init__(self, body: Sequence[ScheduleNode]) -> None:
        if not body:
            raise ScheduleError("schedule must be non-empty")
        self.body: Tuple[ScheduleNode, ...] = tuple(body)
        # Memoized flattenings.  A schedule's body is an immutable tuple
        # of frozen dataclasses, so these never need invalidation; the
        # pipeline (validate -> max_tokens -> simulate) re-walks the same
        # tree several times and shares the flat list instead.
        self._flat: Optional[List[str]] = None
        self._firings_per_actor: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_string(text: str) -> "LoopedSchedule":
        return parse_schedule(text)

    @staticmethod
    def single_loop(count: int, body: Sequence[ScheduleNode]) -> "LoopedSchedule":
        return LoopedSchedule([Loop(count, tuple(body))])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def firing_sequence(self) -> Iterator[str]:
        """Yield actor names in execution order (may be long).

        The flattening is memoized on first use (schedules are immutable
        after construction), so repeated consumers — validation, token
        counting, simulation — walk the tree once between them.
        """
        return iter(self._flat_cached())

    def firing_list(self) -> List[str]:
        return list(self._flat_cached())

    def _flat_cached(self) -> List[str]:
        if self._flat is None:
            flat: List[str] = []

            def walk(node: ScheduleNode) -> None:
                if isinstance(node, Firing):
                    flat.extend([node.actor] * node.count)
                else:
                    start = len(flat)
                    for child in node.body:
                        walk(child)
                    body = flat[start:]
                    for _ in range(node.count - 1):
                        flat.extend(body)

            for node in self.body:
                walk(node)
            self._flat = flat
        return self._flat

    def firings_per_actor(self) -> Dict[str, int]:
        """Total firing count of each actor in one schedule period."""
        if self._firings_per_actor is not None:
            return dict(self._firings_per_actor)
        counts: Dict[str, int] = {}

        def walk(node: ScheduleNode, multiplier: int) -> None:
            if isinstance(node, Firing):
                counts[node.actor] = (
                    counts.get(node.actor, 0) + multiplier * node.count
                )
            else:
                for child in node.body:
                    walk(child, multiplier * node.count)

        for node in self.body:
            walk(node, 1)
        self._firings_per_actor = counts
        return dict(counts)

    def appearances(self) -> Dict[str, int]:
        """Number of lexical appearances of each actor."""
        counts: Dict[str, int] = {}

        def walk(node: ScheduleNode) -> None:
            if isinstance(node, Firing):
                counts[node.actor] = counts.get(node.actor, 0) + 1
            else:
                for child in node.body:
                    walk(child)

        for node in self.body:
            walk(node)
        return counts

    def is_single_appearance(self) -> bool:
        return all(c == 1 for c in self.appearances().values())

    def lexical_order(self) -> List[str]:
        """``lexorder(S)``: actors in order of first lexical appearance."""
        order: List[str] = []
        seen = set()
        def walk(node: ScheduleNode) -> None:
            if isinstance(node, Firing):
                if node.actor not in seen:
                    seen.add(node.actor)
                    order.append(node.actor)
            else:
                for child in node.body:
                    walk(child)
        for node in self.body:
            walk(node)
        return order

    def actors(self) -> List[str]:
        return self.lexical_order()

    def is_flat(self) -> bool:
        """True if the schedule is a bare firing sequence (a *flat* SAS).

        A flat SAS ``(q1 x1)(q2 x2)...(qn xn)`` has no multi-element
        loops: every top-level term is a single (possibly repeated)
        actor firing.
        """
        return all(isinstance(node, Firing) for node in self.body)

    def depth(self) -> int:
        """Maximum loop nesting depth (a bare firing has depth 0)."""

        def node_depth(node: ScheduleNode) -> int:
            if isinstance(node, Firing):
                return 0
            return 1 + max(node_depth(child) for child in node.body)

        return max(node_depth(node) for node in self.body)

    def num_firings(self) -> int:
        return sum(self.firings_per_actor().values())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "LoopedSchedule":
        """Collapse unit loops and merge nested single-child loops.

        ``(1 A B)`` becomes ``A B``; ``(2 (3 A))`` becomes ``(6 A)``
        when the inner loop is the sole body element.  The firing
        sequence is unchanged.
        """

        def norm(node: ScheduleNode) -> List[ScheduleNode]:
            if isinstance(node, Firing):
                return [node]
            new_body: List[ScheduleNode] = []
            for child in node.body:
                new_body.extend(norm(child))
            if node.count == 1:
                return new_body
            if len(new_body) == 1:
                only = new_body[0]
                if isinstance(only, Firing):
                    return [Firing(only.actor, only.count * node.count)]
                return [Loop(only.count * node.count, only.body)]
            return [Loop(node.count, tuple(new_body))]

        flat_body: List[ScheduleNode] = []
        for node in self.body:
            flat_body.extend(norm(node))
        return LoopedSchedule(flat_body)

    def __str__(self) -> str:
        return _join_terms(self.body)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LoopedSchedule({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LoopedSchedule):
            return NotImplemented
        return self.body == other.body

    def __hash__(self) -> int:
        return hash(self.body)


_TOKEN_RE = re.compile(r"\s*(\(|\)|\d+|[A-Za-z_][A-Za-z0-9_]*)")


def _tokenize(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise ScheduleError(
                    f"cannot tokenize schedule at ...{text[pos:pos + 20]!r}"
                )
            break
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


def parse_schedule(text: str) -> LoopedSchedule:
    """Parse the paper's schedule notation.

    Grammar::

        schedule := term+
        term     := COUNT? actor | '(' COUNT? term+ ')'

    A count directly before an actor multiplies that single actor
    (``3A`` = A fired three times); a count after ``(`` applies to the
    whole parenthesised body.

    Examples
    --------
    >>> s = parse_schedule("(3A)(6B)(2C)")
    >>> s.firings_per_actor() == {"A": 3, "B": 6, "C": 2}
    True
    >>> parse_schedule("A(2B(2C))").firing_list()
    ['A', 'B', 'C', 'C', 'B', 'C', 'C']
    """
    tokens = _tokenize(text)
    pos = 0

    def parse_terms(stop_at_paren: bool) -> List[ScheduleNode]:
        nonlocal pos
        nodes: List[ScheduleNode] = []
        while pos < len(tokens):
            tok = tokens[pos]
            if tok == ")":
                if not stop_at_paren:
                    raise ScheduleError("unbalanced ')' in schedule")
                return nodes
            if tok == "(":
                pos += 1
                count = 1
                if pos < len(tokens) and tokens[pos].isdigit():
                    count = int(tokens[pos])
                    pos += 1
                body = parse_terms(stop_at_paren=True)
                if pos >= len(tokens) or tokens[pos] != ")":
                    raise ScheduleError("missing ')' in schedule")
                pos += 1
                if not body:
                    raise ScheduleError("empty loop body in schedule")
                if len(body) == 1 and isinstance(body[0], Firing) and body[0].count == 1:
                    nodes.append(Firing(body[0].actor, count))
                else:
                    nodes.append(Loop(count, tuple(body)))
            elif tok.isdigit():
                count = int(tok)
                pos += 1
                if pos >= len(tokens):
                    raise ScheduleError("dangling count at end of schedule")
                nxt = tokens[pos]
                if nxt == "(":
                    pos += 1
                    body = parse_terms(stop_at_paren=True)
                    if pos >= len(tokens) or tokens[pos] != ")":
                        raise ScheduleError("missing ')' in schedule")
                    pos += 1
                    nodes.append(Loop(count, tuple(body)))
                elif nxt not in (")",) and not nxt.isdigit():
                    pos += 1
                    nodes.append(Firing(nxt, count))
                else:
                    raise ScheduleError(f"count {count} not followed by actor or '('")
            else:
                pos += 1
                nodes.append(Firing(tok, 1))
        return nodes

    body = parse_terms(stop_at_paren=False)
    if pos != len(tokens):
        raise ScheduleError("unbalanced parentheses in schedule")
    return LoopedSchedule(body)


def flat_single_appearance_schedule(
    lexical_order: Sequence[str], q: Dict[str, int]
) -> LoopedSchedule:
    """The flat SAS ``(q1 x1)(q2 x2)...(qn xn)`` for a lexical order.

    This is the starting point that DPPO/SDPPO post-optimise into a
    nested loop hierarchy (paper section 7).
    """
    missing = [a for a in lexical_order if a not in q]
    if missing:
        raise ScheduleError(
            f"actors {missing!r} missing from repetitions vector"
        )
    return LoopedSchedule([Firing(a, q[a]) for a in lexical_order])
