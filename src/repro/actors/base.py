"""Actor function protocol and binding helpers.

The generated Python implementations (:mod:`repro.codegen.py_emitter`)
call each actor as ``fire(inputs) -> outputs`` where ``inputs`` is a
list of token-word lists, one per input edge in graph edge order, and
``outputs`` must likewise provide one word list per output edge with
exactly ``production * token_size`` entries.

This module provides the plumbing that lets actor *behaviours* be
written naturally:

* :class:`Actor` — a stateful callable with named construction
  parameters (the paper's "parameterized code blocks", section 11.2);
* :func:`bind_actors` — attach behaviours to a graph's actors with
  arity checking at bind time rather than first firing;
* :func:`consume_all` / :func:`emit` — small helpers for behaviours.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..exceptions import SDFError
from ..sdf.graph import SDFGraph

__all__ = ["Actor", "bind_actors", "consume_all", "emit"]

Tokens = List[float]
FireFunction = Callable[[List[Tokens]], List[Tokens]]


class Actor:
    """A stateful actor behaviour.

    Subclasses implement :meth:`fire`; state lives on the instance and
    persists across firings (e.g. FIR delay lines).  ``reset`` restores
    initial state so one instance can be reused across runs.
    """

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial state (default: nothing to restore)."""

    def __call__(self, inputs: List[Tokens]) -> List[Tokens]:
        return self.fire(inputs)


def consume_all(inputs: Sequence[Tokens]) -> Tokens:
    """Flatten all input edges into one token list (fan-in helper)."""
    return [v for tokens in inputs for v in tokens]


def emit(*outputs: Sequence[float]) -> List[Tokens]:
    """Package output token lists (cosmetic symmetry with consume_all)."""
    return [list(tokens) for tokens in outputs]


def bind_actors(
    graph: SDFGraph,
    behaviours: Dict[str, FireFunction],
) -> Dict[str, FireFunction]:
    """Check and normalize a behaviour map for a graph.

    Ensures every actor has a behaviour, resets stateful behaviours,
    and wraps each in an arity check so misbehaving actors fail with
    the actor's name rather than a cursor error deep in the pool.
    """
    missing = [a for a in graph.actor_names() if a not in behaviours]
    if missing:
        raise SDFError(f"no behaviour bound for actors {missing!r}")

    bound: Dict[str, FireFunction] = {}
    for name in graph.actor_names():
        behaviour = behaviours[name]
        if isinstance(behaviour, Actor):
            behaviour.reset()
        expected_out = [
            e.production * e.token_size for e in graph.out_edges(name)
        ]
        expected_in = [
            e.consumption * e.token_size for e in graph.in_edges(name)
        ]

        def checked(
            inputs: List[Tokens],
            _behaviour: FireFunction = behaviour,
            _name: str = name,
            _in: List[int] = expected_in,
            _out: List[int] = expected_out,
        ) -> List[Tokens]:
            for position, (tokens, need) in enumerate(zip(inputs, _in)):
                if len(tokens) != need:
                    raise SDFError(
                        f"actor {_name!r} input {position}: got "
                        f"{len(tokens)} words, expected {need}"
                    )
            outputs = _behaviour(inputs)
            if len(outputs) != len(_out):
                raise SDFError(
                    f"actor {_name!r} produced {len(outputs)} outputs, "
                    f"expected {len(_out)}"
                )
            for position, (tokens, need) in enumerate(zip(outputs, _out)):
                if len(tokens) != need:
                    raise SDFError(
                        f"actor {_name!r} output {position}: produced "
                        f"{len(tokens)} words, expected {need}"
                    )
            return [list(t) for t in outputs]

        bound[name] = checked
    return bound
