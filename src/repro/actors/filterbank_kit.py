"""Ready-made behaviours for the generated filterbank graphs.

The filterbank constructors (:mod:`repro.apps.filterbanks`) fix an actor
naming convention (``src``, ``pre*``, ``lo*``, ``hi*``, ``ulo*``,
``uhi*``, ``add*``, ``snk``); this module binds working DSP behaviours
to those names.

:func:`haar_behaviours` implements the 2-band Haar (quadrature mirror)
bank for the ``"12"`` rate variant: analysis ``(x0 ± x1)/2``, synthesis
``v -> (v, ±v)``.  The composition is a perfect-reconstruction
identity, which makes it the reference workload for end-to-end
validation: a compiled shared-memory filterbank must return its input
exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..exceptions import SDFError
from ..sdf.graph import SDFGraph
from .base import Actor, FireFunction, Tokens
from .library import Adder, CollectSink, Fork, ListSource

__all__ = ["HaarAnalysis", "HaarSynthesis", "haar_behaviours"]


class HaarAnalysis(Actor):
    """cons 2 -> prod 1: ``(x0 + sign * x1) / 2``."""

    def __init__(self, sign: int) -> None:
        if sign not in (1, -1):
            raise SDFError("sign must be +1 (lowpass) or -1 (highpass)")
        self.sign = sign

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        x0, x1 = inputs[0]
        return [[(x0 + self.sign * x1) / 2.0]]


class HaarSynthesis(Actor):
    """cons 1 -> prod 2: ``v -> (v, sign * v)``."""

    def __init__(self, sign: int) -> None:
        if sign not in (1, -1):
            raise SDFError("sign must be +1 (lowpass) or -1 (highpass)")
        self.sign = sign

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        (value,) = inputs[0]
        return [[value, self.sign * value]]


def haar_behaviours(
    graph: SDFGraph, signal: Sequence[float]
) -> Dict[str, FireFunction]:
    """Perfect-reconstruction behaviours for a ``qmf12`` filterbank graph.

    ``signal`` drives the source (cycling).  The returned map includes a
    :class:`~repro.actors.library.CollectSink` as ``snk`` whose
    ``collected`` list receives the reconstructed samples.
    """
    behaviours: Dict[str, FireFunction] = {}
    for name in graph.actor_names():
        fan_out = len(graph.out_edges(name))
        if name == "src":
            behaviours[name] = ListSource(signal, fan_out=fan_out)
        elif name == "snk":
            behaviours[name] = CollectSink()
        elif name.startswith("pre"):
            behaviours[name] = Fork(fan_out=fan_out)
        elif name.startswith("ulo"):
            behaviours[name] = HaarSynthesis(+1)
        elif name.startswith("uhi"):
            behaviours[name] = HaarSynthesis(-1)
        elif name.startswith("lo"):
            behaviours[name] = HaarAnalysis(+1)
        elif name.startswith("hi"):
            behaviours[name] = HaarAnalysis(-1)
        elif name.startswith("add"):
            behaviours[name] = Adder()
        else:
            raise SDFError(
                f"actor {name!r} does not follow the filterbank "
                f"naming convention"
            )
    return behaviours
