"""A library of DSP actor behaviours.

Pure-Python implementations of the block-diagram primitives the paper's
benchmark systems are built from: rate changers, arithmetic, FIR
filtering, and transform blocks, plus sources and sinks for driving and
observing compiled implementations.  Each class documents its SDF
signature as ``consumes -> produces`` per input/output edge.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Optional, Sequence

from ..exceptions import SDFError
from .base import Actor, Tokens, consume_all

__all__ = [
    "Gain",
    "Adder",
    "Subtract",
    "Accumulator",
    "Upsample",
    "Downsample",
    "Block",
    "Unblock",
    "Fork",
    "Commutator",
    "Distributor",
    "FIRFilter",
    "MovingAverage",
    "DelayLine",
    "DFT",
    "IDFT",
    "Magnitude",
    "ConstantSource",
    "RampSource",
    "SineSource",
    "ListSource",
    "CollectSink",
    "NullSink",
    "Passthrough",
]


class Passthrough(Actor):
    """1 -> 1 per edge: forwards input tokens to every output edge."""

    def __init__(self, fan_out: int = 1) -> None:
        self.fan_out = fan_out

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = consume_all(inputs)
        return [list(data) for _ in range(self.fan_out)]


class Gain(Actor):
    """n -> n: multiplies every token by a constant."""

    def __init__(self, factor: float, fan_out: int = 1) -> None:
        self.factor = factor
        self.fan_out = fan_out

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = [v * self.factor for v in consume_all(inputs)]
        return [list(data) for _ in range(self.fan_out)]


class Adder(Actor):
    """(n, n, ...) -> n: element-wise sum across input edges."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        if not inputs:
            raise SDFError("Adder needs at least one input edge")
        length = len(inputs[0])
        return [[sum(t[i] for t in inputs) for i in range(length)]]


class Subtract(Actor):
    """(n, n) -> n: first input minus second, element-wise."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        a, b = inputs
        return [[x - y for x, y in zip(a, b)]]


class Accumulator(Actor):
    """n -> 1: running sum emitted once per firing (integrate & dump)."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        return [[sum(consume_all(inputs))]]


class Upsample(Actor):
    """1 -> L: zero-stuffing interpolator."""

    def __init__(self, factor: int) -> None:
        self.factor = factor

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        out: Tokens = []
        for v in consume_all(inputs):
            out.append(v)
            out.extend([0.0] * (self.factor - 1))
        return [out]


class Downsample(Actor):
    """M -> 1: keeps every M-th token (phase 0)."""

    def __init__(self, factor: int) -> None:
        self.factor = factor

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = consume_all(inputs)
        return [data[:: self.factor]]


class Block(Actor):
    """n -> n: groups samples into a block token stream (identity data)."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        return [consume_all(inputs)]


class Unblock(Block):
    """Alias of :class:`Block`: ungrouping is also an identity copy."""


class Fork(Actor):
    """n -> (n, n, ...): replicates the input on every output edge."""

    def __init__(self, fan_out: int = 2) -> None:
        self.fan_out = fan_out

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = consume_all(inputs)
        return [list(data) for _ in range(self.fan_out)]


class Commutator(Actor):
    """(n, n, ...) -> k*n: interleaves input edges round robin."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        length = len(inputs[0])
        out: Tokens = []
        for i in range(length):
            for tokens in inputs:
                out.append(tokens[i])
        return [out]


class Distributor(Actor):
    """k*n -> (n, n, ...): deals tokens to output edges round robin."""

    def __init__(self, ways: int = 2) -> None:
        self.ways = ways

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = consume_all(inputs)
        return [data[w :: self.ways] for w in range(self.ways)]


class FIRFilter(Actor):
    """n -> n: streaming FIR with a persistent delay line.

    Matches ``scipy.signal.lfilter(taps, 1.0, signal)`` sample for
    sample across firings.
    """

    def __init__(self, taps: Sequence[float]) -> None:
        if not taps:
            raise SDFError("FIRFilter needs at least one tap")
        self.taps = list(taps)
        self._history: Tokens = []
        self.reset()

    def reset(self) -> None:
        self._history = [0.0] * (len(self.taps) - 1)

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        out: Tokens = []
        for v in consume_all(inputs):
            window = [v] + self._history
            out.append(
                sum(tap * sample for tap, sample in zip(self.taps, window))
            )
            if self._history:
                self._history = [v] + self._history[:-1]
        return [out]


class MovingAverage(FIRFilter):
    """n -> n: length-L moving average (uniform FIR)."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise SDFError("MovingAverage needs length >= 1")
        super().__init__([1.0 / length] * length)


class DelayLine(Actor):
    """n -> n: pure delay of D samples with persistent state."""

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise SDFError("DelayLine needs delay >= 0")
        self.delay = delay
        self._queue: Tokens = []
        self.reset()

    def reset(self) -> None:
        self._queue = [0.0] * self.delay

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        out: Tokens = []
        for v in consume_all(inputs):
            self._queue.append(v)
            out.append(self._queue.pop(0))
        return [out]


class DFT(Actor):
    """N -> 2N: block DFT emitting interleaved (re, im) pairs."""

    def __init__(self, size: int) -> None:
        self.size = size

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = consume_all(inputs)
        out: Tokens = []
        for k in range(self.size):
            acc = 0j
            for n, v in enumerate(data):
                acc += v * cmath.exp(-2j * math.pi * k * n / self.size)
            out.extend([acc.real, acc.imag])
        return [out]


class IDFT(Actor):
    """2N -> N: inverse of :class:`DFT` (interleaved (re, im) input)."""

    def __init__(self, size: int) -> None:
        self.size = size

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        pairs = consume_all(inputs)
        spectrum = [
            complex(pairs[2 * k], pairs[2 * k + 1]) for k in range(self.size)
        ]
        out: Tokens = []
        for n in range(self.size):
            acc = 0j
            for k, c in enumerate(spectrum):
                acc += c * cmath.exp(2j * math.pi * k * n / self.size)
            out.append(acc.real / self.size)
        return [out]


class Magnitude(Actor):
    """2N -> N: magnitude of interleaved (re, im) pairs."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        pairs = consume_all(inputs)
        return [
            [
                math.hypot(pairs[2 * k], pairs[2 * k + 1])
                for k in range(len(pairs) // 2)
            ]
        ]


class ConstantSource(Actor):
    """0 -> n: emits a constant."""

    def __init__(self, value: float, per_firing: int = 1, fan_out: int = 1) -> None:
        self.value = value
        self.per_firing = per_firing
        self.fan_out = fan_out

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = [self.value] * self.per_firing
        return [list(data) for _ in range(self.fan_out)]


class RampSource(Actor):
    """0 -> n: emits 0, 1, 2, ... across firings."""

    def __init__(self, per_firing: int = 1, fan_out: int = 1) -> None:
        self.per_firing = per_firing
        self.fan_out = fan_out
        self._next = 0
        self.reset()

    def reset(self) -> None:
        self._next = 0

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = [float(self._next + i) for i in range(self.per_firing)]
        self._next += self.per_firing
        return [list(data) for _ in range(self.fan_out)]


class SineSource(Actor):
    """0 -> n: sampled sinusoid with persistent phase."""

    def __init__(
        self,
        frequency: float,
        sample_rate: float = 1.0,
        amplitude: float = 1.0,
        per_firing: int = 1,
        fan_out: int = 1,
    ) -> None:
        self.frequency = frequency
        self.sample_rate = sample_rate
        self.amplitude = amplitude
        self.per_firing = per_firing
        self.fan_out = fan_out
        self._n = 0
        self.reset()

    def reset(self) -> None:
        self._n = 0

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = []
        for _ in range(self.per_firing):
            data.append(
                self.amplitude
                * math.sin(
                    2 * math.pi * self.frequency * self._n / self.sample_rate
                )
            )
            self._n += 1
        return [list(data) for _ in range(self.fan_out)]


class ListSource(Actor):
    """0 -> n: plays back a fixed sample list (cycling)."""

    def __init__(
        self, samples: Sequence[float], per_firing: int = 1, fan_out: int = 1
    ) -> None:
        if not samples:
            raise SDFError("ListSource needs samples")
        self.samples = list(samples)
        self.per_firing = per_firing
        self.fan_out = fan_out
        self._cursor = 0
        self.reset()

    def reset(self) -> None:
        self._cursor = 0

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        data = []
        for _ in range(self.per_firing):
            data.append(self.samples[self._cursor % len(self.samples)])
            self._cursor += 1
        return [list(data) for _ in range(self.fan_out)]


class CollectSink(Actor):
    """n -> 0: records every consumed token in ``collected``."""

    def __init__(self) -> None:
        self.collected: Tokens = []

    def reset(self) -> None:
        self.collected = []

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        self.collected.extend(consume_all(inputs))
        return []


class NullSink(Actor):
    """n -> 0: discards input."""

    def fire(self, inputs: List[Tokens]) -> List[Tokens]:
        return []
