"""High-level execution: compile a graph and run it with real actors.

:func:`run_graph` is the one-call path from "graph + behaviours" to
"signal out": schedule (full figure 21 flow), generate the
shared-memory Python implementation, bind and arity-check behaviours,
execute, and return the collected sink outputs.  Used by the signal-
processing integration tests and the filterbank example — the compiled
artifact processes real samples through the packed memory pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sdf.graph import SDFGraph
from ..scheduling.pipeline import ImplementationResult, implement
from ..codegen.py_emitter import compile_python
from .base import FireFunction, Tokens, bind_actors
from .library import CollectSink

__all__ = ["run_graph", "RunOutcome"]


class RunOutcome:
    """Execution result: sink captures plus the implementation used."""

    def __init__(
        self,
        implementation: ImplementationResult,
        sinks: Dict[str, Tokens],
        memory: List[float],
    ) -> None:
        self.implementation = implementation
        self.sinks = sinks
        self.memory = memory

    def output(self, sink: Optional[str] = None) -> Tokens:
        """The samples captured by ``sink`` (or the only sink)."""
        if sink is None:
            if len(self.sinks) != 1:
                raise KeyError(
                    f"multiple sinks {sorted(self.sinks)}; name one"
                )
            return next(iter(self.sinks.values()))
        return self.sinks[sink]


def run_graph(
    graph: SDFGraph,
    behaviours: Dict[str, FireFunction],
    periods: int = 1,
    method: str = "rpmc",
    preloads: Optional[Dict[tuple, Sequence[float]]] = None,
    implementation: Optional[ImplementationResult] = None,
) -> RunOutcome:
    """Compile ``graph`` and execute ``periods`` schedule periods.

    ``preloads`` supplies initial-token values for delayed edges (keyed
    by edge key); delayed edges default to zeros.  Pass a prebuilt
    ``implementation`` to reuse scheduling work across runs.
    """
    if implementation is None:
        implementation = implement(graph, method)
    module = compile_python(
        graph, implementation.lifetimes, implementation.allocation
    )
    bound = bind_actors(graph, behaviours)

    fills: Dict[tuple, List[float]] = {}
    for e in graph.edges():
        if e.delay > 0:
            words = e.delay * e.token_size
            provided = list((preloads or {}).get(e.key, []))
            if len(provided) > words:
                raise ValueError(
                    f"preload for {e.key} has {len(provided)} words, "
                    f"edge holds {words}"
                )
            fills[e.key] = provided + [0.0] * (words - len(provided))

    memory = module["run"](bound, periods=periods, preloads=fills)
    sinks = {
        name: behaviour.collected
        for name, behaviour in behaviours.items()
        if isinstance(behaviour, CollectSink)
    }
    return RunOutcome(
        implementation=implementation, sinks=sinks, memory=memory
    )
