"""Exception hierarchy for the SDF lifetime-analysis framework.

All exceptions raised by this package derive from :class:`SDFError` so that
callers can catch framework errors with a single ``except`` clause while
letting programming errors (``TypeError``, ``KeyError`` from user code, ...)
propagate unchanged.
"""

from __future__ import annotations


class SDFError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphStructureError(SDFError):
    """The graph violates a structural requirement.

    Raised, for example, when an algorithm that requires an acyclic or
    chain-structured graph is handed one that is not, when an edge refers
    to an unknown actor, or when a duplicate actor name is added.
    """


class InconsistentGraphError(SDFError):
    """The SDF graph has no valid schedule.

    Either the balance equations (sample-rate consistency) have no
    positive integer solution, or every schedule deadlocks because of
    insufficient initial tokens on a cycle.
    """

    def __init__(self, message: str, *, kind: str = "rate") -> None:
        super().__init__(message)
        #: ``"rate"`` for balance-equation failures, ``"deadlock"`` for
        #: graphs that are sample-rate consistent but deadlock.
        self.kind = kind


class ScheduleError(SDFError):
    """A schedule is malformed or invalid for its graph.

    Raised when a looped schedule fires an actor the wrong number of
    times, drives an edge's token count negative, or does not return
    every edge to its initial token count.
    """


class AllocationError(SDFError):
    """A memory allocation is infeasible or fails verification."""


class CodegenError(SDFError):
    """Code generation failed (e.g. missing allocation for a buffer)."""
