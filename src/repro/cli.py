"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``
    Run the full flow on a benchmark system or a JSON graph file and
    report the schedule, memory figures, and (optionally) generated C.
    ``--trace out.json`` records hierarchical spans plus work counters
    and writes a ``chrome://tracing``-loadable file (subsumes
    ``--profile``, which prints the per-stage wall-time table).
``stats``
    Compile under a recorder and print the aggregate span/counter
    table (DP cells, window-cache hits, first-fit probes, interpreter
    firings vs symbolic shortcuts...).
``table1`` / ``fig25`` / ``fig26`` / ``fig27`` / ``satrec`` / ``cddat``
    Regenerate an evaluation table/figure on stdout.
``check``
    Differential cross-layer checking harness: random graphs through
    the full pipeline, every layer pair cross-checked, failures shrunk
    to minimal counterexamples (``--inject`` adds the mutation-kill
    self-test).
``serve`` / ``submit`` / ``cache``
    The compilation service: a long-running JSON-over-HTTP compile
    server with a content-addressed artifact cache (``serve``), a
    batch client that submits graphs and prints/saves
    ``CompilationReport``s (``submit``), and cache maintenance
    (``cache {stats,gc,clear}``).
``systems``
    List the built-in benchmark systems.
``dot``
    Emit a Graphviz rendering of a system or graph file.

Examples
--------
.. code-block:: bash

    python -m repro compile satrec --method apgan
    python -m repro compile cddat --trace cddat_trace.json
    python -m repro stats satrec --check
    python -m repro compile mygraph.json --emit-c out.c
    python -m repro table1 --systems qmf23_2d satrec
    python -m repro fig27 --sizes 20 50 --count 10 --jobs 4
    python -m repro check --trials 25 --seed 0 --inject
    python -m repro serve --port 8177 --workers 4
    python -m repro submit cddat satrec --url http://127.0.0.1:8177
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .apps import TABLE1_SYSTEMS, table1_graph
from .exceptions import GraphStructureError
from .sdf.graph import SDFGraph
from .sdf.io import load_graph, to_dot

__all__ = ["main"]


def _apply_jobs(args: argparse.Namespace) -> Optional[int]:
    """Resolve the ``--jobs`` flag with flag > ``REPRO_JOBS`` precedence.

    Validates the value eagerly (so ``--jobs -2`` fails with a clean
    error before any work) and exports it to ``REPRO_JOBS`` for the
    rest of the process, so every nested ``parallel_map`` — including
    ones the subcommand does not thread ``jobs`` into explicitly —
    sees the same setting.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        return None
    from .experiments.runner import effective_jobs

    try:
        effective_jobs(jobs)
    except ValueError as exc:
        raise SystemExit(f"--jobs: {exc}")
    os.environ["REPRO_JOBS"] = str(jobs)
    return jobs


def _extra_systems():
    """Named graphs usable by compile/stats/dot but outside Table 1.

    CD-DAT is the paper's running example (figures 1–2 and section
    11.1.3) yet not a Table 1 benchmark row, so it lives here rather
    than in ``TABLE1_SYSTEMS`` (which drives the Table 1 experiments).
    """
    from .apps.ptolemy_demos import cd_to_dat

    return {"cddat": cd_to_dat}


def _resolve_graph(spec: str) -> SDFGraph:
    if spec in TABLE1_SYSTEMS:
        return table1_graph(spec)
    extra = _extra_systems()
    if spec in extra:
        return extra[spec]()
    if spec.endswith(".json"):
        try:
            return load_graph(spec)
        except OSError as exc:
            raise SystemExit(
                f"cannot read graph file {spec!r}: "
                f"{exc.strerror or exc}"
            ) from None
        except (ValueError, GraphStructureError) as exc:
            raise SystemExit(
                f"invalid graph file {spec!r}: {exc}"
            ) from None
    raise SystemExit(
        f"unknown system {spec!r}; use a name from 'systems', "
        f"{sorted(extra)}, or a .json graph file"
    )


def _cmd_systems(_: argparse.Namespace) -> int:
    for name in TABLE1_SYSTEMS:
        graph = table1_graph(name)
        print(f"{name:>12}  {graph.num_actors:>4} actors "
              f"{graph.num_edges:>4} edges")
    return 0


def _print_profile(report) -> None:
    total = sum(row["wall_s"] for row in report.rows)
    print("profile:")
    for row in report.rows:
        extra = ""
        if row["meta"]:
            pairs = ", ".join(f"{k}={v}" for k, v in row["meta"].items())
            extra = f"  ({pairs})"
        print(f"  {row['bench']:>10}: {row['wall_s']:8.4f}s{extra}")
    print(f"  {'total':>10}: {total:8.4f}s")


def _flush_observability(args: argparse.Namespace, report, recorder) -> None:
    """Print/write whatever the run recorded — also on failure paths.

    Called both after a clean compile and from the except path, so a
    stage that raises still leaves its partial timing rows and a trace
    whose failing span carries the error.
    """
    if getattr(args, "profile", False) and report is not None:
        _print_profile(report)
    if getattr(args, "trace", None) and recorder is not None:
        from .obs import write_trace

        fmt = write_trace(recorder, args.trace, fmt=args.trace_format)
        print(f"trace ({fmt}) written to {args.trace}")


def _cmd_compile(args: argparse.Namespace) -> int:
    from .scheduling.pipeline import implement
    from .codegen import emit_c, run_shared_memory_check

    _apply_jobs(args)
    if args.memory_budget is not None and not args.vectorize:
        raise SystemExit("--memory-budget requires --vectorize")
    graph = _resolve_graph(args.graph)
    report = None
    recorder = None
    if args.profile or args.trace:
        from .experiments.runner import TimingReport

        report = TimingReport()
    if args.trace:
        from . import obs

        recorder = obs.TraceRecorder()
    try:
        result = implement(
            graph, args.method, seed=args.seed,
            report=report, recorder=recorder, backend=args.backend,
            vectorize=args.vectorize, memory_budget=args.memory_budget,
        )
    except Exception:
        _flush_observability(args, report, recorder)
        raise
    print(f"graph:      {graph.name} ({graph.num_actors} actors)")
    print(f"order:      {' '.join(result.order)}")
    print(f"schedule:   {result.sdppo_schedule}")
    print(f"non-shared: {result.dppo_cost} words")
    print(f"shared:     {result.allocation.total} words "
          f"(mco {result.mco}, mcp {result.mcp})")
    if result.vectorize is not None:
        v = result.vectorize
        budget = (
            "unconstrained" if v.memory_budget is None
            else f"{v.memory_budget} words"
        )
        print(f"vectorized: {v.schedule} (budget {budget})")
        print(f"blocks:     {v.blocks} per period "
              f"({v.firings} firings, amortization {v.amortization:.1f}x, "
              f"baseline {v.baseline_blocks} blocks)")
    if args.check:
        vm_class = None
        if result.vectorize is not None:
            from .codegen.batched_vm import BatchedVM

            vm_class = BatchedVM
        firings = run_shared_memory_check(
            graph, result.lifetimes, result.allocation, periods=2,
            recorder=recorder, vm_class=vm_class,
        )
        kind = "batched" if vm_class is not None else "scalar"
        print(f"execution check: OK ({firings} firings, {kind} VM)")
    if args.emit_c:
        code = emit_c(graph, result.lifetimes, result.allocation)
        with open(args.emit_c, "w") as handle:
            handle.write(code)
        print(f"C written to {args.emit_c}")
    _flush_observability(args, report, recorder)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Compile under a recorder and print the aggregate work table."""
    from . import obs
    from .scheduling.pipeline import implement
    from .codegen import run_shared_memory_check

    _apply_jobs(args)
    graph = _resolve_graph(args.graph)
    recorder = obs.TraceRecorder()
    try:
        result = implement(
            graph, args.method, seed=args.seed, recorder=recorder,
            backend=args.backend,
        )
    except Exception:
        print(obs.format_stats(recorder))
        raise
    if args.check:
        run_shared_memory_check(
            graph, result.lifetimes, result.allocation, periods=2,
            recorder=recorder,
        )
    print(f"graph:      {graph.name} ({graph.num_actors} actors)")
    print(f"shared:     {result.allocation.total} words")
    print()
    print(obs.format_stats(recorder))
    if args.trace:
        fmt = obs.write_trace(recorder, args.trace, fmt=args.trace_format)
        print(f"trace ({fmt}) written to {args.trace}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import format_table1, run_table1

    jobs = _apply_jobs(args)
    systems = args.systems or [
        n for n in TABLE1_SYSTEMS if not n.endswith("5d")
    ]
    print(format_table1(run_table1(systems, seed=args.seed, jobs=jobs)))
    return 0


def _cmd_fig25(args: argparse.Namespace) -> int:
    from .experiments.fig25 import format_fig25, run_fig25

    systems = args.systems or [
        n for n in TABLE1_SYSTEMS if not n.endswith("5d")
    ]
    print(format_fig25(run_fig25(systems, seed=args.seed)))
    return 0


def _cmd_fig26(args: argparse.Namespace) -> int:
    from .experiments.homogeneous_exp import (
        format_fig26,
        run_homogeneous_experiment,
    )

    points = tuple(
        (m, n)
        for m, n in (p.split("x") for p in args.points)
    ) if args.points else ((2, 3), (3, 4), (4, 6), (6, 8))
    points = tuple((int(m), int(n)) for m, n in points)
    print(format_fig26(run_homogeneous_experiment(points=points)))
    return 0


def _cmd_fig27(args: argparse.Namespace) -> int:
    from .experiments.random_graphs import (
        format_fig27,
        run_random_graph_experiment,
    )

    jobs = _apply_jobs(args)
    print(
        format_fig27(
            run_random_graph_experiment(
                sizes=tuple(args.sizes),
                graphs_per_size=args.count,
                seed=args.seed,
                jobs=jobs,
            )
        )
    )
    return 0


def _cmd_satrec(_: argparse.Namespace) -> int:
    from .experiments.satrec_comparison import (
        format_satrec,
        run_satrec_comparison,
    )

    print(format_satrec(run_satrec_comparison()))
    return 0


def _cmd_cddat(_: argparse.Namespace) -> int:
    from .experiments.cddat_io import run_cddat_io

    r = run_cddat_io()
    print(f"CD-DAT input buffering over a {r.period_samples}-sample period:")
    print(f"  flat SAS:   {r.flat_backlog} samples")
    print(f"  nested SAS: {r.nested_backlog} samples")
    print(f"  nested schedule: {r.nested_schedule}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import run_check
    from .experiments.runner import TimingReport

    recorder = None
    if args.trace:
        from . import obs

        recorder = obs.TraceRecorder()
    timing = TimingReport()
    with timing.stage(
        "check_differential",
        trials=args.trials,
        seed=args.seed,
        inject=args.inject,
        families=args.families,
    ) as meta:
        report = run_check(
            trials=args.trials,
            seed=args.seed,
            inject=args.inject,
            shrink=not args.no_shrink,
            recorder=recorder,
            families=tuple(
                f.strip() for f in args.families.split(",") if f.strip()
            ),
            backend=args.backend,
        )
        meta["failures"] = len(report.failures)
        meta["ok"] = report.ok
    for line in report.summary_lines():
        print(line)
    if args.bench_out:
        timing.write_json(args.bench_out)
        print(f"timing written to {args.bench_out}")
    if recorder is not None:
        from .obs import write_trace

        fmt = write_trace(recorder, args.trace, fmt=args.trace_format)
        print(f"trace ({fmt}) written to {args.trace}")
    if report.ok:
        print("check: OK")
        return 0
    print("check: FAILED", file=sys.stderr)
    return 1


def _cmd_dot(args: argparse.Namespace) -> int:
    sys.stdout.write(to_dot(_resolve_graph(args.graph)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(seed=args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived compile server until SIGTERM/SIGINT drain."""
    import signal
    import threading

    from .serve import ArtifactCache, CompileServer, CompileService

    _apply_jobs(args)
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    server = CompileServer(
        CompileService(cache=cache),
        host=args.host,
        port=args.port,
        workers=args.threads,
        processes=args.workers,
        shard_by=args.shard_by,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        trace_path=args.trace,
        trace_format=args.trace_format,
        quiet=args.quiet,
    )
    drainers: List[threading.Thread] = []

    def _on_signal(signum, frame):
        thread = threading.Thread(target=server.drain)
        thread.start()
        drainers.append(thread)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    pool = (
        f"farm {server.farm.size} x {args.shard_by}"
        if server.farm is not None
        else f"threads {server.workers}"
    )
    print(
        f"serving on {server.url} "
        f"(cache: {'disabled' if cache is None else cache.root}, "
        f"{pool}, queue limit {server.queue_limit})",
        flush=True,
    )
    server.serve_forever()
    for thread in drainers:
        thread.join()
    server.drain()  # no-op if a signal already drained
    if args.trace:
        print(f"trace written to {args.trace}")
    print("drained cleanly", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit graphs to a running server; print/save the reports."""
    import json as _json

    from .sdf.io import to_json
    from .serve.client import (
        BatchItemError,
        ServeClientError,
        compile_batch_remote,
        compile_remote,
    )

    if args.memory_budget is not None and not args.vectorize:
        raise SystemExit("--memory-budget requires --vectorize")
    documents = [to_json(_resolve_graph(spec)) for spec in args.graphs]
    options = {"method": args.method, "seed": args.seed}
    if args.vectorize:
        # Only sent when requested: a plain submit keeps the exact
        # pre-vectorization request shape (and cache key).
        options["vectorize"] = True
        options["memory_budget"] = args.memory_budget
    try:
        if len(documents) == 1:
            results = [
                compile_remote(
                    documents[0], url=args.url, options=options,
                    use_cache=not args.no_cache, timeout=args.timeout,
                    retries=args.retries,
                )
            ]
        else:
            results = compile_batch_remote(
                documents, url=args.url, options=options,
                use_cache=not args.no_cache, jobs=args.jobs,
                timeout=args.timeout, retries=args.retries,
            )
    except ServeClientError as exc:
        raise SystemExit(f"submit failed: {exc}") from None
    failures = 0
    for spec, (report, status) in zip(args.graphs, results):
        if isinstance(report, BatchItemError):
            failures += 1
            print(f"{spec}: error {report.code}: {report.message}")
            print()
            continue
        for line in report.summary_lines():
            print(line)
        print(f"cache:      {status} "
              f"({1000 * report.wall_s:.1f} ms server-side)")
        print()
    if args.output:
        payload = [
            r.to_json() if not isinstance(r, BatchItemError)
            else {"status": "error", "code": r.code, "error": r.message}
            for r, _ in results
        ]
        with open(args.output, "w") as handle:
            _json.dump(
                payload[0] if len(payload) == 1 else payload,
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"reports written to {args.output}")
    if failures:
        print(f"{failures} of {len(results)} graphs failed")
        return 1
    return 0


def _cmd_resize(args: argparse.Namespace) -> int:
    """Live-resize a running server's compile farm."""
    from .serve.client import ServeClientError, resize_remote

    try:
        info = resize_remote(
            args.workers, url=args.url, timeout=args.timeout
        )
    except ServeClientError as exc:
        raise SystemExit(f"resize failed: {exc}") from None
    print(
        f"farm resized {info.get('previous')} -> {info.get('size')} "
        f"(+{info.get('added', 0)}/-{info.get('removed', 0)} workers, "
        f"{info.get('alive')}/{info.get('size')} alive)"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the on-disk artifact cache."""
    from .serve import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache root: {stats['root']}")
        print(f"entries:    {stats['entries']}")
        print(f"bytes:      {stats['bytes']}")
        for kind in sorted(stats["kinds"]):
            k = stats["kinds"][kind]
            print(
                f"{kind + ':':<12}{k['entries']} "
                f"entr{'y' if k['entries'] == 1 else 'ies'}, "
                f"{k['bytes']} bytes"
            )
        return 0
    if args.cache_command == "gc":
        max_age_s = (
            args.max_age_days * 86400.0
            if args.max_age_days is not None else None
        )
        removed = cache.gc(
            max_entries=args.max_entries, max_age_s=max_age_s
        )
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Shared-memory SDF compiler "
            "(Murthy & Bhattacharyya, DATE 2000 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("systems", help="list built-in benchmark systems")
    p.set_defaults(func=_cmd_systems)

    p = sub.add_parser("compile", help="run the full flow on a graph")
    p.add_argument("graph", help="system name or .json graph file")
    p.add_argument(
        "--method", default="rpmc", choices=["rpmc", "apgan", "natural"]
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend", default="auto", choices=["auto", "python", "native"],
        help="kernel backend for the DP/first-fit hot loops (auto: "
             "cc-compiled native kernels when a compiler is available, "
             "silently falling back to python; results are "
             "bit-identical either way)",
    )
    p.add_argument(
        "--vectorize", action="store_true",
        help="block consecutive firings into counted firing blocks "
             "(loop fission on the SDPPO schedule), re-costing every "
             "candidate through lifetime extraction and first-fit; "
             "the blocked schedule drives allocation and --check",
    )
    p.add_argument(
        "--memory-budget", type=int, default=None, metavar="WORDS",
        help="word budget for --vectorize: only blockings whose "
             "re-costed shared pool stays within WORDS are applied "
             "(default: unconstrained)",
    )
    p.add_argument("--emit-c", metavar="FILE", help="write C output")
    p.add_argument(
        "--check", action="store_true",
        help="execute the schedule against the allocation (batched "
             "numpy VM when --vectorize is active, scalar VM "
             "otherwise)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print per-stage wall time (session, topsort, DPPO, "
             "SDPPO, lifetimes, WIG, first-fit, verify)",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record hierarchical spans and work counters; write the "
             "trace to FILE (Chrome traceEvents by default, loadable "
             "in chrome://tracing or Perfetto; .jsonl gets JSON-lines)",
    )
    p.add_argument(
        "--trace-format", default="auto",
        choices=["auto", "chrome", "jsonl"],
        help="trace file format (auto: by FILE extension)",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (overrides REPRO_JOBS; 0 = all cores)",
    )
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser(
        "stats",
        help="compile under a recorder and print aggregate work counters",
        description=(
            "Run the full flow with tracing enabled and print an "
            "aggregate table: per-span call counts and wall time, then "
            "the work-counter totals (DP cells, window-cache hits, "
            "first-fit probes, interpreter firings vs symbolic "
            "shortcuts...)."
        ),
    )
    p.add_argument("graph", help="system name or .json graph file")
    p.add_argument(
        "--method", default="rpmc", choices=["rpmc", "apgan", "natural"]
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend", default="auto", choices=["auto", "python", "native"],
        help="kernel backend for the DP/first-fit hot loops "
             "(bit-identical results; native counters show up in the "
             "stats table)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="also execute the schedule in the shared-memory VM",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="also write the full trace to FILE",
    )
    p.add_argument(
        "--trace-format", default="auto",
        choices=["auto", "chrome", "jsonl"],
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (overrides REPRO_JOBS; 0 = all cores)",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (overrides REPRO_JOBS; 0 = all cores)",
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("fig25", help="regenerate figure 25")
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fig25)

    p = sub.add_parser("fig26", help="regenerate figure 26")
    p.add_argument(
        "--points", nargs="*", default=None, metavar="MxN",
        help="e.g. 3x4 6x8",
    )
    p.set_defaults(func=_cmd_fig26)

    p = sub.add_parser("fig27", help="regenerate figure 27")
    p.add_argument("--sizes", nargs="*", type=int, default=[20, 50])
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (overrides REPRO_JOBS; 0 = all cores)",
    )
    p.set_defaults(func=_cmd_fig27)

    p = sub.add_parser("satrec", help="satellite receiver comparison")
    p.set_defaults(func=_cmd_satrec)

    p = sub.add_parser("cddat", help="CD-DAT input buffering comparison")
    p.set_defaults(func=_cmd_cddat)

    p = sub.add_parser(
        "check",
        help="differential cross-layer checking harness",
        description=(
            "Generate random consistent SDF graphs, run the full "
            "compilation pipeline on each, and cross-check every layer "
            "pair (interpreter vs VM vs generated Python, delta-trace "
            "vs full-trace, predicted vs realized costs, first-fit vs "
            "verifier vs optimal, serial vs parallel runner).  Failing "
            "graphs are shrunk to minimal counterexamples.  With "
            "--inject, also runs the mutation-kill self-test: seeded "
            "faults are planted in intermediate artifacts and each must "
            "be caught downstream."
        ),
    )
    p.add_argument("--trials", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--inject", action="store_true",
        help="also run the fault-injection self-test",
    )
    p.add_argument(
        "--no-shrink", action="store_true",
        help="report failing graphs without minimizing them",
    )
    p.add_argument(
        "--families", default="acyclic,broadcast,cyclic",
        help=(
            "comma-separated trial families to cycle through "
            "(acyclic, broadcast, cyclic)"
        ),
    )
    p.add_argument(
        "--backend", default="auto", choices=["auto", "python", "native"],
        help="kernel backend the trial pipelines compile with; when "
             "native kernels are available the oracle.native group "
             "cross-checks both backends regardless",
    )
    p.add_argument(
        "--bench-out", metavar="FILE", default=None,
        help="write wall-time rows as BENCH_*.json",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record per-trial spans and oracle counters to FILE",
    )
    p.add_argument(
        "--trace-format", default="auto",
        choices=["auto", "chrome", "jsonl"],
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("dot", help="emit Graphviz DOT for a graph")
    p.add_argument("graph", help="system name or .json graph file")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP compilation service",
        description=(
            "Long-running compile server: POST /compile and /batch "
            "accept to_json graph documents, results are served from "
            "a content-addressed artifact cache when possible "
            "(bit-identical to a cold compile).  Bounded queue with "
            "429 backpressure, per-request timeouts, graceful drain "
            "on SIGTERM/SIGINT."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8177,
        help="bind port (0 picks a free port, printed on startup)",
    )
    p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="compile-farm worker processes serving /compile, "
             "sharded by graph digest (0 = no farm, compile on the "
             "in-process thread pool)",
    )
    p.add_argument(
        "--shard-by", default="digest", choices=["digest", "key"],
        help="farm routing: 'digest' keeps every variant of one graph "
             "on one worker (hot sessions), 'key' spreads per-option "
             "variants across the pool",
    )
    p.add_argument(
        "--threads", type=int, default=2, metavar="N",
        help="in-process worker threads (used for /batch, and for "
             "/compile when --workers is 0)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="max queued+running requests before 429 responses",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request compile timeout (504 when exceeded)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache (every request recompiles)",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record per-request spans; write the merged trace to "
             "FILE on drain",
    )
    p.add_argument(
        "--trace-format", default="auto",
        choices=["auto", "chrome", "jsonl"],
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access logging",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for /batch fan-out "
             "(overrides REPRO_JOBS; 0 = all cores)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit graphs to a running compile server",
        description=(
            "Resolve each GRAPH (system name or .json file), submit "
            "to a repro serve instance, and print the returned "
            "CompilationReports with their cache status."
        ),
    )
    p.add_argument(
        "graphs", nargs="+", metavar="GRAPH",
        help="system names or .json graph files",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8177",
        help="server base URL",
    )
    p.add_argument(
        "--method", default="rpmc", choices=["rpmc", "apgan", "natural"]
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-cache", action="store_true",
        help="ask the server to bypass its artifact cache",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="server-side worker processes for multi-graph batches",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="client-side request timeout",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry 429/503 responses up to N times, honoring the "
             "server's Retry-After header with capped jittered "
             "backoff (0 = fail immediately, the old behavior)",
    )
    p.add_argument(
        "--output", "-o", metavar="FILE", default=None,
        help="also save the report(s) as JSON",
    )
    p.add_argument(
        "--vectorize", action="store_true",
        help="ask the server to block consecutive firings after "
             "scheduling (vectorized execution)",
    )
    p.add_argument(
        "--memory-budget", type=int, default=None, metavar="WORDS",
        help="cap the shared pool of the vectorized schedule at WORDS "
             "(requires --vectorize)",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "resize",
        help="live-resize a running server's compile farm",
        description=(
            "POST /resize to a repro serve instance started with "
            "--workers N: grow or shrink the compile farm without a "
            "restart.  Added workers spawn supervised; removed "
            "workers drain their in-flight request and ship their "
            "counters home before shutdown.  Rendezvous hashing "
            "moves only ~1/N of the key space."
        ),
    )
    p.add_argument(
        "workers", type=int, metavar="N",
        help="new farm size (worker processes)",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8177",
        help="server base URL",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="client-side request timeout",
    )
    p.set_defaults(func=_cmd_resize)

    p = sub.add_parser(
        "cache",
        help="inspect or maintain the artifact cache",
        description=(
            "Operate on the content-addressed compilation cache used "
            "by repro serve: show entry counts and sizes, expire old "
            "entries, or wipe it."
        ),
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    c = cache_sub.add_parser("stats", help="entry count and total bytes")
    c.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    c.set_defaults(func=_cmd_cache)
    c = cache_sub.add_parser("gc", help="expire cache entries")
    c.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    c.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep only the N most recently written entries",
    )
    c.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="remove entries older than DAYS days",
    )
    c.set_defaults(func=_cmd_cache)
    c = cache_sub.add_parser("clear", help="remove every cache entry")
    c.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    c.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "report", help="regenerate the full evaluation as Markdown"
    )
    p.add_argument("--output", "-o", metavar="FILE", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
