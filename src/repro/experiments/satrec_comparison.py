"""Section 11 comparisons on the satellite receiver.

Three implementation strategies on the same graph:

* the paper's nested static SAS with lifetime-shared buffers
  (non-shared total 1542 / shared 991 in the paper);
* Ritz-style sharing restricted to *flat* SASs (section 11.1.2; the
  paper reports "more than 2000 units", i.e. >100% worse than 991);
* the Goddard–Jeffay-style dynamic (demand-driven) schedule
  (section 11.1.3; 1599 non-shared / ~1101 shared in the paper),
  which trades a shorter buffer for an unstorable schedule and ~2x
  runtime overhead.

Shape targets: flat-shared > nested-shared; dynamic non-shared <
nested non-shared; dynamic shared > nested shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.satellite import satellite_receiver
from ..baselines.dynamic_scheduler import demand_driven_schedule
from ..baselines.flat_sharing import flat_shared_implementation
from ..sdf.graph import SDFGraph
from ..scheduling.pipeline import implement_best

__all__ = ["SatrecComparison", "run_satrec_comparison", "format_satrec"]


@dataclass
class SatrecComparison:
    """All strategy totals, in words."""

    nested_nonshared: int
    nested_shared: int
    flat_nonshared: int
    flat_shared: int
    dynamic_nonshared: int
    dynamic_shared: int
    dynamic_schedule_length: int
    nested_schedule: str


def run_satrec_comparison(
    graph: Optional[SDFGraph] = None, seed: int = 0
) -> SatrecComparison:
    """Run the three strategies on ``satrec`` (or any given graph)."""
    g = graph if graph is not None else satellite_receiver()
    nested = implement_best(g, seed=seed)
    winner = (
        nested.rpmc
        if nested.rpmc.best_shared_total <= nested.apgan.best_shared_total
        else nested.apgan
    )
    flat = flat_shared_implementation(g, order=winner.order)
    dynamic = demand_driven_schedule(g)
    return SatrecComparison(
        nested_nonshared=nested.best_nonshared,
        nested_shared=nested.best_shared,
        flat_nonshared=flat.nonshared_total,
        flat_shared=flat.shared_total,
        dynamic_nonshared=dynamic.nonshared_total,
        dynamic_shared=dynamic.shared_total,
        dynamic_schedule_length=dynamic.schedule_length,
        nested_schedule=str(winner.sdppo_schedule),
    )


def format_satrec(c: SatrecComparison) -> str:
    lines = [
        "Satellite receiver implementation comparison (words):",
        f"{'strategy':>28} {'non-shared':>11} {'shared':>8}",
        "-" * 50,
        f"{'nested SAS (this paper)':>28} {c.nested_nonshared:>11} "
        f"{c.nested_shared:>8}",
        f"{'flat SAS (Ritz-style)':>28} {c.flat_nonshared:>11} "
        f"{c.flat_shared:>8}",
        f"{'dynamic (demand-driven)':>28} {c.dynamic_nonshared:>11} "
        f"{c.dynamic_shared:>8}",
        "-" * 50,
        f"dynamic schedule length: {c.dynamic_schedule_length} firings "
        f"(vs a stored looped schedule)",
    ]
    return "\n".join(lines)
