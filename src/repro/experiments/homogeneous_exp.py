"""Figure 26 / section 10.2: homogeneous graphs where sharing shines.

For the M-chains-of-N graph, the paper states that "running the
complete suite of techniques on this graph for any M and N results in
an allocation of M + 1 units", against ``M(N-1) + 2M`` for a
non-shared implementation.  The experiment sweeps M and N, reporting
the suite's allocation, the allocation with the depth-first
chain-by-chain order (which provably achieves the bound), and the
non-shared requirement; ``token_size`` scales the savings the way the
paper's closing remark about vector tokens describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..apps.homogeneous import (
    depth_first_order,
    homogeneous_graph,
    nonshared_requirement,
    shared_lower_bound,
)
from ..scheduling.pipeline import implement, implement_best

__all__ = ["HomogeneousResult", "run_homogeneous_experiment", "format_fig26"]


@dataclass
class HomogeneousResult:
    """One (M, N) point of the figure 26 sweep."""

    m: int
    n: int
    token_size: int
    nonshared: int
    suite_allocation: int
    depth_first_allocation: int
    lower_bound: int


def run_homogeneous_experiment(
    points: Sequence[Tuple[int, int]] = ((2, 3), (3, 4), (4, 6), (6, 8), (8, 10)),
    token_size: int = 1,
    seed: int = 0,
) -> List[HomogeneousResult]:
    """Sweep (M, N) points of the figure 26 family."""
    results = []
    for m, n in points:
        graph = homogeneous_graph(m, n, token_size=token_size)
        suite = implement_best(graph, seed=seed, verify=False)
        ordered = implement(
            graph, order=depth_first_order(graph), verify=True
        )
        results.append(
            HomogeneousResult(
                m=m,
                n=n,
                token_size=token_size,
                nonshared=nonshared_requirement(m, n, token_size),
                suite_allocation=suite.best_shared,
                depth_first_allocation=ordered.best_shared_total,
                lower_bound=shared_lower_bound(m, n, token_size),
            )
        )
    return results


def format_fig26(results: Sequence[HomogeneousResult]) -> str:
    header = (
        f"{'M':>3} {'N':>3} {'non-shared':>11} {'suite':>7} "
        f"{'depth-first':>12} {'bound M+1':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.m:>3} {r.n:>3} {r.nonshared:>11} {r.suite_allocation:>7} "
            f"{r.depth_first_allocation:>12} {r.lower_bound:>10}"
        )
    return "\n".join(lines)
