"""Ablation studies of the design choices DESIGN.md calls out.

The paper makes several explicit design decisions; each has a
measurable alternative:

* **Factoring heuristic** (section 5.1): factor a merge iff it has
  internal edges — versus always factoring or never factoring.
* **Precise chain DP vs EQ 5** (section 6): the triple DP exists
  because EQ 5 over-approximates on chains (figure 6: 140 vs 127).
* **First-fit ordering** (section 9.1): duration versus start-time
  ordering (the reference study found duration better on average).
* **Periodicity tracking** (section 8.4): exploiting periodic gaps
  versus treating every lifetime as its solid envelope
  (``occurrence_cap=0`` forces the solid fallback).
* **Buffer merging** (section 12 extension): CBP-zero merging on top
  of the base flow.

Each function measures one axis over a workload set and returns
comparable totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..sdf.graph import SDFGraph
from ..sdf.random_graphs import random_chain_graph, random_sdf_graph
from ..sdf.simulate import max_live_tokens
from ..lifetimes.intervals import extract_lifetimes
from ..allocation.first_fit import ffdur, ffstart
from ..allocation.intersection_graph import build_intersection_graph
from ..scheduling.chain_sdppo import chain_sdppo
from ..scheduling.pipeline import implement
from ..scheduling.rpmc import rpmc
from ..scheduling.sdppo import sdppo
from ..extensions.buffer_merging import merged_allocation

__all__ = [
    "AblationRow",
    "ablate_factoring",
    "ablate_chain_dp",
    "ablate_orderings",
    "ablate_periodicity",
    "ablate_merging",
    "format_ablation",
]


@dataclass
class AblationRow:
    """One workload's totals under each variant, in words."""

    workload: str
    totals: Dict[str, int]

    def winner(self) -> str:
        return min(self.totals, key=self.totals.get)


def _graphs(
    seeds: Sequence[int], num_actors: int
) -> List[SDFGraph]:
    return [random_sdf_graph(num_actors, seed=s) for s in seeds]


def ablate_factoring(
    seeds: Sequence[int] = range(10), num_actors: int = 12
) -> List[AblationRow]:
    """Shared-model ground truth under each factoring policy."""
    rows = []
    for graph in _graphs(seeds, num_actors):
        order = rpmc(graph).order
        totals = {}
        for policy in ("auto", "always", "never"):
            schedule = sdppo(graph, order, factoring=policy).schedule
            totals[policy] = max_live_tokens(graph, schedule)
        rows.append(AblationRow(workload=graph.name, totals=totals))
    return rows


def ablate_chain_dp(
    seeds: Sequence[int] = range(10), num_actors: int = 8
) -> List[AblationRow]:
    """Precise triple DP versus the EQ 5 heuristic on chains."""
    rows = []
    for seed in seeds:
        graph = random_chain_graph(num_actors, seed=seed)
        order = graph.chain_order()
        eq5 = sdppo(graph, order).schedule
        precise = chain_sdppo(graph).schedule
        rows.append(
            AblationRow(
                workload=graph.name,
                totals={
                    "eq5": max_live_tokens(graph, eq5),
                    "triple_dp": max_live_tokens(graph, precise),
                },
            )
        )
    return rows


def ablate_orderings(
    seeds: Sequence[int] = range(10), num_actors: int = 15
) -> List[AblationRow]:
    """ffdur versus ffstart on identical lifetime instances."""
    rows = []
    for graph in _graphs(seeds, num_actors):
        result = implement(graph, "rpmc", verify=False)
        rows.append(
            AblationRow(
                workload=graph.name,
                totals={
                    "ffdur": result.ffdur_total,
                    "ffstart": result.ffstart_total,
                },
            )
        )
    return rows


def ablate_periodicity(
    seeds: Sequence[int] = range(6), num_actors: int = 12
) -> List[AblationRow]:
    """Periodic-aware intersection tests versus solid envelopes.

    Random graphs rarely interleave lifetimes; the filterbanks and the
    modem (whose nested loops create the figure 17 pattern) are where
    periodicity pays, so they join the workload set.
    """
    from ..apps import table1_graph

    graphs = _graphs(seeds, num_actors) + [
        table1_graph(n)
        for n in ("qmf23_2d", "qmf12_3d", "16qamModem", "phasedArray")
    ]
    rows = []
    for graph in graphs:
        result = implement(graph, "rpmc", verify=False)
        buffers = result.lifetimes.as_list()
        solid = [b.solid() for b in buffers]
        periodic_total = min(
            ffdur(buffers).total, ffstart(buffers).total
        )
        solid_total = min(ffdur(solid).total, ffstart(solid).total)
        rows.append(
            AblationRow(
                workload=graph.name,
                totals={
                    "periodic": periodic_total,
                    "solid": solid_total,
                },
            )
        )
    return rows


def ablate_merging(
    systems: Optional[Sequence[str]] = None,
) -> List[AblationRow]:
    """Base flow versus base flow plus CBP-zero buffer merging."""
    from ..apps import table1_graph

    names = list(systems) if systems is not None else [
        "16qamModem", "blockVox", "overAddFFT", "satrec",
    ]
    rows = []
    for name in names:
        graph = table1_graph(name)
        result = implement(graph, "rpmc", verify=False)
        merged, applied = merged_allocation(graph, result.lifetimes)
        rows.append(
            AblationRow(
                workload=name,
                totals={
                    "base": result.allocation.total,
                    "merged": min(merged.total, result.allocation.total),
                },
            )
        )
    return rows


def format_ablation(title: str, rows: Sequence[AblationRow]) -> str:
    if not rows:
        return f"{title}: (no rows)"
    variants = list(rows[0].totals)
    header = f"{'workload':>14} " + " ".join(f"{v:>10}" for v in variants)
    lines = [title, header, "-" * len(header)]
    wins = {v: 0 for v in variants}
    for row in rows:
        lines.append(
            f"{row.workload:>14} "
            + " ".join(f"{row.totals[v]:>10}" for v in variants)
        )
        wins[row.winner()] += 1
    lines.append(
        "wins: " + ", ".join(f"{v}={wins[v]}" for v in variants)
    )
    return "\n".join(lines)
