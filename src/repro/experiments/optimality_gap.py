"""Optimality gap of RPMC and APGAN on small graphs.

The paper justifies its heuristics by NP-completeness; this experiment
quantifies what the heuristics give up where the optimum is computable:
for small random graphs, compare the RPMC- and APGAN-based results
against the exact minimum over *all* topological sorts
(:mod:`repro.scheduling.exhaustive`), under both buffer models.

A gap of 0% means the heuristic's topological sort was optimal for that
graph.  On the paper's narrative this should usually be small — the
random-search experiment of section 10.1 already shows the heuristics
are hard to beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..sdf.random_graphs import random_sdf_graph
from ..scheduling.dppo import dppo
from ..scheduling.exhaustive import optimal_sas
from ..scheduling.pipeline import implement

__all__ = ["GapRow", "run_optimality_gap", "format_gap"]


@dataclass
class GapRow:
    """One graph's heuristic-vs-optimal comparison (one objective)."""

    workload: str
    objective: str
    optimal: int
    rpmc: int
    apgan: int
    sorts: int

    @property
    def rpmc_gap_pct(self) -> float:
        return 100.0 * (self.rpmc - self.optimal) / self.optimal if self.optimal else 0.0

    @property
    def apgan_gap_pct(self) -> float:
        return 100.0 * (self.apgan - self.optimal) / self.optimal if self.optimal else 0.0


def run_optimality_gap(
    seeds: Sequence[int] = range(10),
    num_actors: int = 7,
    objective: str = "nonshared",
    max_sorts: int = 20_000,
) -> List[GapRow]:
    """Measure heuristic gaps on small random graphs.

    Graphs whose topological-sort count exceeds ``max_sorts`` are
    skipped (the exact search would be too slow), so the returned list
    can be shorter than ``seeds``.
    """
    rows: List[GapRow] = []
    for seed in seeds:
        graph = random_sdf_graph(num_actors, seed=seed)
        try:
            exact = optimal_sas(graph, objective, max_sorts=max_sorts)
        except Exception:
            continue
        if objective == "nonshared":
            rpmc_cost = implement(graph, "rpmc", verify=False).dppo_cost
            apgan_cost = implement(graph, "apgan", verify=False).dppo_cost
        else:
            rpmc_cost = implement(graph, "rpmc", verify=False).best_shared_total
            apgan_cost = implement(graph, "apgan", verify=False).best_shared_total
        rows.append(
            GapRow(
                workload=f"{graph.name}#{seed}",
                objective=objective,
                optimal=exact.cost,
                rpmc=rpmc_cost,
                apgan=apgan_cost,
                sorts=exact.sorts_examined,
            )
        )
    return rows


def format_gap(rows: Sequence[GapRow]) -> str:
    if not rows:
        return "(no graphs small enough for exact search)"
    header = (
        f"{'workload':>14} {'sorts':>6} {'optimal':>8} {'rpmc':>6} "
        f"{'apgan':>6} {'rpmc gap':>9} {'apgan gap':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.workload:>14} {r.sorts:>6} {r.optimal:>8} {r.rpmc:>6} "
            f"{r.apgan:>6} {r.rpmc_gap_pct:>8.1f}% {r.apgan_gap_pct:>9.1f}%"
        )
    mean_r = sum(r.rpmc_gap_pct for r in rows) / len(rows)
    mean_a = sum(r.apgan_gap_pct for r in rows) / len(rows)
    optimal_r = sum(1 for r in rows if r.rpmc == r.optimal)
    optimal_a = sum(1 for r in rows if r.apgan == r.optimal)
    lines.append(
        f"mean gaps: rpmc {mean_r:.1f}%, apgan {mean_a:.1f}%; optimal on "
        f"{optimal_r}/{len(rows)} (rpmc), {optimal_a}/{len(rows)} (apgan)"
    )
    return "\n".join(lines)
