"""Experiment harnesses: one per evaluation table/figure of the paper."""

from .table1 import PAPER_REFERENCE, Table1Row, format_table1, run_table1
from .fig25 import format_fig25, improvement_series, run_fig25
from .random_graphs import (
    RandomGraphStats,
    format_fig27,
    run_random_graph_experiment,
)
from .homogeneous_exp import (
    HomogeneousResult,
    format_fig26,
    run_homogeneous_experiment,
)
from .satrec_comparison import (
    SatrecComparison,
    format_satrec,
    run_satrec_comparison,
)
from .cddat_io import InputBufferingResult, input_buffering, run_cddat_io
from .optimality_gap import GapRow, format_gap, run_optimality_gap
from .ablations import (
    AblationRow,
    ablate_chain_dp,
    ablate_factoring,
    ablate_merging,
    ablate_orderings,
    ablate_periodicity,
    format_ablation,
)

__all__ = [
    "GapRow",
    "run_optimality_gap",
    "format_gap",
    "AblationRow",
    "ablate_factoring",
    "ablate_chain_dp",
    "ablate_orderings",
    "ablate_periodicity",
    "ablate_merging",
    "format_ablation",
    "Table1Row",
    "run_table1",
    "format_table1",
    "PAPER_REFERENCE",
    "improvement_series",
    "run_fig25",
    "format_fig25",
    "RandomGraphStats",
    "run_random_graph_experiment",
    "format_fig27",
    "HomogeneousResult",
    "run_homogeneous_experiment",
    "format_fig26",
    "SatrecComparison",
    "run_satrec_comparison",
    "format_satrec",
    "InputBufferingResult",
    "input_buffering",
    "run_cddat_io",
]
