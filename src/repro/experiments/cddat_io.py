"""Section 11.1.3: input buffering of nested versus flat SAS (CD-to-DAT).

A real-time source delivers one sample per sample period; the schedule
consumes samples only when the source actor fires.  A flat SAS fires the
source's whole period of invocations back to back, then ignores the
input for the rest of the period — so samples pile up.  A nested SAS
spreads the source's firings across the period, shrinking the input
backlog: the paper reports ~11 tokens for the buffer-optimal nested SAS
versus 65 for the flat SAS on the CD-DAT example (period 147 sample
periods).

The experiment assigns each actor an execution-time cost (the paper
assumed "typical execution time values ... for a typical DSP in 1994";
we default to unit cost per firing — the *ratio* between nested and
flat is what matters), simulates sample arrivals at the steady-state
rate, and measures the maximum backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from ..apps.ptolemy_demos import cd_to_dat
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import LoopedSchedule, flat_single_appearance_schedule
from ..scheduling.dppo import dppo

__all__ = ["InputBufferingResult", "input_buffering", "run_cddat_io"]


@dataclass
class InputBufferingResult:
    """Input-buffering comparison between flat and nested SAS."""

    source: str
    period_samples: int
    flat_backlog: int
    nested_backlog: int
    flat_schedule: str
    nested_schedule: str


def input_buffering(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    source: str,
    execution_times: Optional[Dict[str, int]] = None,
) -> int:
    """Required input buffer (in samples) of ``schedule`` at steady state.

    The source consumes one arriving sample per firing.  One schedule
    period takes ``total_cycles`` and must process ``q(source)``
    samples, so the steady-state sample period is
    ``total_cycles / q(source)`` cycles.

    The schedule cannot consume a sample before it arrives, so its
    start is phase-shifted until consumption never overtakes arrivals;
    the required buffer is then the peak of
    ``arrivals(t) - consumptions(t)``.  With linear arrivals that peak
    equals ``max_t f(t) - min_t f(t)`` for the unshifted difference
    ``f(t) = arrivals(t) - consumptions(t)`` sampled at firing
    boundaries — a flat SAS (source bursts once per period) has a deep
    trough and a high crest, a nested SAS keeps ``f`` near zero.
    """
    q = repetitions_vector(graph)
    times = execution_times or {}
    firings = schedule.firing_list()
    total_cycles = sum(
        times.get(a, graph.actor(a).execution_time) for a in firings
    )
    samples_per_period = q[source]
    sample_period = Fraction(total_cycles, samples_per_period)

    f_max = 0
    f_min = 0
    t = 0
    consumed = 0
    for actor in firings:
        arrived = int(Fraction(t) / sample_period)
        f = arrived - consumed
        if f > f_max:
            f_max = f
        if f < f_min:
            f_min = f
        if actor == source:
            consumed += 1
        t += times.get(actor, graph.actor(actor).execution_time)
    # End of period: all samples arrived and consumed.
    f_end = samples_per_period - consumed
    f_max = max(f_max, f_end)
    return f_max - f_min


def run_cddat_io(
    execution_times: Optional[Dict[str, int]] = None, source: str = "A"
) -> InputBufferingResult:
    """Reproduce the CD-DAT input-buffering comparison."""
    graph = cd_to_dat()
    q = repetitions_vector(graph)
    order = graph.topological_order()
    flat = flat_single_appearance_schedule(order, q)
    nested = dppo(graph, order).schedule
    return InputBufferingResult(
        source=source,
        period_samples=q[source],
        flat_backlog=input_buffering(graph, flat, source, execution_times),
        nested_backlog=input_buffering(graph, nested, source, execution_times),
        flat_schedule=str(flat),
        nested_schedule=str(nested),
    )
