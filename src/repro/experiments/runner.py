"""Parallel experiment runner: deterministic fan-out over worker processes.

The paper's evaluation is embarrassingly parallel — 400 random graphs
in the figure 27 sweep, hundreds of independent trials per random
search — but every statistic must stay a pure function of (inputs,
seed).  This module provides the one primitive both drivers use:

* :func:`parallel_map` — an order-preserving ``map`` over a
  ``ProcessPoolExecutor``, with deterministic chunking and a serial
  fallback.  Tasks carry their own seeds (the caller derives them
  before fanning out), results come back in task order, and all
  aggregation happens in the parent — so the parallel and serial paths
  produce bit-identical statistics.

* :class:`TimingReport` — a machine-readable wall-time report
  (``{"bench": ..., "wall_s": ..., "meta": {...}}`` rows) that
  ``make bench`` serializes to ``BENCH_PR1.json``, seeding the perf
  trajectory that later PRs diff against.

Parallelism is controlled by the ``REPRO_JOBS`` environment variable
(or an explicit ``jobs=`` argument): unset or ``1`` runs serially in
the calling process, ``N`` uses N worker processes, and ``0`` uses all
available cores.  When a pool cannot be created at all (restricted
environments without fork/spawn), the runner degrades to the serial
path instead of failing.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["effective_jobs", "parallel_map", "TimingReport"]


def effective_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: explicit argument, then ``REPRO_JOBS``.

    ``0`` (either form) means "all cores"; anything unset means serial.
    Negative counts are rejected the same way non-integer values are —
    silently clamping them to 1 would mask a configuration error.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs < 0:
        raise ValueError(f"job count must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    recorder: Optional[Any] = None,
    task_label: str = "task",
) -> List[Any]:
    """Map ``fn`` over ``tasks``, preserving order, optionally in parallel.

    ``fn`` and the tasks must be picklable (module-level function, plain
    data).  ``initializer`` runs once per worker (and once in-process on
    the serial path) — use it to build per-worker state such as a
    compilation session instead of shipping it with every task.

    When an *enabled* ``recorder`` is given, each task runs under a
    fresh per-task :class:`repro.obs.TraceRecorder` (activated so task
    bodies can fetch it via ``repro.obs.current()``) and its serialized
    span tree rides back with the result; the parent grafts the trees
    into ``recorder`` in task order.  The serial path uses the same
    wrapper, so serial and parallel runs record identical tree shapes
    and counter totals, differing only in timing fields.

    The serial path runs when ``effective_jobs`` resolves to 1, when
    there are fewer than two tasks, or when the process pool cannot be
    created; exceptions raised by ``fn`` itself always propagate.
    """
    tasks = list(tasks)
    traced = recorder is not None and getattr(recorder, "enabled", False)
    call = partial(_traced_call, fn, task_label) if traced else fn
    n_jobs = effective_jobs(jobs)
    if n_jobs <= 1 or len(tasks) <= 1:
        return _collect(recorder, traced, _serial_map(call, tasks, initializer, initargs))
    try:
        from concurrent.futures import ProcessPoolExecutor
        executor = ProcessPoolExecutor(
            max_workers=min(n_jobs, len(tasks)),
            initializer=initializer,
            initargs=initargs,
        )
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return _collect(recorder, traced, _serial_map(call, tasks, initializer, initargs))
    try:
        with executor:
            if chunksize is None:
                chunksize = max(1, len(tasks) // (4 * n_jobs))
            results = list(executor.map(call, tasks, chunksize=chunksize))
    except _pool_failures():
        # The pool died (fork refused, worker killed) without a result;
        # the work itself is side-effect free, so redo it serially.
        results = _serial_map(call, tasks, initializer, initargs)
    return _collect(recorder, traced, results)


def _serial_map(fn, tasks, initializer, initargs) -> List[Any]:
    if initializer is not None:
        initializer(*initargs)
    return [fn(task) for task in tasks]


def _traced_call(fn: Callable[[Any], Any], label: str, task: Any) -> Tuple[Any, Dict[str, Any]]:
    """Run one task under a fresh, ambient TraceRecorder (picklable)."""
    from repro import obs

    rec = obs.TraceRecorder()
    with obs.activate(rec):
        with rec.span(label, fn=getattr(fn, "__name__", repr(fn))):
            result = fn(task)
    return result, rec.serialize()


def _collect(recorder, traced: bool, results: List[Any]) -> List[Any]:
    """Merge per-task recordings (task order) and strip them off."""
    if not traced:
        return results
    plain = []
    for result, serialized in results:
        recorder.merge_serialized(serialized)
        plain.append(result)
    return plain


def _pool_failures() -> Tuple[type, ...]:
    from concurrent.futures.process import BrokenProcessPool

    return (BrokenProcessPool, OSError, PermissionError)


@dataclass
class TimingReport:
    """Accumulates named wall-time measurements; serializes to JSON rows.

    Each row is ``{"bench": name, "wall_s": seconds, "meta": {...}}`` —
    the schema of the repo-root ``BENCH_*.json`` perf-trajectory files.
    """

    rows: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, bench: str, wall_s: float, **meta: Any) -> Dict[str, Any]:
        row = {"bench": bench, "wall_s": round(wall_s, 4), "meta": dict(meta)}
        self.rows.append(row)
        return row

    @contextmanager
    def stage(self, bench: str, **meta: Any) -> Iterator[Dict[str, Any]]:
        """Time a ``with`` block and record it as one row.

        The yielded dict is the row's ``meta``; mutate it inside the
        block to attach results (counts, totals) to the measurement.

        The row is recorded even when the block raises — the partial
        measurement survives with ``meta["error"] = repr(exc)`` and the
        exception propagates.
        """
        row_meta = dict(meta)
        start = time.perf_counter()
        try:
            yield row_meta
        except BaseException as exc:
            row_meta["error"] = repr(exc)
            raise
        finally:
            wall = time.perf_counter() - start
            self.record(bench, wall, **row_meta)

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.rows, fh, indent=2)
            fh.write("\n")
