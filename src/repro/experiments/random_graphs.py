"""Figure 27: experiments on randomly generated SDF graphs.

The paper evaluates 100 random graphs at each of 20, 50, 100 and 150
nodes and reports six charts:

(a) average % by which the best shared implementation beats the best
    non-shared one — drops from ~14% at 20 nodes to ~5% at 100–150;
(b) average % by which the allocation exceeds the optimistic MCW
    estimate (~1.5–4%);
(c) average % by which the pessimistic MCW estimate exceeds the
    allocation (~1.5–5%);
(d) average % difference between the best allocation and the best
    SDPPO estimate (<0.5%);
(e) average % by which RPMC-based allocations beat APGAN-based ones;
(f) fraction of graphs where RPMC beats APGAN (52–60%).

:func:`run_random_graph_experiment` reproduces all six series; graph
counts are parameters so the benchmark can trade time for precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sdf.random_graphs import random_sdf_graph
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..scheduling.pipeline import implement_best
from .runner import parallel_map

__all__ = [
    "RandomGraphStats",
    "run_random_graph_experiment",
    "format_fig27",
    "density_sweep",
]


@dataclass
class RandomGraphStats:
    """Aggregated figure 27 statistics for one graph size."""

    num_nodes: int
    num_graphs: int
    #: (a) mean % improvement of best shared over best non-shared.
    improvement_pct: float
    #: (b) mean % by which allocation exceeds mco (allocation/mco - 1).
    alloc_over_mco_pct: float
    #: (c) mean % by which mcp exceeds allocation (mcp/allocation - 1).
    mcp_over_alloc_pct: float
    #: (d) mean |allocation - sdppo estimate| as % of allocation.
    alloc_vs_sdppo_pct: float
    #: (e) mean % by which the RPMC allocation beats APGAN's.
    rpmc_over_apgan_pct: float
    #: (f) fraction of graphs where RPMC's allocation is strictly better.
    rpmc_wins_fraction: float


def _fig27_task(task: Tuple[int, int, int]) -> Tuple[int, ...]:
    """Compile one random graph; return the raw Table-style integers.

    Runs in a worker process (or inline on the serial path), so it only
    receives plain data and returns plain data: ``(nonshared, shared,
    winner_mco, winner_mcp, winner_alloc, best_sdppo, r_total,
    a_total)``.  All percentage math stays in the parent so the parallel
    and serial paths aggregate bit-identically.
    """
    size, graph_seed, occurrence_cap = task
    graph = random_sdf_graph(size, seed=graph_seed)
    best = implement_best(graph, occurrence_cap=occurrence_cap, verify=False)
    winner = (
        best.rpmc
        if best.rpmc.best_shared_total <= best.apgan.best_shared_total
        else best.apgan
    )
    return (
        best.best_nonshared,
        best.best_shared,
        winner.mco,
        winner.mcp,
        winner.best_shared_total,
        min(best.rpmc.sdppo_cost, best.apgan.sdppo_cost),
        best.rpmc.best_shared_total,
        best.apgan.best_shared_total,
    )


def run_random_graph_experiment(
    sizes: Sequence[int] = (20, 50, 100, 150),
    graphs_per_size: int = 100,
    seed: int = 0,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    jobs: Optional[int] = None,
) -> List[RandomGraphStats]:
    """Reproduce the figure 27 sweep.

    Deterministic for a given ``seed``: graph ``g`` of size ``s`` uses
    seed ``seed * 1_000_003 + s * 1_000 + g``.  ``jobs`` (default: the
    ``REPRO_JOBS`` environment variable, else serial) distributes the
    per-graph compilations over worker processes; the aggregation order
    is fixed by the task list, so the statistics are identical on every
    path.
    """
    tasks = [
        (size, seed * 1_000_003 + size * 1_000 + g_index, occurrence_cap)
        for size in sizes
        for g_index in range(graphs_per_size)
    ]
    raw = parallel_map(_fig27_task, tasks, jobs=jobs)

    results = []
    for s_index, size in enumerate(sizes):
        improvements: List[float] = []
        over_mco: List[float] = []
        mcp_over: List[float] = []
        vs_sdppo: List[float] = []
        rpmc_margin: List[float] = []
        rpmc_wins = 0
        decided = 0
        start = s_index * graphs_per_size
        for row in raw[start : start + graphs_per_size]:
            (
                nonshared,
                shared,
                mco,
                mcp,
                alloc,
                best_sdppo,
                r_total,
                a_total,
            ) = row
            if nonshared > 0:
                improvements.append(100.0 * (nonshared - shared) / nonshared)
            if mco > 0:
                over_mco.append(100.0 * (alloc - mco) / mco)
            if alloc > 0:
                mcp_over.append(100.0 * (mcp - alloc) / alloc)
                vs_sdppo.append(100.0 * abs(alloc - best_sdppo) / alloc)
            if a_total > 0:
                rpmc_margin.append(100.0 * (a_total - r_total) / a_total)
            if r_total != a_total:
                decided += 1
                if r_total < a_total:
                    rpmc_wins += 1
        results.append(
            RandomGraphStats(
                num_nodes=size,
                num_graphs=graphs_per_size,
                improvement_pct=_mean(improvements),
                alloc_over_mco_pct=_mean(over_mco),
                mcp_over_alloc_pct=_mean(mcp_over),
                alloc_vs_sdppo_pct=_mean(vs_sdppo),
                rpmc_over_apgan_pct=_mean(rpmc_margin),
                rpmc_wins_fraction=(rpmc_wins / decided) if decided else 0.5,
            )
        )
    return results


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def density_sweep(
    densities: Sequence[float] = (0.3, 1.0, 2.0),
    num_actors: int = 30,
    graphs_per_density: int = 8,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Improvement as a function of extra-edge density.

    The paper's random graphs show far smaller sharing gains than its
    practical systems (figure 27(a): 5–14%, falling with size), and it
    leaves the cause open ("either random graphs do not ... show the
    potential improvement ... or the random graphs we generate do not
    correspond ... to practical systems").  Our generator behaves like
    the practical suite; this sweep quantifies the one generator knob
    that pushes toward the paper's regime — denser graphs keep more
    buffers simultaneously live and share worse.
    """
    results = []
    for density in densities:
        values: List[float] = []
        for g_index in range(graphs_per_density):
            graph = random_sdf_graph(
                num_actors,
                seed=seed * 7919 + g_index,
                extra_edge_fraction=density,
            )
            best = implement_best(graph, verify=False)
            if best.best_nonshared:
                values.append(
                    100.0
                    * (best.best_nonshared - best.best_shared)
                    / best.best_nonshared
                )
        results.append(
            {
                "density": density,
                "improvement_pct": _mean(values),
                "graphs": float(graphs_per_density),
            }
        )
    return results


def format_fig27(stats: Sequence[RandomGraphStats]) -> str:
    """Render the six chart series as a table keyed by graph size."""
    header = (
        f"{'nodes':>6} {'(a) impr%':>10} {'(b) >mco%':>10} "
        f"{'(c) mcp>%':>10} {'(d) vs sdppo%':>13} {'(e) R>A%':>9} "
        f"{'(f) R wins':>10}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.num_nodes:>6} {s.improvement_pct:>10.2f} "
            f"{s.alloc_over_mco_pct:>10.2f} {s.mcp_over_alloc_pct:>10.2f} "
            f"{s.alloc_vs_sdppo_pct:>13.2f} {s.rpmc_over_apgan_pct:>9.2f} "
            f"{s.rpmc_wins_fraction:>10.2f}"
        )
    return "\n".join(lines)
