"""Table 1: overall performance on practical examples.

For every practical system, runs the full flow of figure 21 for both
RPMC- and APGAN-generated topological sorts and reports the paper's
column set:

    dppo(R), sdppo(R), mco(R), mcp(R), ffdur(R), ffstart(R), bmlb,
    dppo(A), sdppo(A), mco(A), mcp(A), ffdur(A), ffstart(A), % impr

The improvement column is computed exactly as in the paper:

    (MIN(dppo(R), dppo(A)) - MIN(ffdur(R), ffstart(R), ffdur(A),
     ffstart(A))) / MIN(dppo(R), dppo(A)) * 100

``PAPER_REFERENCE`` records the values readable in the source text
(Table 1 is truncated after two rows; satrec's totals appear in
section 11.1.3).  Absolute values for reconstructed graphs differ —
EXPERIMENTS.md discusses per-system agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import TABLE1_SYSTEMS, table1_graph
from ..scheduling.pipeline import BestResult, implement_best
from .runner import parallel_map

__all__ = ["Table1Row", "run_table1", "format_table1", "PAPER_REFERENCE"]

#: Paper values readable in the source text: system -> column -> value.
PAPER_REFERENCE: Dict[str, Dict[str, int]] = {
    "nqmf23_4d": {
        "dppo_r": 209, "sdppo_r": 132, "mco_r": 120, "mcp_r": 139,
        "ffdur_r": 132, "ffstart_r": 133, "bmlb": 75,
        "dppo_a": 314, "sdppo_a": 242, "mco_a": 237, "mcp_a": 258,
    },
    "qmf23_2d": {
        "dppo_r": 60, "sdppo_r": 24, "mco_r": 21, "mcp_r": 30,
        "ffdur_r": 22, "ffstart_r": 22, "bmlb": 50,
        "dppo_a": 62, "sdppo_a": 35, "mco_a": 26, "mcp_a": 28,
    },
    # Section 11.1.3: satrec non-shared SAS = 1542, shared = 991.
    "satrec": {"dppo_best": 1542, "shared_best": 991},
}


@dataclass
class Table1Row:
    """One benchmark row with every Table 1 column."""

    system: str
    dppo_r: int
    sdppo_r: int
    mco_r: int
    mcp_r: int
    ffdur_r: int
    ffstart_r: int
    bmlb: int
    dppo_a: int
    sdppo_a: int
    mco_a: int
    mcp_a: int
    ffdur_a: int
    ffstart_a: int
    improvement: float

    @staticmethod
    def from_result(system: str, result: BestResult) -> "Table1Row":
        return Table1Row(
            system=system,
            dppo_r=result.rpmc.dppo_cost,
            sdppo_r=result.rpmc.sdppo_cost,
            mco_r=result.rpmc.mco,
            mcp_r=result.rpmc.mcp,
            ffdur_r=result.rpmc.ffdur_total,
            ffstart_r=result.rpmc.ffstart_total,
            bmlb=result.rpmc.bmlb,
            dppo_a=result.apgan.dppo_cost,
            sdppo_a=result.apgan.sdppo_cost,
            mco_a=result.apgan.mco,
            mcp_a=result.apgan.mcp,
            ffdur_a=result.apgan.ffdur_total,
            ffstart_a=result.apgan.ffstart_total,
            improvement=result.improvement_percent,
        )

    @property
    def best_nonshared(self) -> int:
        return min(self.dppo_r, self.dppo_a)

    @property
    def best_shared(self) -> int:
        return min(self.ffdur_r, self.ffstart_r, self.ffdur_a, self.ffstart_a)


def _table1_task(task: Tuple[str, int, bool]) -> Table1Row:
    """Compile one benchmark system; runs in a worker process.

    Receives and returns only plain data (the row is a dataclass of
    ints), so the parallel and serial paths are interchangeable.  When
    ``run_table1`` traces, the per-task recorder ``parallel_map``
    activated is picked up ambiently (it cannot be passed through the
    pickled task tuple).
    """
    from .. import obs

    name, seed, verify = task
    rec = obs.current()
    graph = table1_graph(name)
    result = implement_best(
        graph, seed=seed, verify=verify,
        recorder=rec if getattr(rec, "enabled", False) else None,
    )
    return Table1Row.from_result(name, result)


def run_table1(
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    verify: bool = True,
    jobs: Optional[int] = None,
    recorder=None,
) -> List[Table1Row]:
    """Run the full flow over the benchmark suite.

    ``systems`` defaults to every Table 1 system; pass a subset for
    quick runs (the depth-5 filterbanks dominate the runtime).  Systems
    are independent, so ``jobs`` (or ``REPRO_JOBS``) fans them out over
    worker processes; row order always follows ``systems``.

    ``recorder`` (a :class:`repro.obs.Recorder`) traces each system
    under a ``table1.system`` span; each system builds its own
    compilation session, so serial and parallel runs merge to
    identical counter totals.
    """
    names = list(systems) if systems is not None else list(TABLE1_SYSTEMS)
    tasks = [(name, seed, verify) for name in names]
    return parallel_map(
        _table1_task, tasks, jobs=jobs,
        recorder=recorder, task_label="table1.system",
    )


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's column layout."""
    header = (
        f"{'System':>12} {'dppo(R)':>8} {'sdppo(R)':>8} {'mco(R)':>7} "
        f"{'mcp(R)':>7} {'ffdur(R)':>8} {'ffst(R)':>8} {'bmlb':>7} "
        f"{'dppo(A)':>8} {'sdppo(A)':>8} {'mco(A)':>7} {'mcp(A)':>7} "
        f"{'ffdur(A)':>8} {'ffst(A)':>8} {'%impr':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.system:>12} {r.dppo_r:>8} {r.sdppo_r:>8} {r.mco_r:>7} "
            f"{r.mcp_r:>7} {r.ffdur_r:>8} {r.ffstart_r:>8} {r.bmlb:>7} "
            f"{r.dppo_a:>8} {r.sdppo_a:>8} {r.mco_a:>7} {r.mcp_a:>7} "
            f"{r.ffdur_a:>8} {r.ffstart_a:>8} {r.improvement:>5.1f}%"
        )
    if rows:
        avg = sum(r.improvement for r in rows) / len(rows)
        lines.append("-" * len(header))
        lines.append(f"{'average improvement':>{len(header) - 7}} {avg:>5.1f}%")
    return "\n".join(lines)
