"""Figure 25: improvement percentage of shared over non-shared, per system.

A bar-graph view of Table 1's last column.  The series here is the data
behind the chart; :func:`format_fig25` renders an ASCII bar chart so the
benchmark output is directly comparable with the paper's figure (shape:
every practical system improves, most between 35% and 83%).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .table1 import Table1Row, run_table1

__all__ = ["improvement_series", "format_fig25", "run_fig25"]


def improvement_series(rows: Sequence[Table1Row]) -> List[Tuple[str, float]]:
    """(system, % improvement) pairs in benchmark order."""
    return [(r.system, r.improvement) for r in rows]


def run_fig25(
    systems: Optional[Sequence[str]] = None, seed: int = 0
) -> List[Tuple[str, float]]:
    """Run the suite and return the figure 25 series."""
    return improvement_series(run_table1(systems, seed=seed))


def format_fig25(series: Sequence[Tuple[str, float]], width: int = 50) -> str:
    """ASCII bar chart of improvement percentages (0–100% scale)."""
    lines = ["Percentage improvement of shared over non-shared:"]
    for system, value in series:
        bar = "#" * max(0, round(value / 100.0 * width))
        lines.append(f"{system:>12} |{bar:<{width}}| {value:5.1f}%")
    if series:
        avg = sum(v for _, v in series) / len(series)
        lines.append(f"{'average':>12} {'':<{width + 2}} {avg:5.1f}%")
    return "\n".join(lines)
