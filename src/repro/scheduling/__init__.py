"""Scheduling algorithms: DPPO, SDPPO, chain DP, APGAN, RPMC, pipeline."""

from .common import ChainContext, SplitTable, build_schedule_from_splits
from .dppo import DPPOResult, dppo
from .sdppo import SDPPOResult, sdppo
from .chain_sdppo import ChainSDPPOResult, CostTriple, chain_sdppo, combine_triples
from .apgan import APGANResult, apgan
from .rpmc import RPMCResult, rpmc
from .session import CompilationSession
from .pipeline import BestResult, ImplementationResult, implement, implement_best
from .cyclic import (
    CyclicScheduleResult,
    cluster_cycles,
    schedule_cyclic,
    strongly_connected_components,
)
from .exhaustive import OptimalSASResult, optimal_sas
from .vectorize import VectorizeResult, vectorize_schedule

__all__ = [
    "OptimalSASResult",
    "optimal_sas",
    "CyclicScheduleResult",
    "cluster_cycles",
    "schedule_cyclic",
    "strongly_connected_components",
    "ChainContext",
    "SplitTable",
    "build_schedule_from_splits",
    "DPPOResult",
    "dppo",
    "SDPPOResult",
    "sdppo",
    "ChainSDPPOResult",
    "CostTriple",
    "chain_sdppo",
    "combine_triples",
    "APGANResult",
    "apgan",
    "RPMCResult",
    "rpmc",
    "CompilationSession",
    "ImplementationResult",
    "BestResult",
    "implement",
    "implement_best",
    "VectorizeResult",
    "vectorize_schedule",
]
