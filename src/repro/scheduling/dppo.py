"""DPPO: dynamic programming post optimization, non-shared model (section 4).

Given an SDF graph and a lexical ordering (a topological sort), DPPO
computes the loop hierarchy minimizing the *non-shared* buffer memory
requirement ``bufmem(S) = sum_e max_tokens(e, S)`` (EQ 1) over all
single appearance schedules with that lexical order — the
*order-optimal* schedule.  The recurrence (EQ 2):

    b[i, j] = min_{i <= k < j}  b[i, k] + b[k+1, j] + c_ij[k]

with ``c_ij[k]`` the total size of buffers crossing the split (EQ 3):
the crossing edges' ``TNSE`` divided by ``gcd(q_i..q_j)`` — the loop
factor the split shares — plus initial tokens.

This is the paper's baseline: Table 1's ``dppo(R)`` and ``dppo(A)``
columns post-optimize the RPMC- and APGAN-generated lexical orders with
this algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from .common import (
    ChainContext,
    SplitTable,
    build_schedule_from_splits,
    dp_over_context,
)

__all__ = ["DPPOResult", "dppo"]


@dataclass
class DPPOResult:
    """Outcome of a DPPO run.

    Attributes
    ----------
    cost:
        Order-optimal non-shared buffer memory requirement, in words.
    schedule:
        The order-optimal nested single appearance schedule.
    order:
        The lexical order the optimization was performed over.
    table:
        The full DP cost table ``b[(i, j)]`` (useful for diagnostics and
        for the optimality proofs exercised in tests); derived on demand
        from the raw DP rows so the hot path never pays for it.
    """

    cost: int
    schedule: LoopedSchedule
    order: List[str]
    b: List[List[int]]

    @property
    def table(self) -> Dict[Tuple[int, int], int]:
        n = len(self.b)
        return {
            (i, j): self.b[i][j] for i in range(n) for j in range(i, n)
        }


def dppo(
    graph: SDFGraph,
    order: Sequence[str],
    q: Optional[Dict[str, int]] = None,
    context: Optional[ChainContext] = None,
    backend: str = "python",
) -> DPPOResult:
    """Order-optimal SAS under the non-shared buffer model.

    Runs in O(n^3) time for ``n`` actors (plus edge bookkeeping).
    ``context`` supplies a prebuilt :class:`ChainContext` for ``order``
    (e.g. from a compilation session) so DPPO and SDPPO runs over the
    same order share one precomputation.

    ``backend`` selects the DP implementation: ``"python"`` (the
    default; vectorizes with numpy on large eligible contexts),
    ``"native"`` or ``"auto"`` to run the cc-compiled kernel where
    available and eligible — bit-identical results either way, with a
    silent fall-through to the Python path when the kernel cannot run.

    Examples
    --------
    For the chain ``A -10/2-> B -2/3-> C`` (repetitions 3, 15, 10) the
    order-optimal schedule is ``(3A)(5(3B)(2C))`` with cost 30 + 6::

        >>> from repro.sdf.graph import SDFGraph
        >>> g = SDFGraph()
        >>> _ = g.add_actors("ABC")
        >>> _ = g.add_edge("A", "B", 10, 2)
        >>> _ = g.add_edge("B", "C", 2, 3)
        >>> result = dppo(g, ["A", "B", "C"])
        >>> result.cost
        36
        >>> str(result.schedule)
        '(3A)(5(3B)(2C))'
    """
    if context is None:
        context = ChainContext(graph, order, q)
    n = context.n
    b = split = None
    if backend != "python" and context.use_native:
        from ..native import resolve_backend

        _, kernels = resolve_backend(backend)
        if kernels is not None:
            b, split, _ = kernels.dp_over_context(context, shared=False)
    if b is None and context.use_numpy:
        b, split, _ = dp_over_context(context, shared=False)
    elif b is None:
        # b[i][j] = optimal cost of window (i, j), kept both row-major
        # and transposed so the split scan zips two contiguous slices:
        # the left halves b[i][i..j-1] and the right halves b[i+1..j][j].
        b = [[0] * n for _ in range(n)]
        bT = [[0] * n for _ in range(n)]
        split = {}
        for length in range(2, n + 1):
            for i in range(0, n - length + 1):
                j = i + length - 1
                costs = context.crossing_costs_for_window(i, j)
                bi = b[i]
                candidates = [
                    x + y + c
                    for x, y, c in zip(bi[i:j], bT[j][i + 1 : j + 1], costs)
                ]
                best = min(candidates)
                bi[j] = best
                bT[j][i] = best
                split[(i, j)] = i + candidates.index(best)

    factored = {key: True for key in split}
    schedule = build_schedule_from_splits(
        context, SplitTable(split=split, factored=factored)
    )
    return DPPOResult(
        cost=b[0][n - 1],
        schedule=schedule,
        order=list(order),
        b=b,
    )
