"""Precise shared-buffer DP for chain-structured graphs (section 6).

EQ 5's ``max(left, right)`` is pessimistic: it assumes the split-crossing
buffer is simultaneously live with *everything* on both sides.  For
chain-structured graphs the paper refines the cost of a subchain to a
triple

    (left, cost, right)

where ``cost`` is the shared memory to implement the subchain in
isolation, ``left`` the part of it that can be live simultaneously with
the buffer on the input edge of the subchain's first actor, and
``right`` the part that can overlap the buffer on the output edge of its
last actor (figure 6: subchain ABCD reports (104, 104, 91), so the
DE-crossing buffer adds to 91 instead of 104, giving the true 127).

Combining a left triple ``(l1, l2, l3)`` and a right triple
``(r1, r2, r3)`` across a split with crossing-buffer size ``c`` depends
on how often each side iterates inside the merged loop: with
``g_xy = gcd(q_x..q_y)``, the left side iterates ``rL = g_ik / g_ij``
times and the right side ``rR = g_(k+1)j / g_ij`` times.  Three regimes
matter per side — once, twice, three-or-more — giving the paper's nine
cases.  The paper details the three cases with ``rR = 1``
(sections 6.1.1–6.1.3); the remaining six follow by the left/right
mirror symmetry of the buffer profiles, which we apply below.

Incomparable triples (figure 11) are kept as a Pareto set per DP cell,
bounded by ``max_entries`` to keep time and space polynomial, exactly as
the paper suggests.

Delayed edges are handled as in EQ 5's episodic/persistent split (see
:mod:`repro.scheduling.sdppo`): a delayed edge's circular buffer is live
across the whole period, so it bypasses the triple's overlap reasoning
and accumulates in a fourth, always-summed ``pers`` component per Pareto
entry; a subchain's true cost is ``mid + pers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from .common import ChainContext, SplitTable, build_schedule_from_splits

__all__ = ["CostTriple", "ChainSDPPOResult", "chain_sdppo", "combine_triples"]


@dataclass(frozen=True)
class CostTriple:
    """A (left, cost, right) shared-memory cost triple (section 6)."""

    left: int
    mid: int
    right: int

    def dominates(self, other: "CostTriple") -> bool:
        """Element-wise <= with at least one strict (Pareto dominance)."""
        return (
            self.left <= other.left
            and self.mid <= other.mid
            and self.right <= other.right
            and (self != other)
        )

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.left, self.mid, self.right)


def combine_triples(
    left: CostTriple,
    right: CostTriple,
    crossing: int,
    left_ratio: int,
    right_ratio: int,
    left_is_leaf: bool = False,
    right_is_leaf: bool = False,
) -> CostTriple:
    """Apply the nine-case combination rule of section 6.1.

    ``crossing`` is the split-crossing buffer size ``c_ij(k)``;
    ``left_ratio`` / ``right_ratio`` are ``g_ik/g_ij`` and
    ``g_(k+1)j/g_ij`` — how many times each side iterates within one
    iteration of the merged loop.

    The middle component is live memory at the worst instant: one of

    * the left side at full cost, plus the crossing buffer if the left
      side repeats (the crossing buffer is partially filled during
      repeats ≥ 2) — ``l2 (+c)``;
    * the left side's output-overlap portion together with the crossing
      buffer while the left side fills it — ``l3 + c``;
    * the right side's input-overlap portion while it drains the
      crossing buffer — ``r1 + c``;
    * the right side at full cost, plus the crossing buffer if the right
      side repeats (undrained until the final repeat) — ``r2 (+c)``.

    The left component follows section 6.1's cases I–III; the right
    component is the mirror image.

    ``left_is_leaf`` / ``right_is_leaf`` record that a side is a single
    actor.  A single actor's input buffers stay live until it finishes
    and its output buffers are live from when it starts (the coarse
    model, sections 5 and 12), so a leaf side's external buffer always
    overlaps the crossing buffer: the window's (A, B) base triple is
    ``(c, c, c)``, not ``(0, c, 0)``.  This is the reading under which
    the paper's figure 6 values — subchain ABCD reporting
    ``(104, 104, 91)`` and the total coming to 127 — reproduce exactly.
    """
    if left_ratio < 1 or right_ratio < 1:
        raise GraphStructureError(
            f"loop ratios must be >= 1, got {left_ratio}/{right_ratio}"
        )
    c = crossing
    l1, l2, l3 = left.as_tuple()
    r1, r2, r3 = right.as_tuple()

    mid = max(
        l2 + (c if left_ratio >= 2 else 0),
        l3 + c if not left_is_leaf else c,
        r1 + c if not right_is_leaf else c,
        r2 + (c if right_ratio >= 2 else 0),
        c,
    )

    if left_ratio == 1:
        t_left = max(l1, c) if left_is_leaf else l1
    elif left_ratio == 2:
        t_left = max(l1 + c, l2)
    else:
        t_left = l2 + c

    if right_ratio == 1:
        t_right = max(r3, c) if right_is_leaf else r3
    elif right_ratio == 2:
        t_right = max(r3 + c, r2)
    else:
        t_right = r2 + c

    # The overlap portions can never exceed the total cost.
    return CostTriple(min(t_left, mid), mid, min(t_right, mid))


@dataclass
class _Entry:
    """A Pareto-set member with provenance for schedule reconstruction.

    ``pers`` carries the subchain's *persistent* memory — delayed-edge
    circular buffers, live across the whole period and so excluded from
    the episodic triple's overlap reasoning; the subchain's true cost is
    ``triple.mid + pers``.  Dominance must compare all four components:
    folding ``pers`` into the triple is unsound (an entry with a larger
    episodic triple but smaller persistent part can win after a merge
    whose other side dwarfs both episodic profiles).
    """

    triple: CostTriple
    split: int = -1  # -1 for leaf windows
    left_index: int = -1
    right_index: int = -1
    pers: int = 0

    def dominates(self, other: "_Entry") -> bool:
        return (
            self.triple.left <= other.triple.left
            and self.triple.mid <= other.triple.mid
            and self.triple.right <= other.triple.right
            and self.pers <= other.pers
            and (self.triple != other.triple or self.pers != other.pers)
        )


@dataclass
class ChainSDPPOResult:
    """Outcome of the precise chain DP.

    ``cost`` is the exact shared-model cost estimate of the best root
    entry (minimum episodic middle component plus persistent total);
    ``schedule`` the reconstructed SAS; ``pareto`` the root window's
    episodic triples.
    """

    cost: int
    schedule: LoopedSchedule
    order: List[str]
    pareto: List[CostTriple]


def chain_sdppo(
    graph: SDFGraph,
    order: Optional[Sequence[str]] = None,
    q: Optional[Dict[str, int]] = None,
    max_entries: int = 8,
) -> ChainSDPPOResult:
    """Precise shared-buffer DP over a chain-structured graph.

    Parameters
    ----------
    graph:
        Must be chain-structured (a simple path); the lexical order of a
        chain's SAS is forced, so ``order`` defaults to the chain order.
    max_entries:
        Bound on incomparable triples retained per DP cell (the paper's
        suggested polynomial-time safeguard).  Entries with the smallest
        middle component are preferred when truncating.
    """
    chain = graph.chain_order()
    if chain is None:
        raise GraphStructureError(
            f"chain_sdppo requires a chain-structured graph; "
            f"{graph.name!r} is not a simple path"
        )
    if order is not None and list(order) != chain:
        raise GraphStructureError(
            "a chain has a unique topological order; "
            f"expected {chain!r}, got {list(order)!r}"
        )
    if max_entries < 1:
        raise GraphStructureError("max_entries must be >= 1")

    context = ChainContext(graph, chain, q, trusted=True)
    n = context.n
    cells: Dict[Tuple[int, int], List[_Entry]] = {}
    for i in range(n):
        cells[(i, i)] = [_Entry(CostTriple(0, 0, 0))]

    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            g_ij = context.window_gcd(i, j)
            candidates: List[_Entry] = []
            for k in range(i, j):
                # A delayed crossing edge's circular buffer is live for
                # the whole period: it takes no part in the episodic
                # overlap cases, it simply adds to the persistent total.
                c_total = context.single_crossing_edge_cost(i, j, k)
                p_cross = context.pers_single_crossing_edge_cost(i, j, k)
                c_epi = c_total - p_cross
                r_left = context.window_gcd(i, k) // g_ij
                r_right = context.window_gcd(k + 1, j) // g_ij
                for li, le in enumerate(cells[(i, k)]):
                    for ri, re in enumerate(cells[(k + 1, j)]):
                        t = combine_triples(
                            le.triple, re.triple, c_epi, r_left, r_right,
                            left_is_leaf=(i == k),
                            right_is_leaf=(k + 1 == j),
                        )
                        candidates.append(
                            _Entry(t, k, li, ri,
                                   pers=le.pers + re.pers + p_cross)
                        )
            cells[(i, j)] = _pareto_prune(candidates, max_entries)

    root = cells[(0, n - 1)]
    best_index = min(
        range(len(root)), key=lambda x: root[x].triple.mid + root[x].pers
    )
    split, factored = {}, {}
    _collect_splits(cells, (0, n - 1), best_index, split, factored)
    schedule = build_schedule_from_splits(
        context, SplitTable(split=split, factored=factored)
    )
    return ChainSDPPOResult(
        cost=root[best_index].triple.mid + root[best_index].pers,
        schedule=schedule,
        order=chain,
        pareto=[e.triple for e in root],
    )


def _pareto_prune(candidates: List[_Entry], max_entries: int) -> List[_Entry]:
    """Keep 4-way Pareto-minimal entries, at most ``max_entries``.

    Entries are preferred by total cost (``mid + pers``) when
    truncating; dominance compares (left, mid, right, pers)
    component-wise (see :class:`_Entry` for why ``pers`` cannot be
    folded into the triple).
    """
    candidates.sort(
        key=lambda e: (
            e.triple.mid + e.pers, e.triple.left, e.triple.right, e.pers
        )
    )
    kept: List[_Entry] = []
    for entry in candidates:
        if any(
            k.dominates(entry)
            or (k.triple == entry.triple and k.pers == entry.pers)
            for k in kept
        ):
            continue
        kept.append(entry)
        if len(kept) >= max_entries:
            break
    return kept


def _collect_splits(
    cells: Dict[Tuple[int, int], List[_Entry]],
    window: Tuple[int, int],
    index: int,
    split: Dict[Tuple[int, int], int],
    factored: Dict[Tuple[int, int], bool],
) -> None:
    i, j = window
    if i == j:
        return
    entry = cells[window][index]
    split[window] = entry.split
    # Chains always have the single crossing edge between adjacent
    # actors, so the section 5.1 heuristic always factors.
    factored[window] = True
    _collect_splits(cells, (i, entry.split), entry.left_index, split, factored)
    _collect_splits(
        cells, (entry.split + 1, j), entry.right_index, split, factored
    )
