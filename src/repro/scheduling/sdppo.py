"""SDPPO: DPPO for the shared (coarse-grained) buffer model (section 5).

Under the coarse shared-buffer model, a buffer on an edge is an array
holding all tokens transferred during one live episode; disjoint-lifetime
arrays can overlay each other in memory.  SDPPO post-optimizes a lexical
order with the shared cost as objective (EQ 5):

    bufmem[i, j] = min_k  max(bufmem[i, k], bufmem[k+1, j]) + c_ij[k]

The intuition (figure 5): buffers entirely on the left of a split are
never live at the same time as buffers entirely on the right, so only
the larger side matters; the split-crossing buffers are live across both
and are added in full.

Edges with initial tokens break the "never live at the same time"
premise: a delayed edge's circular buffer carries its ``del(e)`` tokens
across the period boundary, so it is live during *every* instant of the
schedule and can never overlay anything.  The recurrence therefore
splits each cost into an episodic part (delayless buffers, combined
with ``max``) and a persistent part (delayed-edge buffers, always
summed); on delayless graphs the two formulations coincide exactly.

Factoring heuristic (section 5.1): factoring the gcd loop out of a
split-merge shrinks the crossing buffers but forces the left side's
input buffers to overlap the right side's output buffers.  Following the
paper, we factor exactly when the merge has internal (split-crossing)
edges, and leave the halves as consecutive unfactored loops otherwise.

The resulting ``bufmem[0, n-1]`` is the paper's ``sdppo`` *estimate*
(Table 1 columns ``sdppo(R)``/``sdppo(A)``); the actual memory usage is
determined afterwards by lifetime extraction and first-fit allocation,
and is typically within a few percent of the estimate (figure 27(d)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from .common import (
    ChainContext,
    SplitTable,
    build_schedule_from_splits,
    dp_over_context,
)

__all__ = ["SDPPOResult", "sdppo"]


@dataclass
class SDPPOResult:
    """Outcome of an SDPPO run.

    ``cost`` is the shared-model buffer memory *estimate* in words;
    ``schedule`` the chosen nested SAS; ``table`` the DP cost table
    (derived on demand from the raw DP rows ``b``); ``factored`` the
    per-window factoring decisions.
    """

    cost: int
    schedule: LoopedSchedule
    order: List[str]
    b: List[List[int]]
    factored: Dict[Tuple[int, int], bool]

    @property
    def table(self) -> Dict[Tuple[int, int], int]:
        n = len(self.b)
        return {
            (i, j): self.b[i][j] for i in range(n) for j in range(i, n)
        }


def sdppo(
    graph: SDFGraph,
    order: Sequence[str],
    q: Optional[Dict[str, int]] = None,
    factoring: str = "auto",
    context: Optional[ChainContext] = None,
    backend: str = "python",
) -> SDPPOResult:
    """Shared-buffer-optimized SAS over a fixed lexical order (EQ 5).

    O(n^3).  The cost of a one-actor window is zero (a single actor has
    no internal buffers).

    ``factoring`` selects the section 5.1 policy: ``"auto"`` (the
    paper's heuristic — factor iff the merge has internal edges),
    ``"always"``, or ``"never"``.  The non-default policies exist for
    the ablation study (``benchmarks/bench_ablations.py``): figure 7
    shows either extreme can lose.

    ``backend`` selects the DP implementation exactly as in
    :func:`repro.scheduling.dppo.dppo`: ``"native"``/``"auto"`` run
    the cc-compiled kernel where available and eligible, bit-identical
    to the Python path, falling through silently otherwise.

    Examples
    --------
    The paper's figure 6 intuition: sharing takes the max of the two
    sides rather than their sum, so deep chains cost only their widest
    cut plus the crossing buffers along the way.

        >>> from repro.sdf.graph import SDFGraph
        >>> g = SDFGraph()
        >>> _ = g.add_actors("ABC")
        >>> _ = g.add_edge("A", "B", 10, 2)
        >>> _ = g.add_edge("B", "C", 2, 3)
        >>> result = sdppo(g, ["A", "B", "C"])
        >>> result.cost <= 36
        True
    """
    if factoring not in ("auto", "always", "never"):
        raise ValueError(f"unknown factoring policy {factoring!r}")
    if context is None:
        context = ChainContext(graph, order, q)
    n = context.n
    b = None
    if backend != "python" and context.use_native:
        from ..native import resolve_backend

        _, kernels = resolve_backend(backend)
        if kernels is not None:
            b, split, factored = kernels.dp_over_context(
                context, shared=True, factoring=factoring
            )
    if b is not None:
        pass
    elif context.use_numpy:
        # Section 5.1 heuristic ("auto"): factor iff the merge has
        # internal edges — crossing cost positive at the chosen split.
        b, split, factored = dp_over_context(
            context, shared=True, factoring=factoring
        )
    elif not context.has_delays:
        # Delayless graphs: every buffer is episodic, so EQ 5 is the
        # plain max-combiner recurrence.  b[i][j] = optimal cost of
        # window (i, j), kept both row-major and transposed so the
        # split scan zips two contiguous slices: the left halves
        # b[i][i..j-1] and the right halves b[i+1..j][j].
        b = [[0] * n for _ in range(n)]
        bT = [[0] * n for _ in range(n)]
        split = {}
        factored = {}
        for length in range(2, n + 1):
            for i in range(0, n - length + 1):
                j = i + length - 1
                costs = context.crossing_costs_for_window(i, j)
                bi = b[i]
                candidates = [
                    (x if x > y else y) + c
                    for x, y, c in zip(bi[i:j], bT[j][i + 1 : j + 1], costs)
                ]
                best = min(candidates)
                best_k = i + candidates.index(best)
                bi[j] = best
                bT[j][i] = best
                split[(i, j)] = best_k
                # Section 5.1 heuristic: factor iff the merge has
                # internal edges.  Crossing costs are strictly positive
                # whenever a crossing edge exists, so a zero cost means
                # the halves are independent; keep them unfactored so
                # their buffers stay disjoint (figure 7(a) vs 7(b)).
                if factoring == "auto":
                    factored[(i, j)] = costs[best_k - i] > 0
                else:
                    factored[(i, j)] = factoring == "always"
    else:
        # Delayed edges hold live tokens across the whole period, so
        # their circular buffers are *persistent* — they can never
        # share memory — while delayless buffers stay episodic and
        # share via max.  Split every window cost accordingly:
        #
        #   total(k) = max(ep_l, ep_r) + pers_l + pers_r + c_ij[k]
        #
        # The persistent part of the crossing cost is inside c_ij[k]
        # already (it cancels in the total), so only the chosen split
        # needs the extra pers_crossing_cost rectangle query to update
        # the episodic/persistent book tables.  On delayless inputs
        # every pers term is 0 and this reduces (including tie-breaks)
        # to the branch above.
        b = [[0] * n for _ in range(n)]
        ep = [[0] * n for _ in range(n)]
        epT = [[0] * n for _ in range(n)]
        pers = [[0] * n for _ in range(n)]
        persT = [[0] * n for _ in range(n)]
        split = {}
        factored = {}
        for length in range(2, n + 1):
            for i in range(0, n - length + 1):
                j = i + length - 1
                costs = context.crossing_costs_for_window(i, j)
                epi = ep[i]
                pi = pers[i]
                candidates = [
                    (x if x > y else y) + pl + pr + c
                    for x, y, pl, pr, c in zip(
                        epi[i:j],
                        epT[j][i + 1 : j + 1],
                        pi[i:j],
                        persT[j][i + 1 : j + 1],
                        costs,
                    )
                ]
                best = min(candidates)
                best_k = i + candidates.index(best)
                p_cross = context.pers_crossing_cost(i, j, best_k)
                new_pers = pi[best_k] + persT[j][best_k + 1] + p_cross
                b[i][j] = best
                pi[j] = new_pers
                persT[j][i] = new_pers
                epi[j] = best - new_pers
                epT[j][i] = best - new_pers
                split[(i, j)] = best_k
                if factoring == "auto":
                    factored[(i, j)] = costs[best_k - i] > 0
                else:
                    factored[(i, j)] = factoring == "always"

    schedule = build_schedule_from_splits(
        context, SplitTable(split=split, factored=factored)
    )
    return SDPPOResult(
        cost=b[0][n - 1],
        schedule=schedule,
        order=list(order),
        b=b,
        factored=factored,
    )
