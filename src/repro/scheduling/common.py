"""Shared infrastructure for the dynamic-programming schedulers.

Both DPPO (non-shared model, section 4) and SDPPO (shared model,
section 5) run the same bottom-up DP over a fixed lexical order
``(A_1, ..., A_n)``: they differ only in how the costs of the two halves
of a split combine.  This module provides the common machinery:

* :class:`ChainContext` — the lexical order, repetitions, per-window
  gcds ``g[i][j] = gcd(q_i..q_j)``, and incremental split-crossing cost
  sums (EQ 3/4);
* :func:`build_schedule_from_splits` — reconstruct the nested looped
  schedule from a table of optimal split points, applying the factoring
  decision recorded per window.

Positions are 0-based; a *window* ``(i, j)`` covers actors
``order[i] .. order[j]`` inclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError, ScheduleError
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode
from ..sdf.topsort import is_topological_order

try:  # optional acceleration; every algorithm has a pure-Python path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ChainContext",
    "build_schedule_from_splits",
    "SplitTable",
    "aggregate_pair_weights",
    "broadcast_group_weights",
    "dp_over_context",
]


def aggregate_pair_weights(
    graph: SDFGraph, q: Dict[str, int]
) -> Dict[Tuple[str, str], Tuple[int, int, int]]:
    """Per actor pair: ``(TNSE words, delay words, delayed-edge TNSE words)``.

    Parallel edges are summed.  The third component restricts the first
    to edges carrying initial tokens — the *persistent* edges whose
    circular buffers stay live across the whole period and therefore
    cannot share memory with anything (see EQ 5's episodic/persistent
    split in :func:`dp_over_context`).

    Order-invariant, so a compilation session computes it once per graph
    and every per-order :class:`ChainContext` reuses it.

    Broadcast members are *excluded*: a group owns one shared buffer,
    counted once, so its weight enters the DP as a single virtual edge
    whose sink position depends on the order — see
    :func:`broadcast_group_weights` and the folding in
    :class:`ChainContext`.
    """
    weights: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
    for e in graph.edges():
        if e.broadcast is not None:
            continue
        tw = total_tokens_exchanged(e, q) * e.token_size
        dw = e.delay * e.token_size
        ptw = tw if e.delay > 0 else 0
        prev = weights.get((e.source, e.sink))
        if prev is not None:
            tw += prev[0]
            dw += prev[1]
            ptw += prev[2]
        weights[(e.source, e.sink)] = (tw, dw, ptw)
    return weights


def broadcast_group_weights(
    graph: SDFGraph, q: Dict[str, int]
) -> Dict[str, Tuple[str, Tuple[str, ...], Tuple[int, int, int]]]:
    """Per broadcast group: ``(source, sinks, (tw, dw, ptw))``.

    Members of a group share source, production, delay, and token size,
    so they all have the same TNSE — the weight of the one shared
    buffer, counted once.  Order-invariant (cached per session); the
    position of the virtual edge carrying the weight is order-dependent
    and resolved per :class:`ChainContext`.
    """
    weights: Dict[str, Tuple[str, Tuple[str, ...], Tuple[int, int, int]]] = {}
    for name, members in graph.broadcast_groups().items():
        first = members[0]
        tw = total_tokens_exchanged(first, q) * first.token_size
        dw = first.delay * first.token_size
        ptw = tw if first.delay > 0 else 0
        weights[name] = (
            first.source,
            tuple(m.sink for m in members),
            (tw, dw, ptw),
        )
    return weights


class ChainContext:
    """Precomputed quantities for DP over a lexical order.

    A broadcast group enters the weight tables as one *virtual edge*
    from its source to the member sink at the greatest order position,
    carrying the group's weight once.  This is exact for the DP cost
    models: within any window, the first split separating the source
    from *any* member sink also separates it from the farthest one
    (windows are contiguous and every sink is after the source), and
    window nesting makes inner gcds multiples of outer gcds, so
    ``TNSE/g`` at that outermost separation is the maximum over the
    members' individual crossing costs — exactly the shared buffer's
    occupancy peak (max over member token counts).

    Parameters
    ----------
    graph:
        A consistent SDF graph.  For single appearance schedules to be
        valid the graph restricted to the order must be acyclic and the
        order topological; this is checked unless ``trusted=True``.
    order:
        The lexical order (a topological sort of the actors).
    trusted:
        Skip the O(n·e) topological re-validation.  Safe for orders our
        own generators produced (RPMC, APGAN, the topsort samplers); a
        :class:`~repro.scheduling.session.CompilationSession` sets this
        for every trial of a search.
    pair_weights:
        Precomputed ``(source, sink) -> (tnse words, delay words,
        delayed-edge tnse words)`` with parallel edges aggregated
        (broadcast members excluded), as built once per graph by a
        compilation session; computed here when absent.
    broadcast_weights:
        Precomputed per-group weights from
        :func:`broadcast_group_weights`; computed here when absent.
    """

    def __init__(
        self,
        graph: SDFGraph,
        order: Sequence[str],
        q: Optional[Dict[str, int]] = None,
        trusted: bool = False,
        pair_weights: Optional[Dict[Tuple[str, str], Tuple[int, int, int]]] = None,
        broadcast_weights: Optional[
            Dict[str, Tuple[str, Tuple[str, ...], Tuple[int, int, int]]]
        ] = None,
    ) -> None:
        if sorted(order) != sorted(graph.actor_names()):
            raise GraphStructureError(
                "lexical order must contain each actor exactly once"
            )
        if not trusted and not is_topological_order(graph, order):
            raise GraphStructureError(
                f"order {list(order)!r} is not a topological sort of "
                f"{graph.name!r}; a single appearance schedule with this "
                f"lexical order would deadlock"
            )
        self.graph = graph
        self.order: List[str] = list(order)
        self.n = len(self.order)
        self.q = q if q is not None else repetitions_vector(graph)
        self.position = {a: i for i, a in enumerate(self.order)}

        # g[i][j] = gcd(q_i, ..., q_j), stored as list of lists where
        # row i holds gcds for windows starting at i.
        self._g: List[List[int]] = []
        for i in range(self.n):
            row = [0] * self.n
            acc = 0
            for j in range(i, self.n):
                acc = gcd(acc, self.q[self.order[j]])
                row[j] = acc
            self._g.append(row)

        if pair_weights is None:
            pair_weights = aggregate_pair_weights(graph, self.q)
        if broadcast_weights is None:
            broadcast_weights = broadcast_group_weights(graph, self.q)
        if broadcast_weights:
            # Fold each broadcast group in as a virtual edge to the
            # member sink farthest along *this* order (see class
            # docstring for why this is exact).  pair_weights itself is
            # order-invariant session state and must not be mutated.
            pair_weights = dict(pair_weights)
            for source, sinks, (tw, dw, ptw) in broadcast_weights.values():
                far = max(sinks, key=lambda s: self.position[s])
                prev = pair_weights.get((source, far))
                if prev is not None:
                    tw, dw, ptw = (
                        tw + prev[0], dw + prev[1], ptw + prev[2]
                    )
                pair_weights[(source, far)] = (tw, dw, ptw)

        # 2D prefix sums over (source position, sink position) of the
        # edge count, TNSE words and delay words, so crossing sums are
        # O(1) rectangle queries.  Summing TNSE before dividing by the
        # window gcd is exact: g_ij divides q(src) for every source in
        # the window and TNSE(e) is a multiple of q(src), so each
        # tw // g term divides evenly.
        m = self.n + 1
        cnt = [[0] * m for _ in range(m)]
        tws = [[0] * m for _ in range(m)]
        dws = [[0] * m for _ in range(m)]
        ptws = [[0] * m for _ in range(m)]
        for (src, snk), (tw, dw, ptw) in pair_weights.items():
            ps, pt = self.position[src], self.position[snk]
            cnt[ps + 1][pt + 1] += 1
            tws[ps + 1][pt + 1] += tw
            dws[ps + 1][pt + 1] += dw
            ptws[ps + 1][pt + 1] += ptw
        for grid in (cnt, tws, dws, ptws):
            for r in range(1, m):
                row, prev = grid[r], grid[r - 1]
                acc = 0
                for c in range(1, m):
                    acc += row[c]
                    row[c] = acc + prev[c]
        self._cnt_prefix = cnt
        self._tw_prefix = tws
        self._dw_prefix = dws
        self._ptw_prefix = ptws
        #: Whether any edge carries initial tokens — when false the
        #: persistent component of every crossing cost is zero and the
        #: shared DP reduces to the plain EQ 5 recurrence.
        self.has_delays = dws[self.n][self.n] > 0
        self._scan_arrays: Optional[tuple] = None
        self._np_state: Optional[tuple] = None
        # The vectorized DP stores prefix sums in int64; bail out to the
        # pure-Python path (exact big ints) if DP accumulations could
        # overflow: costs are bounded by the total weight times the
        # nesting depth.  Below ~30 actors the per-length array overhead
        # exceeds the win, so small chains stay pure Python.
        total_w = tws[self.n][self.n] + dws[self.n][self.n]
        self.use_numpy = (
            _np is not None
            and self.n >= 30
            and (total_w + 1) * (self.n + 2) < 2**62
        )
        #: Whether the cc-compiled DP kernel may run: same int64
        #: accumulation bound as the numpy path but no size floor — a
        #: C call is cheap enough for small windows, and running native
        #: everywhere maximizes differential coverage.  Ineligible
        #: contexts (big-int weights) silently take the Python path.
        self.use_native = (
            self.n >= 2 and (total_w + 1) * (self.n + 2) < 2**62
        )
        #: Flattened ctypes copies of the prefix/gcd grids, built and
        #: cached by :mod:`repro.native.kernels` on first native DP.
        self._native_state: Optional[tuple] = None
        # Window -> crossing-cost list, shared by the DPPO/SDPPO pair
        # running over this same context (the lists are never mutated).
        self._window_costs: List[List[Optional[List[int]]]] = [
            [None] * self.n for _ in range(self.n)
        ]
        #: Window-cost cache statistics, flushed to a recorder by the
        #: pipeline (plain ints: the DP inner loop is the hot path).
        self.window_hits = 0
        self.window_misses = 0

    def _scan_state(self) -> tuple:
        """Column-combined arrays for the pure-Python window cost scan.

        Per prefix column jj, fold the transposed prefix with its
        diagonal (T = twT - diag_t, D = dwT - diag_d, A = T + D), and
        per row the tw/dw prefix sum, so the scan zips two (gcd 1) or
        four contiguous slices instead of six.  Built lazily — the
        vectorized DP never needs them.
        """
        if self._scan_arrays is None:
            tws, dws = self._tw_prefix, self._dw_prefix
            m = self.n + 1
            diag_t = [tws[r][r] for r in range(m)]
            diag_d = [dws[r][r] for r in range(m)]
            colT = [[x - d for x, d in zip(col, diag_t)] for col in zip(*tws)]
            colD = [[x - d for x, d in zip(col, diag_d)] for col in zip(*dws)]
            colA = [
                [x + y for x, y in zip(ct, cd)] for ct, cd in zip(colT, colD)
            ]
            sum_prefix = [
                [a + b for a, b in zip(rt, rd)] for rt, rd in zip(tws, dws)
            ]
            self._scan_arrays = (colT, colD, colA, sum_prefix)
        return self._scan_arrays

    def _numpy_state(self) -> tuple:
        """int64 copies of the prefix/gcd tables for the vectorized DP."""
        if self._np_state is None:
            Pt = _np.asarray(self._tw_prefix, dtype=_np.int64)
            Pd = _np.asarray(self._dw_prefix, dtype=_np.int64)
            Pp = _np.asarray(self._ptw_prefix, dtype=_np.int64)
            G = _np.asarray(self._g, dtype=_np.int64) if self.n else None
            self._np_state = (Pt, Pd, Pp, G)
        return self._np_state

    # ------------------------------------------------------------------
    def window_gcd(self, i: int, j: int) -> int:
        """``g_ij = gcd(q(A_i), ..., q(A_j))``."""
        return self._g[i][j]

    def actor(self, i: int) -> str:
        return self.order[i]

    def rep(self, i: int) -> int:
        return self.q[self.order[i]]

    def _rect(self, grid: List[List[int]], r0: int, r1: int, c0: int, c1: int) -> int:
        """Sum of ``grid`` entries with source in [r0, r1], sink in [c0, c1]."""
        return (
            grid[r1 + 1][c1 + 1]
            - grid[r0][c1 + 1]
            - grid[r1 + 1][c0]
            + grid[r0][c0]
        )

    def crossing_cost(self, i: int, j: int, k: int) -> int:
        """``c_ij[k]`` (EQ 3): buffer words on edges crossing split ``k``.

        Sum over edges with source in window positions ``[i, k]`` and
        sink in ``[k+1, j]`` of ``TNSE(e)/g_ij`` words, plus the edges'
        initial-token words (a delayed crossing buffer additionally holds
        its ``del(e)`` tokens at the peak).
        """
        g = self._g[i][j]
        tw = self._rect(self._tw_prefix, i, k, k + 1, j)
        dw = self._rect(self._dw_prefix, i, k, k + 1, j)
        return tw // g + dw

    def crossing_costs_for_window(self, i: int, j: int) -> List[int]:
        """``[c_ij[k] for k in i..j-1]``, one rectangle query per split.

        The returned list is cached per window (and must be treated as
        read-only): DPPO and SDPPO over the same context walk the same
        windows, so the second DP reuses every list.
        """
        cached = self._window_costs[i][j]
        if cached is not None:
            self.window_hits += 1
            return cached
        self.window_misses += 1
        colT, colD, colA, sum_prefix = self._scan_state()
        g = self._g[i][j]
        jj = j + 1
        lo = i + 1
        # Rectangle query at split k, with r = k + 1 the prefix row just
        # below the sources [i, k] and columns (k, j] the sinks:
        # tw = P[r][jj] - P[i][jj] - P[r][r] + P[i][r], likewise dw —
        # regrouped through the folded column arrays.
        if g == 1:
            s_row = sum_prefix[i]
            sj = s_row[jj]
            costs = [
                a + p - sj for a, p in zip(colA[jj][lo:jj], s_row[lo:jj])
            ]
        else:
            top_t, top_d = self._tw_prefix[i], self._dw_prefix[i]
            tj, dj = top_t[jj], top_d[jj]
            costs = [
                (at + pt - tj) // g + ad + pd - dj
                for at, ad, pt, pd in zip(
                    colT[jj][lo:jj],
                    colD[jj][lo:jj],
                    top_t[lo:jj],
                    top_d[lo:jj],
                )
            ]
        self._window_costs[i][j] = costs
        return costs

    def has_crossing_edge(self, i: int, j: int, k: int) -> bool:
        """True if any edge crosses split ``k`` of window ``(i, j)``.

        These are the *internal edges* of the merge in the factoring
        heuristic of section 5.1.
        """
        return self._rect(self._cnt_prefix, i, k, k + 1, j) > 0

    def pers_crossing_cost(self, i: int, j: int, k: int) -> int:
        """Persistent part of ``c_ij[k]``: delayed crossing edges only.

        A delayed edge's buffer holds live tokens across the whole
        schedule period (the ``del(e)`` tokens wrap around), so its
        ``TNSE(e)/g_ij + del(e)`` words can never share memory with any
        other buffer.  The *episodic* part of the crossing cost is
        ``crossing_cost(i, j, k) - pers_crossing_cost(i, j, k)``.

        The division is exact for the same reason as in
        :meth:`crossing_cost`: the prefix restricts to delayed edges,
        and each of their TNSE values is a multiple of ``q(src)``.
        """
        g = self._g[i][j]
        ptw = self._rect(self._ptw_prefix, i, k, k + 1, j)
        dw = self._rect(self._dw_prefix, i, k, k + 1, j)
        return ptw // g + dw

    def single_crossing_edge_cost(self, i: int, j: int, k: int) -> int:
        """Crossing cost when the graph is a chain: the one edge (k, k+1)."""
        g = self._g[i][j]
        tw = self._rect(self._tw_prefix, k, k, k + 1, k + 1)
        dw = self._rect(self._dw_prefix, k, k, k + 1, k + 1)
        return tw // g + dw

    def pers_single_crossing_edge_cost(self, i: int, j: int, k: int) -> int:
        """Persistent part of the chain crossing cost for edge (k, k+1)."""
        g = self._g[i][j]
        ptw = self._rect(self._ptw_prefix, k, k, k + 1, k + 1)
        dw = self._rect(self._dw_prefix, k, k, k + 1, k + 1)
        return ptw // g + dw


def dp_over_context(
    context: ChainContext,
    shared: bool,
    factoring: str = "auto",
) -> Tuple[List[List[int]], Dict[Tuple[int, int], int], Dict[Tuple[int, int], bool]]:
    """Vectorized EQ 2 / EQ 5 DP over ``context`` (requires numpy).

    Processes one window length per step: all windows of that length
    are strided views into the DP table and the weight prefix sums, so
    each anti-diagonal costs a constant number of array operations.
    Returns ``(b, split, factored)`` with ``b`` the dense cost table
    (rows of plain ints), matching the pure-Python DP bit for bit —
    ``argmin`` and ``list.index`` both take the first minimum, and all
    arithmetic is exact int64 (guarded by ``context.use_numpy``).

    ``shared`` selects the combiner.  Non-shared (EQ 2) sums the
    halves.  Shared (EQ 5) splits every cost into an *episodic* part
    (delayless buffers, live only during their episode — combined with
    ``max``) and a *persistent* part (delayed-edge circular buffers,
    live across the whole period — always summed):

        total = max(ep_l, ep_r) + pers_l + pers_r + c_ij[k]

    The persistent part of the crossing cost cancels in the total (it
    is included in ``c_ij[k]``), so only the episodic/persistent book
    tables need the extra rectangle query.  On a delayless graph every
    persistent term is zero and the recurrence collapses to the plain
    ``max(left, right) + c`` form, so that path skips the bookkeeping.

    ``factored`` is only meaningful for the shared DP, where
    ``factoring`` applies the section 5.1 policy; the non-shared DP
    always factors.
    """
    np = _np
    n = context.n
    Pt, Pd, Pp, G = context._numpy_state()
    s0, s1 = Pt.strides
    b = np.zeros((n, n), dtype=np.int64)
    bs0, bs1 = b.strides
    split: Dict[Tuple[int, int], int] = {}
    factored: Dict[Tuple[int, int], bool] = {}
    strided = np.lib.stride_tricks.as_strided
    pers_split = shared and context.has_delays
    if pers_split:
        ep = np.zeros((n, n), dtype=np.int64)
        pers = np.zeros((n, n), dtype=np.int64)

    def rect(P, L, W, K):
        # Crossing cost rectangles with r = i+d+1, jj = i+L:
        # x = P[r][jj] - P[i][jj] - P[r][r] + P[i][r].
        return (
            strided(P[1:, L:], shape=(W, K), strides=(s0 + s1, s0))
            - np.diagonal(P, offset=L)[:W, None]
            - strided(P[1:, 1:], shape=(W, K), strides=(s0 + s1, s0 + s1))
            + strided(P[:, 1:], shape=(W, K), strides=(s0 + s1, s1))
        )

    for L in range(2, n + 1):
        W = n - L + 1  # windows of this length
        K = L - 1  # splits per window; d = k - i below
        rows = np.arange(W)
        tw = rect(Pt, L, W, K)
        dw = rect(Pd, L, W, K)
        g = np.diagonal(G, offset=L - 1)[:W, None]  # g[i][i+L-1]
        cost = tw // g + dw
        if pers_split:
            # ep_l[i, d] = ep[i, i+d]; ep_r[i, d] = ep[i+d+1, i+L-1],
            # likewise the persistent halves.
            ep_l = strided(ep, shape=(W, K), strides=(bs0 + bs1, bs1))
            ep_r = strided(ep[1:, L - 1:], shape=(W, K), strides=(bs0 + bs1, bs0))
            p_l = strided(pers, shape=(W, K), strides=(bs0 + bs1, bs1))
            p_r = strided(pers[1:, L - 1:], shape=(W, K), strides=(bs0 + bs1, bs0))
            total = np.maximum(ep_l, ep_r) + p_l + p_r + cost
        else:
            # left[i, d] = b[i, i+d]; right[i, d] = b[i+d+1, i+L-1].
            left = strided(b, shape=(W, K), strides=(bs0 + bs1, bs1))
            right = strided(b[1:, L - 1:], shape=(W, K), strides=(bs0 + bs1, bs0))
            total = (np.maximum(left, right) if shared else left + right) + cost
        kd = np.argmin(total, axis=1)
        b[rows, rows + K] = total[rows, kd]
        if pers_split:
            p_cost = rect(Pp, L, W, K) // g + dw
            new_pers = p_l[rows, kd] + p_r[rows, kd] + p_cost[rows, kd]
            pers[rows, rows + K] = new_pers
            ep[rows, rows + K] = total[rows, kd] - new_pers
        keys = list(zip(rows.tolist(), (rows + K).tolist()))
        split.update(zip(keys, (rows + kd).tolist()))
        if shared:
            if factoring == "auto":
                flags = (cost[rows, kd] > 0).tolist()
            else:
                flags = [factoring == "always"] * W
            factored.update(zip(keys, flags))
    return b.tolist(), split, factored


@dataclass
class SplitTable:
    """Optimal split points and factoring decisions from a DP run.

    ``split[(i, j)]`` is the chosen ``k`` for window ``(i, j)``;
    ``factored[(i, j)]`` records whether the merge at that window
    introduced a common loop factor (always true for DPPO; per the
    section 5.1 heuristic for SDPPO).
    """

    split: Dict[Tuple[int, int], int]
    factored: Dict[Tuple[int, int], bool]


def build_schedule_from_splits(
    context: ChainContext, table: SplitTable
) -> LoopedSchedule:
    """Reconstruct the nested SAS from a split table (section 4).

    The window ``(i, j)`` executes ``g_ij`` times per schedule period;
    nested inside an enclosing loop that already supplies
    ``enclosing`` iterations, its own loop factor is
    ``g_ij / enclosing`` when factored, and 1 when the factoring
    heuristic declined to factor (children then keep their own factors
    relative to ``enclosing``).
    """

    def build(i: int, j: int, enclosing: int) -> ScheduleNode:
        if i == j:
            count = context.rep(i) // enclosing
            return Firing(context.actor(i), count)
        key = (i, j)
        if key not in table.split:
            raise ScheduleError(f"split table missing window {key}")
        k = table.split[key]
        if table.factored.get(key, True):
            g = context.window_gcd(i, j)
            factor = g // enclosing
            inner = g
        else:
            factor = 1
            inner = enclosing
        left = build(i, k, inner)
        right = build(k + 1, j, inner)
        if factor == 1:
            # Avoid spurious unit loops; keep the tree binary by using a
            # unit Loop only when a child is itself a bare multi-node —
            # here children are single nodes, so inline them.
            return Loop(1, (left, right))
        return Loop(factor, (left, right))

    root = build(0, context.n - 1, 1)
    return LoopedSchedule([root]).normalized()
