"""Shared infrastructure for the dynamic-programming schedulers.

Both DPPO (non-shared model, section 4) and SDPPO (shared model,
section 5) run the same bottom-up DP over a fixed lexical order
``(A_1, ..., A_n)``: they differ only in how the costs of the two halves
of a split combine.  This module provides the common machinery:

* :class:`ChainContext` — the lexical order, repetitions, per-window
  gcds ``g[i][j] = gcd(q_i..q_j)``, and incremental split-crossing cost
  sums (EQ 3/4);
* :func:`build_schedule_from_splits` — reconstruct the nested looped
  schedule from a table of optimal split points, applying the factoring
  decision recorded per window.

Positions are 0-based; a *window* ``(i, j)`` covers actors
``order[i] .. order[j]`` inclusive.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError, ScheduleError
from ..sdf.graph import Edge, SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode
from ..sdf.topsort import is_topological_order

__all__ = ["ChainContext", "build_schedule_from_splits", "SplitTable"]


class ChainContext:
    """Precomputed quantities for DP over a lexical order.

    Parameters
    ----------
    graph:
        A consistent SDF graph.  For single appearance schedules to be
        valid the graph restricted to the order must be acyclic and the
        order topological; this is checked unless ``trusted=True``.
    order:
        The lexical order (a topological sort of the actors).
    """

    def __init__(
        self,
        graph: SDFGraph,
        order: Sequence[str],
        q: Optional[Dict[str, int]] = None,
        trusted: bool = False,
    ) -> None:
        if sorted(order) != sorted(graph.actor_names()):
            raise GraphStructureError(
                "lexical order must contain each actor exactly once"
            )
        if not trusted and not is_topological_order(graph, order):
            raise GraphStructureError(
                f"order {list(order)!r} is not a topological sort of "
                f"{graph.name!r}; a single appearance schedule with this "
                f"lexical order would deadlock"
            )
        self.graph = graph
        self.order: List[str] = list(order)
        self.n = len(self.order)
        self.q = q if q is not None else repetitions_vector(graph)
        self.position = {a: i for i, a in enumerate(self.order)}

        # g[i][j] = gcd(q_i, ..., q_j), stored as list of lists where
        # row i holds gcds for windows starting at i.
        self._g: List[List[int]] = []
        for i in range(self.n):
            row = [0] * self.n
            acc = 0
            for j in range(i, self.n):
                acc = gcd(acc, self.q[self.order[j]])
                row[j] = acc
            self._g.append(row)

        # Per-edge data keyed by (source position, sink position), with
        # parallel edges aggregated.  tnse_w is in words.
        self._edges_by_pos: Dict[Tuple[int, int], List[Edge]] = {}
        for e in graph.edges():
            ps, pt = self.position[e.source], self.position[e.sink]
            self._edges_by_pos.setdefault((ps, pt), []).append(e)

        # Outgoing / incoming edge positions for incremental crossing sums.
        self._out_pos: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(self.n)
        ]  # per source position: (sink position, tnse_w, delay_w)
        self._in_pos: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(self.n)
        ]  # per sink position: (source position, tnse_w, delay_w)
        for (ps, pt), edges in self._edges_by_pos.items():
            tw = sum(
                total_tokens_exchanged(e, self.q) * e.token_size for e in edges
            )
            dw = sum(e.delay * e.token_size for e in edges)
            self._out_pos[ps].append((pt, tw, dw))
            self._in_pos[pt].append((ps, tw, dw))

    # ------------------------------------------------------------------
    def window_gcd(self, i: int, j: int) -> int:
        """``g_ij = gcd(q(A_i), ..., q(A_j))``."""
        return self._g[i][j]

    def actor(self, i: int) -> str:
        return self.order[i]

    def rep(self, i: int) -> int:
        return self.q[self.order[i]]

    def crossing_cost(self, i: int, j: int, k: int) -> int:
        """``c_ij[k]`` (EQ 3): buffer words on edges crossing split ``k``.

        Sum over edges with source in window positions ``[i, k]`` and
        sink in ``[k+1, j]`` of ``TNSE(e)/g_ij`` words, plus the edges'
        initial-token words (a delayed crossing buffer additionally holds
        its ``del(e)`` tokens at the peak).
        """
        g = self._g[i][j]
        total = 0
        for ps in range(i, k + 1):
            for pt, tw, dw in self._out_pos[ps]:
                if k + 1 <= pt <= j:
                    total += tw // g + dw
        return total

    def crossing_costs_for_window(self, i: int, j: int) -> List[int]:
        """``[c_ij[k] for k in i..j-1]`` computed incrementally in O(deg)."""
        g = self._g[i][j]
        costs = []
        current = 0
        # k = i: edges leaving position i into (i, j].
        for pt, tw, dw in self._out_pos[i]:
            if i < pt <= j:
                current += tw // g + dw
        costs.append(current)
        for k in range(i + 1, j):
            # Window's split advances from k-1 to k: edges out of k that
            # land in (k, j] start crossing; edges into k from [i, k)
            # stop crossing.
            for pt, tw, dw in self._out_pos[k]:
                if k < pt <= j:
                    current += tw // g + dw
            for ps, tw, dw in self._in_pos[k]:
                if i <= ps < k:
                    current -= tw // g + dw
            costs.append(current)
        return costs

    def has_crossing_edge(self, i: int, j: int, k: int) -> bool:
        """True if any edge crosses split ``k`` of window ``(i, j)``.

        These are the *internal edges* of the merge in the factoring
        heuristic of section 5.1.
        """
        for ps in range(i, k + 1):
            for pt, _, _ in self._out_pos[ps]:
                if k + 1 <= pt <= j:
                    return True
        return False

    def single_crossing_edge_cost(self, i: int, j: int, k: int) -> int:
        """Crossing cost when the graph is a chain: the one edge (k, k+1)."""
        g = self._g[i][j]
        total = 0
        for pt, tw, dw in self._out_pos[k]:
            if pt == k + 1:
                total += tw // g + dw
        return total


@dataclass
class SplitTable:
    """Optimal split points and factoring decisions from a DP run.

    ``split[(i, j)]`` is the chosen ``k`` for window ``(i, j)``;
    ``factored[(i, j)]`` records whether the merge at that window
    introduced a common loop factor (always true for DPPO; per the
    section 5.1 heuristic for SDPPO).
    """

    split: Dict[Tuple[int, int], int]
    factored: Dict[Tuple[int, int], bool]


def build_schedule_from_splits(
    context: ChainContext, table: SplitTable
) -> LoopedSchedule:
    """Reconstruct the nested SAS from a split table (section 4).

    The window ``(i, j)`` executes ``g_ij`` times per schedule period;
    nested inside an enclosing loop that already supplies
    ``enclosing`` iterations, its own loop factor is
    ``g_ij / enclosing`` when factored, and 1 when the factoring
    heuristic declined to factor (children then keep their own factors
    relative to ``enclosing``).
    """

    def build(i: int, j: int, enclosing: int) -> ScheduleNode:
        if i == j:
            count = context.rep(i) // enclosing
            return Firing(context.actor(i), count)
        key = (i, j)
        if key not in table.split:
            raise ScheduleError(f"split table missing window {key}")
        k = table.split[key]
        if table.factored.get(key, True):
            g = context.window_gcd(i, j)
            factor = g // enclosing
            inner = g
        else:
            factor = 1
            inner = enclosing
        left = build(i, k, inner)
        right = build(k + 1, j, inner)
        if factor == 1:
            # Avoid spurious unit loops; keep the tree binary by using a
            # unit Loop only when a child is itself a bare multi-node —
            # here children are single nodes, so inline them.
            return Loop(1, (left, right))
        return Loop(factor, (left, right))

    root = build(0, context.n - 1, 1)
    return LoopedSchedule([root]).normalized()
