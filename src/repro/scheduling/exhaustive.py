"""Exact optimal SAS search for small graphs (section 7 context).

Constructing buffer-optimal single appearance schedules is NP-complete
under both buffer models (the paper, citing [3]), which is why RPMC and
APGAN exist.  For *small* graphs the optimum is computable outright:
the class of SASs for a delayless acyclic graph is exactly {topological
sort} x {loop hierarchy}, the hierarchy optimum for a fixed sort is
what DPPO/SDPPO compute, and topological sorts can be enumerated.

:func:`optimal_sas` therefore minimizes the chosen objective over every
topological sort — an exact oracle against which the heuristics'
optimality gap is measured (``experiments/optimality_gap.py``).

Objectives:

* ``"nonshared"`` — DPPO cost (order-optimal is exact per sort, so the
  result is the true buffer-optimal SAS);
* ``"shared"``   — first-fit allocation total over the SDPPO schedule
  (exact enumeration of sorts, heuristic nesting/packing per sort —
  the same inner flow the heuristic sorts get, so the comparison
  isolates the *topological sort* quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from ..sdf.topsort import all_topological_sorts, count_topological_sorts
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from .dppo import dppo
from .pipeline import implement

__all__ = ["OptimalSASResult", "optimal_sas"]


@dataclass
class OptimalSASResult:
    """The exact optimum over all topological sorts."""

    cost: int
    order: List[str]
    schedule: LoopedSchedule
    sorts_examined: int
    objective: str


def optimal_sas(
    graph: SDFGraph,
    objective: str = "nonshared",
    max_sorts: int = 50_000,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> OptimalSASResult:
    """Minimize ``objective`` over every topological sort of ``graph``.

    Raises
    ------
    GraphStructureError
        If the graph has more than ``max_sorts`` topological sorts
        (checked up front via the counting DP) or is cyclic.
    """
    if objective not in ("nonshared", "shared"):
        raise GraphStructureError(f"unknown objective {objective!r}")
    total = count_topological_sorts(graph)
    if total > max_sorts:
        raise GraphStructureError(
            f"graph {graph.name!r} has {total} topological sorts; "
            f"exceeds max_sorts={max_sorts}"
        )

    best_cost: Optional[int] = None
    best_order: List[str] = []
    best_schedule: Optional[LoopedSchedule] = None
    examined = 0
    for order in all_topological_sorts(graph):
        examined += 1
        if objective == "nonshared":
            result = dppo(graph, order)
            cost, schedule = result.cost, result.schedule
        else:
            result = implement(
                graph,
                order=order,
                occurrence_cap=occurrence_cap,
                verify=False,
            )
            cost, schedule = result.best_shared_total, result.sdppo_schedule
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_order = order
            best_schedule = schedule
    if best_schedule is None:  # pragma: no cover - empty graphs rejected
        raise GraphStructureError("graph has no topological sorts")
    return OptimalSASResult(
        cost=best_cost,
        order=best_order,
        schedule=best_schedule,
        sorts_examined=examined,
        objective=objective,
    )
