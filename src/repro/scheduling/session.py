"""Shared compilation sessions: per-graph precomputation reused across trials.

The paper's evaluation compiles the *same* graph under hundreds of
lexical orders — 1000-trial random searches (section 10.1), the
figure 25/26 order sweeps, and both heuristic sorts of every Table 1
row.  Everything that depends only on the graph is identical across
those trials:

* the repetitions vector (balance-equation solve);
* per-edge TNSE/delay word weights, aggregated per actor pair;
* the chain test (``chain_order``) and, for chain graphs, the entire
  order-independent precise DP of section 6;
* the BMLB lower bound.

A :class:`CompilationSession` computes each of these exactly once and
hands out per-order :class:`~repro.scheduling.common.ChainContext`
objects with ``trusted=True`` for orders produced by our own topological
sort generators, skipping the O(n·e) re-validation per trial.  The
pipeline entry points (:func:`~repro.scheduling.pipeline.implement`,
``implement_best``), the random-search baseline and the experiment
drivers all accept and thread a session; callers that don't pass one
get a fresh session per call, which preserves the original semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sdf.bounds import bmlb
from ..sdf.graph import SDFGraph
from ..sdf.io import canonical_hash
from ..sdf.repetitions import repetitions_vector
from .chain_sdppo import ChainSDPPOResult, chain_sdppo
from .common import (
    ChainContext,
    aggregate_pair_weights,
    broadcast_group_weights,
)

__all__ = ["CompilationSession"]


class CompilationSession:
    """Graph-level state shared by every compilation trial of one graph.

    Cheap to construct (one balance-equation solve plus one edge scan);
    everything else is computed lazily on first use and cached.  The
    session is read-only with respect to the graph, so one session can
    back any number of sequential trials.  (Sessions hold plain Python
    state and pickle with their graph, but the parallel experiment
    runner deliberately rebuilds one session per worker process instead
    of shipping cached state around.)
    """

    def __init__(self, graph: SDFGraph, backend: str = "auto") -> None:
        self.graph = graph
        #: Requested kernel backend ("auto", "python" or "native") for
        #: trials run through this session; :func:`implement` resolves
        #: it once per call against compiler availability.
        self.backend = backend
        #: The repetitions vector, solved once per graph.
        self.q: Dict[str, int] = repetitions_vector(graph)
        #: (source, sink) -> (TNSE words, delay words, delayed-edge
        #: TNSE words), parallel edges aggregated; reused by every
        #: per-order ChainContext.
        self.pair_weights: Dict[Tuple[str, str], Tuple[int, int, int]] = (
            aggregate_pair_weights(graph, self.q)
        )
        #: Broadcast-group weights (one shared buffer each), folded
        #: into every per-order context as an order-dependent virtual
        #: edge to the farthest member sink.
        self.broadcast_weights: Dict[
            str, Tuple[str, Tuple[str, ...], Tuple[int, int, int]]
        ] = broadcast_group_weights(graph, self.q)
        self._chain_order: Optional[List[str]] = None
        self._chain_checked = False
        self._chain_result: Optional[ChainSDPPOResult] = None
        self._bmlb: Optional[int] = None
        #: Chain-DP result cache statistics (hits = reuses of the
        #: order-independent section 6 DP), flushed by the pipeline.
        self.chain_dp_hits = 0
        self.chain_dp_misses = 0
        self._graph_digest: Optional[str] = None

    @property
    def graph_digest(self) -> str:
        """Content address of this session's graph.

        The SHA-256 of the graph's canonical JSON document
        (:func:`repro.sdf.io.canonical_hash`) — the same address the
        service layer uses to key its session LRU and as the graph
        component of artifact-cache keys, so a session, its cache
        entries, and its LRU slot always agree on identity.
        """
        if self._graph_digest is None:
            self._graph_digest = canonical_hash(self.graph)
        return self._graph_digest

    # ------------------------------------------------------------------
    @property
    def chain_order(self) -> Optional[List[str]]:
        """The graph's chain order, or None; computed once."""
        if not self._chain_checked:
            self._chain_order = self.graph.chain_order()
            self._chain_checked = True
        return self._chain_order

    def context_for(
        self, order: Sequence[str], trusted: bool = True
    ) -> ChainContext:
        """A :class:`ChainContext` for ``order`` over this session's graph.

        ``trusted`` must only be left True for orders that are
        topological by construction (our generators); pass False for
        externally supplied orders to keep the validation.
        """
        return ChainContext(
            self.graph,
            order,
            q=self.q,
            trusted=trusted,
            pair_weights=self.pair_weights,
            broadcast_weights=self.broadcast_weights,
        )

    def chain_sdppo_result(self) -> ChainSDPPOResult:
        """The section 6 precise chain DP, order-independent per graph.

        Only meaningful when :attr:`chain_order` is not None; cached so
        a 1000-trial search on a chain graph pays the DP once.
        """
        if self._chain_result is None:
            self.chain_dp_misses += 1
            self._chain_result = chain_sdppo(self.graph, q=self.q)
        else:
            self.chain_dp_hits += 1
        return self._chain_result

    def bmlb(self) -> int:
        """The buffer-memory lower bound of the graph, cached."""
        if self._bmlb is None:
            self._bmlb = bmlb(self.graph)
        return self._bmlb
