"""Scheduling cyclic SDF graphs (substrate from reference [3], section 7).

The paper's flow — topological sort, SAS, DPPO — assumes an acyclic
graph.  General SDF graphs have feedback loops; the standard treatment
(Bhattacharyya, Murthy & Lee [3]) decomposes the graph into strongly
connected components, schedules each SCC internally (possible iff its
initial tokens break the cyclic dependency), clusters each SCC into a
single composite actor, and runs the acyclic machinery on the quotient
graph.  Code size stays near-minimal: each actor still appears once,
inside its SCC's subschedule, which appears once in the top-level SAS.

This module provides:

* :func:`strongly_connected_components` — Tarjan's algorithm;
* :func:`cluster_cycles` — the quotient graph plus per-SCC metadata;
* :func:`schedule_cyclic` — the full flow: quotient SAS through
  DPPO/SDPPO with composite actors expanded back into per-SCC
  subschedules built by greedy symbolic execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError, InconsistentGraphError
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode
from ..sdf.simulate import validate_schedule
from .dppo import dppo
from .sdppo import sdppo

__all__ = [
    "strongly_connected_components",
    "cluster_cycles",
    "schedule_cyclic",
    "CyclicScheduleResult",
]


def strongly_connected_components(graph: SDFGraph) -> List[List[str]]:
    """Tarjan's SCC algorithm; components in reverse topological order
    of the condensation, members in visitation order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]
    # Successor lists fetched once per node: the resume loop below runs
    # once per tree child, and refetching (plus rescanning from a stale
    # index) made wide nodes quadratic in their degree.
    succ_cache: Dict[str, List[str]] = {}

    def strongconnect(root: str) -> None:
        # Iterative Tarjan to survive deep graphs.
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
                succ_cache[node] = graph.successors(node)
            successors = succ_cache[node]
            advanced = False
            position = child_index
            while position < len(successors):
                succ = successors[position]
                position += 1
                if succ not in index:
                    # Store the advanced index so already-processed
                    # successors are never rescanned on resume.
                    work[-1] = (node, position)
                    work.append((succ, 0))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for actor in graph.actor_names():
        if actor not in index:
            strongconnect(actor)
    return components


@dataclass
class ClusteredCycles:
    """The acyclic quotient of a cyclic graph.

    ``quotient`` has one actor per SCC (named ``scc0``, ``scc1``, ... for
    multi-actor components, the original name for trivial ones);
    ``members`` maps quotient actor names to original actor lists;
    ``subschedules`` holds each multi-actor SCC's internal schedule for
    one firing of its composite actor.
    """

    quotient: SDFGraph
    members: Dict[str, List[str]]
    subschedules: Dict[str, LoopedSchedule]


def cluster_cycles(graph: SDFGraph) -> ClusteredCycles:
    """Cluster each SCC into a composite actor; quotient is acyclic.

    Each multi-actor SCC must be internally schedulable using only its
    own initial tokens (otherwise no valid schedule exists at all).  The
    composite fires ``g = gcd(q | SCC)`` times per period; one firing
    runs each member ``q / g`` times.

    Raises
    ------
    InconsistentGraphError
        If some SCC deadlocks internally.
    """
    q = repetitions_vector(graph)
    components = strongly_connected_components(graph)
    members: Dict[str, List[str]] = {}
    composite_of: Dict[str, str] = {}
    subschedules: Dict[str, LoopedSchedule] = {}
    composite_reps: Dict[str, int] = {}

    next_id = 0
    taken = set(graph.actor_names())
    for component in components:
        if len(component) == 1 and not any(
            e.sink == component[0]
            for e in graph.out_edges(component[0])
        ):
            name = component[0]
            members[name] = component
            composite_of[component[0]] = name
            composite_reps[name] = q[component[0]]
            continue
        # Composite names must be fresh: an original actor literally
        # named "scc0" would otherwise collide in the quotient.
        while f"scc{next_id}" in taken:
            next_id += 1
        name = f"scc{next_id}"
        taken.add(name)
        next_id += 1
        members[name] = list(component)
        for actor in component:
            composite_of[actor] = name
        g = 0
        for actor in component:
            g = gcd(g, q[actor])
        composite_reps[name] = g
        # Internal schedule for ONE composite firing: each member fires
        # q/g times, enabled only by the SCC's own initial tokens.
        sub = graph.subgraph(component, name=name)
        inner_q = {a: q[a] // g for a in component}
        subschedules[name] = _scc_subschedule(sub, inner_q)

    quotient = SDFGraph(f"{graph.name}_quotient")
    for name, reps in composite_reps.items():
        quotient.add_actor(name)
    for e in graph.edges():
        cu, cv = composite_of[e.source], composite_of[e.sink]
        if cu == cv:
            continue  # internal to an SCC
        # Per composite firing: source side moves prod * (q_src / g_src)
        # tokens, sink side cns * (q_snk / g_snk).
        prod = e.production * (q[e.source] // composite_reps[cu])
        cns = e.consumption * (q[e.sink] // composite_reps[cv])
        quotient.add_edge(cu, cv, prod, cns, e.delay, e.token_size)
    if not quotient.is_acyclic():
        raise GraphStructureError(
            "SCC quotient is cyclic — internal error in clustering"
        )
    return ClusteredCycles(
        quotient=quotient, members=members, subschedules=subschedules
    )


def _scc_subschedule(sub: SDFGraph, inner_q: Dict[str, int]) -> LoopedSchedule:
    """Greedy symbolic execution of one composite firing of an SCC.

    Each actor fires to exhaustion before the scan moves on, and its
    consecutive firings are emitted as one ``Firing(actor, count)``
    node — so whenever the greedy order admits it (e.g. enough initial
    tokens to run each member's full blocking factor back to back) the
    subschedule is single appearance instead of a flat firing list.
    """
    tokens = {e.key: e.delay for e in sub.edges()}
    remaining = dict(inner_q)
    runs: List[Tuple[str, int]] = []

    def can_fire(a: str) -> bool:
        return remaining[a] > 0 and all(
            tokens[e.key] >= e.consumption for e in sub.in_edges(a)
        )

    total_fired = 0
    total = sum(inner_q.values())
    while total_fired < total:
        fired = False
        for a in sub.actor_names():
            count = 0
            # Token-by-token so self-loops stay exact: a bulk update
            # could overdraw an edge that both feeds and drains ``a``.
            while can_fire(a):
                for e in sub.in_edges(a):
                    tokens[e.key] -= e.consumption
                for e in sub.out_edges(a):
                    tokens[e.key] += e.production
                remaining[a] -= 1
                count += 1
            if count:
                if runs and runs[-1][0] == a:
                    runs[-1] = (a, runs[-1][1] + count)
                else:
                    runs.append((a, count))
                total_fired += count
                fired = True
        if not fired:
            raise InconsistentGraphError(
                f"strongly connected component {sub.name!r} deadlocks: "
                f"insufficient initial tokens on its feedback edges",
                kind="deadlock",
            )
    return LoopedSchedule([Firing(a, count) for a, count in runs])


@dataclass
class CyclicScheduleResult:
    """A schedule for a cyclic graph plus its quotient bookkeeping."""

    schedule: LoopedSchedule
    clustered: ClusteredCycles
    quotient_schedule: LoopedSchedule


def schedule_cyclic(
    graph: SDFGraph, shared: bool = True
) -> CyclicScheduleResult:
    """Schedule an arbitrary consistent SDF graph.

    Acyclic graphs pass straight through DPPO/SDPPO.  Cyclic graphs are
    SCC-clustered; the quotient's SAS is post-optimized (shared or
    non-shared objective) and composite firings are expanded into the
    per-SCC subschedules.  The result is validated by token simulation
    before being returned.
    """
    clustered = cluster_cycles(graph)
    quotient = clustered.quotient
    order = quotient.topological_order()
    optimizer = sdppo if shared else dppo
    quotient_schedule = optimizer(quotient, order).schedule

    def expand(node: ScheduleNode) -> ScheduleNode:
        if isinstance(node, Firing):
            sub = clustered.subschedules.get(node.actor)
            if sub is None:
                return node
            body = tuple(sub.body)
            if len(body) == 1 and node.count == 1:
                return body[0]
            return Loop(node.count, body)
        return Loop(node.count, tuple(expand(child) for child in node.body))

    expanded = LoopedSchedule(
        [expand(node) for node in quotient_schedule.body]
    ).normalized()
    validate_schedule(graph, expanded)
    return CyclicScheduleResult(
        schedule=expanded,
        clustered=clustered,
        quotient_schedule=quotient_schedule,
    )
