"""Memory-constrained vectorization: blocking firings under a budget.

The paper's entire cost model trades buffer words for schedule
structure; memory-constrained vectorization (Lin/Wu/Bhattacharyya)
pulls the same lever in the other direction: *blocking* consecutive
firings of an actor into one counted firing block amortizes per-firing
dispatch overhead, at the price of larger live windows on the edges the
block spans.  This module rewrites a single appearance schedule by
*loop fission* — distributing a loop over its body hoists every child
to a bigger block factor::

    (3 A (2 B)) (2 C)   ->   (3 A) (6 B) (2 C)

turning seven dispatch blocks per period into three, without changing
any actor's firing count.  Fission is only applied where it provably
preserves validity (no lexically-backward edge inside the fissioned
body, see :func:`fission_safe`), so delayed feedback and the SCC bodies
of cyclic schedules decline cleanly and keep their original nesting.

Every candidate blocking is *re-costed, not guessed*: the blocked
schedule goes through the real lifetime extraction
(:func:`repro.lifetimes.intervals.extract_lifetimes`) and both
first-fit orderings, and a candidate is only applied while the packed
pool total stays within ``memory_budget``.  ``memory_budget=None``
means unconstrained: every safe fission is applied, which on an
acyclic delay-free SAS degenerates to the flat schedule
``(q1 x1)...(qn xn)`` — maximal blocks, maximal buffers, the far end
of the throughput/memory Pareto frontier that
``benchmarks/bench_vectorize.py`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import SDFError
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode
from ..sdf.simulate import validate_schedule
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP

__all__ = [
    "VectorizeResult",
    "vectorize_schedule",
    "fission_safe",
    "fission_candidates",
    "dispatch_blocks",
    "blocked_cost",
]


def _actors_of(node: ScheduleNode, into: Optional[set] = None) -> set:
    if into is None:
        into = set()
    if isinstance(node, Firing):
        into.add(node.actor)
    else:
        for child in node.body:
            _actors_of(child, into)
    return into


def fission_safe(graph: SDFGraph, loop: Loop) -> bool:
    """True when distributing ``loop`` over its body preserves validity.

    Fission turns ``(n c1 c2 ... ck)`` into ``hoist(c1)...hoist(ck)``:
    all ``n`` iterations of each child run back to back.  Relative to
    the original interleaving, a child's own firing subsequence is
    unchanged and consumption on a lexically-*forward* edge (producer
    in an earlier child) only moves later — tokens accumulate, nothing
    can underflow.  What breaks is a lexically-*backward* edge inside
    the body: a consumer in an earlier child than its producer lives on
    initial tokens replenished once per iteration, and hoisting the
    consumer's whole iteration count ahead of the producer would drain
    the delay dry.  That is exactly the shape of delayed feedback and
    of the SCC subschedules produced by cyclic clustering, so the pass
    declines there and the original nesting survives.  An actor
    appearing in more than one child (non-SAS bodies) is likewise
    declined: fission would reorder the actor against itself.
    """
    position: Dict[str, int] = {}
    for i, child in enumerate(loop.body):
        for a in _actors_of(child):
            if a in position:
                return False
            position[a] = i
    for e in graph.edges():
        i = position.get(e.source)
        j = position.get(e.sink)
        if i is None or j is None:
            continue
        if j < i:  # lexically backward within the fissioned body
            return False
    return True


def _hoist(loop: Loop) -> List[ScheduleNode]:
    """Distribute ``loop`` over its body, multiplying child counts."""
    out: List[ScheduleNode] = []
    for child in loop.body:
        if isinstance(child, Firing):
            out.append(Firing(child.actor, child.count * loop.count))
        else:
            out.append(Loop(child.count * loop.count, child.body))
    return out


def fission_candidates(
    graph: SDFGraph, schedule: LoopedSchedule
) -> List[LoopedSchedule]:
    """Every schedule reachable from ``schedule`` by one safe fission.

    Candidates are returned normalized (unit loops collapsed, nested
    single-child loops merged) and in a deterministic tree-walk order.
    """
    results: List[LoopedSchedule] = []

    def walk(
        nodes: Tuple[ScheduleNode, ...],
        rebuild: Callable[[List[ScheduleNode]], LoopedSchedule],
    ) -> None:
        for idx, node in enumerate(nodes):
            if not isinstance(node, Loop):
                continue
            if len(node.body) >= 2 and fission_safe(graph, node):
                spliced = (
                    list(nodes[:idx]) + _hoist(node) + list(nodes[idx + 1:])
                )
                results.append(rebuild(spliced))

            def rebuild_child(
                body: List[ScheduleNode],
                idx: int = idx,
                node: Loop = node,
                nodes: Tuple[ScheduleNode, ...] = nodes,
                rebuild: Callable = rebuild,
            ) -> LoopedSchedule:
                return rebuild(
                    list(nodes[:idx])
                    + [Loop(node.count, tuple(body))]
                    + list(nodes[idx + 1:])
                )

            walk(node.body, rebuild_child)

    walk(
        schedule.body,
        lambda body: LoopedSchedule(body).normalized(),
    )
    return results


def dispatch_blocks(
    schedule: LoopedSchedule,
) -> Tuple[int, int, Dict[str, int]]:
    """``(blocks, firings, block_factors)`` of one schedule period.

    A *dispatch block* is one visit to a ``Firing`` leaf: the generated
    loop nest reaches the leaf and fires its actor ``count`` times back
    to back (one batched call in the vectorized backends).  The block
    factor of an actor is the largest such ``count`` — for a SAS, the
    one leaf's count.  ``firings / blocks`` is the amortization the
    blocking buys over firing-at-a-time dispatch.
    """
    blocks = 0
    firings = 0
    factors: Dict[str, int] = {}

    def walk(node: ScheduleNode, multiplier: int) -> None:
        nonlocal blocks, firings
        if isinstance(node, Firing):
            blocks += multiplier
            firings += multiplier * node.count
            factors[node.actor] = max(factors.get(node.actor, 0), node.count)
        else:
            for child in node.body:
                walk(child, multiplier * node.count)

    for node in schedule.body:
        walk(node, 1)
    return blocks, firings, factors


def blocked_cost(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    q: Optional[Dict[str, int]] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    backend: str = "python",
) -> int:
    """Honest shared-memory cost of a (blocked) SAS, in words.

    Runs the real downstream pipeline — lifetime extraction,
    intersection graph, both first-fit orderings — and returns the
    better pool total.  This is the quantity the ``memory_budget``
    constrains, and the quantity ``oracle.vectorize`` independently
    re-derives to check a claimed blocking against its budget.
    """
    from ..allocation.first_fit import ffdur, ffstart
    from ..allocation.intersection_graph import build_intersection_graph
    from ..lifetimes.intervals import extract_lifetimes

    if q is None:
        q = repetitions_vector(graph)
    lifetimes = extract_lifetimes(graph, schedule, q)
    buffers = lifetimes.as_list()
    wig = build_intersection_graph(buffers, occurrence_cap=occurrence_cap)
    dur = ffdur(
        buffers, graph=wig, occurrence_cap=occurrence_cap, backend=backend
    )
    start = ffstart(
        buffers, graph=wig, occurrence_cap=occurrence_cap, backend=backend
    )
    return min(dur.total, start.total)


@dataclass
class VectorizeResult:
    """The outcome of one vectorization pass.

    ``schedule`` is the blocked schedule (identical to
    ``baseline_schedule`` when no fission fit the budget or none was
    safe); ``cost``/``baseline_cost`` are the honest re-costed pool
    totals in words, or ``None`` when the schedule shape does not
    support costing (non-SAS cyclic expansions — the pass then returns
    the identity).  ``blocks``/``firings`` describe one period of the
    blocked schedule; ``steps`` counts the fissions applied.
    """

    schedule: LoopedSchedule
    baseline_schedule: LoopedSchedule
    block_factors: Dict[str, int] = field(default_factory=dict)
    cost: Optional[int] = None
    baseline_cost: Optional[int] = None
    memory_budget: Optional[int] = None
    blocks: int = 0
    firings: int = 0
    baseline_blocks: int = 0
    steps: int = 0

    @property
    def amortization(self) -> float:
        """Firings per dispatch block of the blocked schedule."""
        return self.firings / self.blocks if self.blocks else 0.0

    @property
    def baseline_amortization(self) -> float:
        return (
            self.firings / self.baseline_blocks
            if self.baseline_blocks else 0.0
        )


def vectorize_schedule(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    q: Optional[Dict[str, int]] = None,
    memory_budget: Optional[int] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    backend: str = "python",
    recorder=None,
) -> VectorizeResult:
    """Block consecutive firings of ``schedule`` under a memory budget.

    Greedy best-first loop fission: at each step every safe single
    fission of the current schedule is enumerated, re-costed through
    the real lifetime/first-fit pipeline, and the candidate with the
    fewest dispatch blocks (ties: cheapest, then stable text order) is
    applied — provided its honest cost stays within ``memory_budget``.
    The loop stops when no candidate fits, so a budget below the
    cheapest blocking returns the schedule unchanged (the identity
    pass).  With ``memory_budget=None`` every safe fission is applied
    without per-step costing (the order cannot affect the fixed point)
    and only the final schedule is costed.

    The result's schedule is always validated against the token
    interpreter before being returned; schedules the cost model cannot
    process (non-single-appearance cyclic expansions) fall back to the
    identity with ``cost=None``.
    """
    if q is None:
        q = repetitions_vector(graph)
    base = schedule.normalized()
    base_blocks, firings, base_factors = dispatch_blocks(base)

    def identity(cost: Optional[int]) -> VectorizeResult:
        return VectorizeResult(
            schedule=base,
            baseline_schedule=base,
            block_factors=base_factors,
            cost=cost,
            baseline_cost=cost,
            memory_budget=memory_budget,
            blocks=base_blocks,
            firings=firings,
            baseline_blocks=base_blocks,
            steps=0,
        )

    try:
        baseline_cost = blocked_cost(
            graph, base, q, occurrence_cap=occurrence_cap, backend=backend
        )
    except SDFError:
        # The cost model needs a single appearance schedule; cyclic
        # expansions that stay non-SA cannot be re-costed, so the pass
        # declines entirely rather than guessing.
        return identity(None)

    current = base
    current_cost = baseline_cost
    current_blocks = base_blocks
    steps = 0

    if memory_budget is None:
        # Unconstrained: fission to the fixed point, cost once at the
        # end.  Candidate order cannot change the fixed point (each
        # fission only exposes, never forecloses, further safe ones).
        while True:
            candidates = fission_candidates(graph, current)
            if not candidates:
                break
            current = candidates[0]
            steps += 1
        if steps:
            current_cost = blocked_cost(
                graph, current, q,
                occurrence_cap=occurrence_cap, backend=backend,
            )
            current_blocks = dispatch_blocks(current)[0]
    else:
        while True:
            scored: List[Tuple[int, int, str, LoopedSchedule]] = []
            for cand in fission_candidates(graph, current):
                try:
                    cost = blocked_cost(
                        graph, cand, q,
                        occurrence_cap=occurrence_cap, backend=backend,
                    )
                except SDFError:
                    continue
                if cost > memory_budget:
                    continue
                blocks = dispatch_blocks(cand)[0]
                scored.append((blocks, cost, str(cand), cand))
            if not scored:
                break
            scored.sort(key=lambda item: (item[0], item[1], item[2]))
            blocks, cost, _, cand = scored[0]
            if blocks >= current_blocks:
                break
            current, current_cost, current_blocks = cand, cost, blocks
            steps += 1

    if steps:
        # Belt and braces: the safety rule is proved above, but the
        # interpreter stays the judge of anything this pass emits.
        validate_schedule(graph, current, recorder=recorder)
    if recorder is not None:
        recorder.count("vectorize.fissions", steps)
        recorder.count("vectorize.blocks", current_blocks)
    blocks, firings, factors = dispatch_blocks(current)
    return VectorizeResult(
        schedule=current,
        baseline_schedule=base,
        block_factors=factors,
        cost=current_cost,
        baseline_cost=baseline_cost,
        memory_budget=memory_budget,
        blocks=blocks,
        firings=firings,
        baseline_blocks=base_blocks,
        steps=steps,
    )
