"""APGAN: acyclic pairwise grouping of adjacent nodes (section 7).

A bottom-up heuristic for constructing the lexical order (and nesting)
of a single appearance schedule: repeatedly cluster the adjacent actor
pair that "communicates most heavily" — concretely, the pair whose
repetition counts have the largest gcd, so the pair ends up sharing the
deepest loop — subject to the merge not introducing a cycle among
clusters.  For a broad class of graphs APGAN provably minimizes the
non-shared buffer bound over all SASs (reference [3] of the paper).

Tie-breaking is deterministic: among pairs with maximal gcd, the pair
whose connecting edges carry the most tokens per period is preferred
(heavier communication deeper in the loop nest), then earliest edge
insertion order.  This pins down the schedule for reproducible
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Tuple

from ..exceptions import GraphStructureError
from ..sdf.clustering import ClusterGraph, ClusterNode
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode

__all__ = ["APGANResult", "apgan"]


@dataclass
class APGANResult:
    """Outcome of APGAN clustering.

    ``schedule`` is the SAS implied by the cluster hierarchy (before any
    DPPO post-optimization); ``order`` its lexical order — the
    topological sort handed to DPPO/SDPPO in the paper's flow
    (figure 21).
    """

    schedule: LoopedSchedule
    order: List[str]


def apgan(
    graph: SDFGraph,
    q: Optional[Dict[str, int]] = None,
    recorder=None,
) -> APGANResult:
    """Run APGAN on a connected, consistent, acyclic SDF graph.

    With a ``recorder``, tallies one ``apgan.merges`` count per
    pairwise cluster merge (a connected graph performs exactly
    ``num_actors - 1`` of them).

    Raises
    ------
    GraphStructureError
        If the graph is cyclic (top-level APGAN in the paper's flow
        operates on acyclic graphs) or clustering stalls (cannot happen
        on a connected DAG, kept as an internal invariant check).
    """
    if not graph.is_acyclic():
        raise GraphStructureError(
            f"apgan requires an acyclic graph; {graph.name!r} has a cycle"
        )
    if graph.num_actors == 0:
        raise GraphStructureError("apgan requires a non-empty graph")
    if q is None:
        q = repetitions_vector(graph)

    cluster_graph = ClusterGraph(graph, q)

    # Rank per adjacent cluster pair, maintained incrementally across
    # merges: total tokens per period over all edges joining the pair
    # (the deterministic tie-break), then earliest edge insertion order.
    # Distinct pairs aggregate disjoint edge sets, so their min ranks —
    # and hence their scores — are strictly distinct.
    pair_rank: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for rank, e in enumerate(graph.edges()):
        key = (
            cluster_graph.cluster_id_of(e.source),
            cluster_graph.cluster_id_of(e.sink),
        )
        tokens, first = pair_rank.get(key, (0, rank))
        pair_rank[key] = (tokens + total_tokens_exchanged(e, q), first)

    while cluster_graph.num_clusters() > 1:
        # The merge winner is the max-score pair whose merge keeps the
        # cluster graph acyclic; scan candidates best-first so the DFS
        # cycle check usually runs once.
        candidates = [
            (
                (
                    gcd(
                        cluster_graph.cluster(cu).repetitions,
                        cluster_graph.cluster(cv).repetitions,
                    ),
                    tokens,
                    -first,
                ),
                cu,
                cv,
            )
            for (cu, cv), (tokens, first) in pair_rank.items()
        ]
        best_pair: Optional[Tuple[int, int]] = None
        # The max-score pair almost always passes the cycle check; only
        # sort the full candidate list when it does not.  (No candidates
        # at all means the graph is disconnected — fall through to the
        # stall guard below.)
        if candidates:
            _score, cu, cv = max(candidates)
            if not cluster_graph.merge_would_create_cycle(cu, cv):
                best_pair = (cu, cv)
            else:
                candidates.sort(reverse=True)
                for _score, cu, cv in candidates:
                    if not cluster_graph.merge_would_create_cycle(cu, cv):
                        best_pair = (cu, cv)
                        break
        if best_pair is None:
            # A connected DAG always admits some cycle-free adjacent
            # merge (e.g. a source with a single successor subtree), but
            # guard against disconnected inputs.
            raise GraphStructureError(
                f"apgan stalled on {graph.name!r}; is the graph connected?"
            )
        if recorder is not None:
            recorder.count("apgan.merges")
        cid = cluster_graph.merge(*best_pair)
        merged = set(best_pair)
        folded: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for (cu, cv), (tokens, first) in pair_rank.items():
            if cu in merged:
                if cv in merged:
                    continue  # internalised by the merge
                cu = cid
            elif cv in merged:
                cv = cid
            prev = folded.get((cu, cv))
            if prev is not None:
                tokens += prev[0]
                first = first if first < prev[1] else prev[1]
            folded[(cu, cv)] = (tokens, first)
        pair_rank = folded

    root_id = cluster_graph.cluster_ids()[0]
    root = cluster_graph.cluster(root_id)
    node = _schedule_node(graph, q, root, enclosing=1)
    schedule = LoopedSchedule([node]).normalized()
    return APGANResult(schedule=schedule, order=schedule.lexical_order())


def _schedule_node(
    graph: SDFGraph, q: Dict[str, int], cluster: ClusterNode, enclosing: int
) -> ScheduleNode:
    """Build the SAS node for ``cluster`` given ``enclosing`` outer firings.

    The cluster as a unit fires ``cluster.repetitions`` times per period;
    nested inside loops already supplying ``enclosing`` iterations its
    loop factor is ``repetitions / enclosing``.
    """
    if cluster.is_leaf():
        actor = cluster.sole_member()
        return Firing(actor, q[actor] // enclosing)
    first, second = cluster.hierarchy
    # Order the pair topologically: any edge from `second`'s members to
    # `first`'s members means `second` must precede.  (The cluster graph
    # stays acyclic, so edges between the two go one way only.)
    if any(
        graph.has_edge(b, a) for b in second.members for a in first.members
    ):
        first, second = second, first
    reps = cluster.repetitions
    children = (
        _schedule_node(graph, q, first, enclosing=reps),
        _schedule_node(graph, q, second, enclosing=reps),
    )
    factor = reps // enclosing
    return Loop(factor, children) if factor > 1 else Loop(1, children)
