"""The end-to-end compiler flow of the paper (figure 21).

For a consistent acyclic SDF graph:

1. generate a topological sort with RPMC or APGAN (section 7);
2. post-optimize its flat SAS with DPPO (non-shared cost, the baseline)
   and with SDPPO (shared cost; the precise chain DP when the graph is a
   chain);
3. extract buffer lifetimes from the SDPPO schedule (section 8);
4. compute the optimistic/pessimistic clique-weight bounds;
5. allocate with first-fit under both orderings (``ffdur``, ``ffstart``)
   and verify the winner.

:func:`implement` runs the flow for one topological-sort method;
:func:`implement_best` runs both methods and both orderings, reproducing
exactly the comparison columns of Table 1.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from ..lifetimes.intervals import LifetimeSet, extract_lifetimes
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..allocation.clique import mcw_optimistic, mcw_pessimistic
from ..allocation.first_fit import Allocation, ffdur, ffstart
from ..allocation.intersection_graph import build_intersection_graph
from ..allocation.verify import verify_allocation
from ..obs.recorder import active as _active_recorder
from .apgan import apgan
from .dppo import dppo
from .rpmc import rpmc
from .sdppo import sdppo
from .session import CompilationSession
from .vectorize import VectorizeResult, vectorize_schedule

__all__ = ["ImplementationResult", "implement", "implement_best", "BestResult"]


@dataclass
class ImplementationResult:
    """Everything the flow produces for one topological-sort method.

    Sizes are in words.  ``allocation`` is the better of the two
    first-fit runs (verified feasible); ``ffdur_total``/``ffstart_total``
    are the individual totals reported in Table 1.
    """

    method: str
    order: List[str]
    dppo_cost: int
    dppo_schedule: LoopedSchedule
    sdppo_cost: int
    sdppo_schedule: LoopedSchedule
    lifetimes: LifetimeSet
    mco: int
    mcp: int
    ffdur_total: int
    ffstart_total: int
    allocation: Allocation
    bmlb: int
    #: Present when the flow ran with ``vectorize=True``: the blocking
    #: pass outcome.  ``lifetimes``/``allocation`` then describe the
    #: *blocked* schedule (``vectorize.schedule``); ``sdppo_cost`` and
    #: ``sdppo_schedule`` keep the unblocked DP output so the Table 1
    #: quantities stay comparable across runs.
    vectorize: Optional["VectorizeResult"] = None

    @property
    def best_shared_total(self) -> int:
        return min(self.ffdur_total, self.ffstart_total)

    @property
    def improvement_percent(self) -> float:
        """Shared improvement over this method's own non-shared DPPO."""
        if self.dppo_cost == 0:
            return 0.0
        return 100.0 * (self.dppo_cost - self.best_shared_total) / self.dppo_cost


def _topological_order_for(
    graph: SDFGraph,
    method: str,
    seed: int,
    q: Optional[Dict[str, int]] = None,
    recorder=None,
) -> List[str]:
    if method == "rpmc":
        return rpmc(graph, q=q, seed=seed, recorder=recorder).order
    if method == "apgan":
        return apgan(graph, q=q, recorder=recorder).order
    if method == "natural":
        return graph.topological_order()
    raise GraphStructureError(
        f"unknown topological sort method {method!r}; "
        f"expected 'rpmc', 'apgan' or 'natural'"
    )


@contextmanager
def _stage(report, recorder, name: str) -> Iterator[Dict[str, Any]]:
    """One pipeline stage: a TimingReport row and/or a recorder span.

    ``report`` is anything with a ``TimingReport``-shaped ``stage``
    context manager (kept duck-typed: importing
    ``repro.experiments.runner`` here would cycle through the
    experiments package back into scheduling); ``recorder`` follows the
    :class:`repro.obs.Recorder` protocol.  The yielded meta dict is
    shared with the span's attrs, so mutations inside the block land in
    both outputs.  Both sides close on exception (the row records
    ``meta["error"]``, the span its ``error`` field), which is what
    keeps partial profiles available when a stage raises.
    """
    meta: Dict[str, Any] = {}
    with ExitStack() as stack:
        if report is not None:
            meta = stack.enter_context(report.stage(name))
        if recorder is not None:
            span = stack.enter_context(recorder.span(name))
            if span is not None:
                span.attrs = meta
        yield meta


def implement(
    graph: SDFGraph,
    method: str = "rpmc",
    order: Optional[Sequence[str]] = None,
    seed: int = 0,
    use_chain_dp: bool = True,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    verify: bool = True,
    session: Optional[CompilationSession] = None,
    trusted_order: bool = False,
    report=None,
    recorder=None,
    backend: Optional[str] = None,
    vectorize: bool = False,
    memory_budget: Optional[int] = None,
) -> ImplementationResult:
    """Run the full flow with one topological-sort method.

    This is the package's main entry point: topological sort, the
    DPPO/SDPPO dynamic programs, lifetime extraction, clique bounds,
    first-fit allocation under both orderings, and verification of the
    winner — everything one Table 1 cell needs.  The call is
    deterministic given ``(graph, method, seed)``; the compilation
    service (:mod:`repro.serve`) relies on that to cache results
    content-addressed.

    Parameters
    ----------
    graph:
        A consistent, acyclic :class:`~repro.sdf.graph.SDFGraph`.
    method:
        ``"rpmc"``, ``"apgan"``, or ``"natural"`` (the deterministic
        topological order; useful as a naive baseline).  Ignored when an
        explicit ``order`` is supplied (reported as ``"given"``).
    order:
        An explicit actor order to schedule instead of running a
        heuristic; see ``trusted_order``.
    seed:
        Seed for RPMC's randomized cut selection (the other methods
        are deterministic and ignore it).
    use_chain_dp:
        Use the precise triple DP of section 6 when the graph is
        chain-structured (falls back to EQ 5's heuristic otherwise).
    occurrence_cap:
        Cap on periodic-occurrence enumeration in intersection tests.
    verify:
        Independently verify the winning allocation (definition 5).
    session:
        A :class:`CompilationSession` for ``graph``, so repeated calls
        (search trials, the RPMC/APGAN pair) share the graph-level
        precomputation.  A fresh session is created when absent.
    trusted_order:
        Declare an explicitly supplied ``order`` topological by
        construction, skipping re-validation.  Orders generated here
        (``method=...``) are always trusted; leave False for orders
        from outside the package's own generators.
    report:
        A ``TimingReport`` (duck-typed) to receive one wall-time row
        per pipeline stage — the ``repro compile --profile`` hook.
        Partial rows survive a stage that raises (the row carries
        ``meta["error"]``).
    recorder:
        A :class:`repro.obs.Recorder` for hierarchical spans and work
        counters (DP cells, window-cache hits, first-fit probes...).
        The default ``None`` takes the uninstrumented code path.
    backend:
        Kernel backend for the hot loops: ``"python"`` runs the pure
        interpreter (and numpy, when eligible) paths only; ``"native"``
        and ``"auto"`` run the cc-compiled DP and first-fit kernels
        (:mod:`repro.native`) when a compiler is available —
        bit-identical results, with a silent fall-through to Python
        (counted as ``native.fallback``) otherwise.  ``None`` (the
        default) inherits the session's backend, itself ``"auto"`` by
        default.  The section 6 chain DP always runs in Python.
    vectorize:
        Run the blocking pass (:mod:`repro.scheduling.vectorize`) on
        the SDPPO schedule and carry the *blocked* schedule through
        lifetime extraction, allocation and verification.  The result's
        ``vectorize`` field holds the pass outcome (block factors,
        re-costed totals); ``sdppo_schedule``/``sdppo_cost`` keep the
        unblocked DP output.
    memory_budget:
        Word budget for the blocking pass (requires
        ``vectorize=True``).  ``None`` means unconstrained — every safe
        fission is applied.

    Returns
    -------
    ImplementationResult
        The schedules and costs of both DPs, the extracted lifetime
        set, the clique-weight bounds (``mco``/``mcp``), both
        first-fit totals with the better, verified
        :class:`~repro.allocation.first_fit.Allocation`, and the BMLB.
        All sizes are in words.

    Raises
    ------
    repro.exceptions.GraphStructureError
        If ``graph`` is cyclic, ``method`` is unknown, or a supplied
        ``order`` is not topological (``trusted_order=False``).
    repro.exceptions.InconsistentGraphError
        If the balance equations have no solution.
    repro.exceptions.AllocationError
        If ``verify=True`` and the winning allocation fails the
        independent definition-5 check (never expected; it means a
        pipeline bug).
    """
    if memory_budget is not None and not vectorize:
        raise ValueError("memory_budget requires vectorize=True")
    recorder = _active_recorder(recorder)
    outer = (
        recorder.span("implement", graph=graph.name)
        if recorder is not None
        else nullcontext()
    )
    with outer:
        if session is None:
            with _stage(report, recorder, "session"):
                session = CompilationSession(graph)
        q = session.q
        requested = backend if backend is not None else session.backend
        if requested == "python":
            eff_backend = "python"
        else:
            from ..native import resolve_backend

            eff_backend, _ = resolve_backend(requested, recorder=recorder)
        if order is not None:
            chosen = list(order)
            method = "given"
            trusted = trusted_order
        else:
            with _stage(report, recorder, "topsort") as meta:
                chosen = _topological_order_for(
                    graph, method, seed, q, recorder=recorder
                )
                meta["method"] = method
            trusted = True

        context = session.context_for(chosen, trusted=trusted)
        n = context.n
        # Both strided DPs evaluate every split of every window:
        # sum over lengths L of (n-L+1)(L-1) = n(n^2-1)/6 cells.
        dp_cells = n * (n * n - 1) // 6
        with _stage(report, recorder, "dppo"):
            dppo_result = dppo(
                graph, chosen, q, context=context, backend=eff_backend
            )
            if recorder is not None:
                recorder.count("dp.cells", dp_cells)
                if eff_backend == "native" and context.use_native:
                    recorder.count("native.dp")
        with _stage(report, recorder, "sdppo") as meta:
            if use_chain_dp and session.chain_order is not None:
                meta["dp"] = "chain"
                if recorder is not None:
                    hits0, misses0 = (
                        session.chain_dp_hits, session.chain_dp_misses
                    )
                chain_result = session.chain_sdppo_result()
                sdppo_cost, sdppo_schedule = (
                    chain_result.cost, chain_result.schedule
                )
                if recorder is not None:
                    recorder.count(
                        "session.chain_dp_hits",
                        session.chain_dp_hits - hits0,
                    )
                    recorder.count(
                        "session.chain_dp_misses",
                        session.chain_dp_misses - misses0,
                    )
            else:
                meta["dp"] = "eq5"
                sdppo_result = sdppo(
                    graph, chosen, q, context=context, backend=eff_backend
                )
                sdppo_cost, sdppo_schedule = (
                    sdppo_result.cost, sdppo_result.schedule
                )
                if recorder is not None:
                    recorder.count("dp.cells", dp_cells)
                    if eff_backend == "native" and context.use_native:
                        recorder.count("native.dp")
            if recorder is not None:
                recorder.count("chain.window_hits", context.window_hits)
                recorder.count("chain.window_misses", context.window_misses)

        vec_result: Optional[VectorizeResult] = None
        exec_schedule = sdppo_schedule
        if vectorize:
            with _stage(report, recorder, "vectorize") as meta:
                vec_result = vectorize_schedule(
                    graph, sdppo_schedule, q,
                    memory_budget=memory_budget,
                    occurrence_cap=occurrence_cap,
                    backend=eff_backend,
                    recorder=recorder,
                )
                exec_schedule = vec_result.schedule
                meta["blocks"] = vec_result.blocks
                meta["fissions"] = vec_result.steps

        with _stage(report, recorder, "lifetimes"):
            lifetimes = extract_lifetimes(graph, exec_schedule, q)
        buffers = lifetimes.as_list()
        with _stage(report, recorder, "wig"):
            wig = build_intersection_graph(
                buffers, occurrence_cap=occurrence_cap
            )
        with _stage(report, recorder, "first_fit"):
            alloc_dur = ffdur(
                buffers, graph=wig, occurrence_cap=occurrence_cap,
                recorder=recorder, backend=eff_backend,
            )
            alloc_start = ffstart(
                buffers, graph=wig, occurrence_cap=occurrence_cap,
                recorder=recorder, backend=eff_backend,
            )
            best = (
                alloc_dur if alloc_dur.total <= alloc_start.total
                else alloc_start
            )
            if recorder is not None:
                recorder.count("alloc.words", best.total)
        if verify:
            with _stage(report, recorder, "verify"):
                verify_allocation(
                    buffers, best, occurrence_cap=occurrence_cap
                )

    return ImplementationResult(
        method=method,
        order=chosen,
        dppo_cost=dppo_result.cost,
        dppo_schedule=dppo_result.schedule,
        sdppo_cost=sdppo_cost,
        sdppo_schedule=sdppo_schedule,
        lifetimes=lifetimes,
        mco=mcw_optimistic(buffers),
        mcp=mcw_pessimistic(buffers),
        ffdur_total=alloc_dur.total,
        ffstart_total=alloc_start.total,
        allocation=best,
        bmlb=session.bmlb(),
        vectorize=vec_result,
    )


@dataclass
class BestResult:
    """The Table 1 comparison: RPMC and APGAN flows side by side."""

    rpmc: ImplementationResult
    apgan: ImplementationResult

    @property
    def best_nonshared(self) -> int:
        """``MIN(dppo(R), dppo(A))``."""
        return min(self.rpmc.dppo_cost, self.apgan.dppo_cost)

    @property
    def best_shared(self) -> int:
        """``MIN(ffdur(R), ffstart(R), ffdur(A), ffstart(A))``."""
        return min(
            self.rpmc.ffdur_total,
            self.rpmc.ffstart_total,
            self.apgan.ffdur_total,
            self.apgan.ffstart_total,
        )

    @property
    def improvement_percent(self) -> float:
        """The paper's last Table 1 column."""
        base = self.best_nonshared
        if base == 0:
            return 0.0
        return 100.0 * (base - self.best_shared) / base


def implement_best(
    graph: SDFGraph,
    seed: int = 0,
    use_chain_dp: bool = True,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    verify: bool = True,
    session: Optional[CompilationSession] = None,
    recorder=None,
    backend: Optional[str] = None,
) -> BestResult:
    """Run both topological-sort methods; the Table 1 row for a system.

    Both flows share one compilation session, so the graph-level
    precomputation (repetitions vector, edge weights, chain DP, BMLB)
    is paid once rather than per method.
    """
    if session is None:
        session = CompilationSession(graph)
    return BestResult(
        rpmc=implement(
            graph, "rpmc", seed=seed, use_chain_dp=use_chain_dp,
            occurrence_cap=occurrence_cap, verify=verify, session=session,
            recorder=recorder, backend=backend,
        ),
        apgan=implement(
            graph, "apgan", seed=seed, use_chain_dp=use_chain_dp,
            occurrence_cap=occurrence_cap, verify=verify, session=session,
            recorder=recorder, backend=backend,
        ),
    )
