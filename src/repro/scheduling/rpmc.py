"""RPMC: recursive partitioning by minimum legal cuts (section 7).

A top-down heuristic for generating the lexical order of a single
appearance schedule: find a cut of the DAG into a left set and a right
set such that every crossing edge points left-to-right (so each half can
be scheduled recursively without deadlock) and the total size of the
buffers crossing the cut is minimized; then recurse on each half.

The cut-crossing buffers are exactly the ones a split-level loop cannot
overlay (they are live across the transition), so minimizing them is
attractive under both the non-shared and the shared model (the paper
argues this in section 7).

Implementation: a legal cut's left set is an *order ideal* (closed under
predecessors).  Candidate ideals are generated as prefixes of several
topological orders (the deterministic order plus seeded random ones),
subject to the classical RPMC balance bound ``|V_L| in [n/3, 2n/3]``
(relaxed automatically when a graph has no balanced legal cut), then
improved by greedy boundary moves that preserve legality.  The best cut
found recurses into both sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector, total_tokens_exchanged
from ..sdf.topsort import random_topological_sort

__all__ = ["RPMCResult", "rpmc"]


@dataclass
class RPMCResult:
    """Outcome of RPMC: a lexical order for SAS construction."""

    order: List[str]


def rpmc(
    graph: SDFGraph,
    q: Optional[Dict[str, int]] = None,
    seed: int = 0,
    num_random_orders: int = 4,
    recorder=None,
) -> RPMCResult:
    """Run RPMC on a consistent acyclic SDF graph.

    Parameters
    ----------
    seed, num_random_orders:
        RPMC explores prefixes of ``1 + num_random_orders`` topological
        orders per recursion level; the random orders derive from
        ``seed`` deterministically, so results are reproducible.
    recorder:
        Optional :class:`repro.obs.Recorder`; tallies ``rpmc.cuts``
        (one per recursive bipartition) and ``rpmc.moves`` (applied
        greedy boundary improvements).
    """
    if not graph.is_acyclic():
        raise GraphStructureError(
            f"rpmc requires an acyclic graph; {graph.name!r} has a cycle"
        )
    if q is None:
        q = repetitions_vector(graph)
    rng = random.Random(seed)
    order = _rpmc_order(graph, q, rng, num_random_orders, recorder)
    return RPMCResult(order=order)


def _edge_weight(edge, q: Dict[str, int], g: int) -> int:
    """Cut cost contribution of one crossing edge, in words.

    ``TNSE(e) / g`` — the tokens the buffer holds per iteration of the
    loop factor ``g`` shared by the whole (sub)graph — plus initial
    tokens.
    """
    return (
        total_tokens_exchanged(edge, q) // g + edge.delay
    ) * edge.token_size


def _rpmc_order(
    graph: SDFGraph,
    q: Dict[str, int],
    rng: random.Random,
    num_random_orders: int,
    recorder=None,
) -> List[str]:
    n = graph.num_actors
    if n <= 1:
        return graph.actor_names()
    if n == 2:
        return graph.topological_order()
    if recorder is not None:
        recorder.count("rpmc.cuts")

    from math import gcd

    g_all = 0
    for a in graph.actor_names():
        g_all = gcd(g_all, q[a])

    weight: Dict[Tuple[str, str, int], int] = {
        e.key: _edge_weight(e, q, g_all) for e in graph.edges()
    }

    lo, hi = n // 3, (2 * n) // 3
    if lo < 1:
        lo = 1
    if hi >= n:
        hi = n - 1
    if lo > hi:
        lo, hi = 1, n - 1

    orders = [graph.topological_order()]
    for _ in range(num_random_orders):
        orders.append(random_topological_sort(graph, rng))

    # Per-actor aggregates so the prefix sweep below touches each edge a
    # constant number of times per order instead of re-building Edge
    # lists: total outgoing weight, and (source, weight) pairs in.
    out_sum: Dict[str, int] = {a: 0 for a in graph.actor_names()}
    in_pairs: Dict[str, List[Tuple[str, int]]] = {
        a: [] for a in graph.actor_names()
    }
    for e in graph.edges():
        w = weight[e.key]
        out_sum[e.source] += w
        in_pairs[e.sink].append((e.source, w))

    best_cost: Optional[int] = None
    best_left: Optional[Set[str]] = None
    for order in orders:
        position = {a: i for i, a in enumerate(order)}
        # Cut after prefix of size p: cost = sum of weights of edges from
        # positions < p to positions >= p.  Sweep p and track incrementally.
        cost = 0
        # Edge contributes while source placed and sink not.
        for p in range(1, n):
            a = order[p - 1]
            cost += out_sum[a]
            for src, w in in_pairs[a]:
                if position[src] < p - 1:
                    cost -= w
            # `a` itself just moved left; subtract edges into `a` from the left.
            if lo <= p <= hi and (best_cost is None or cost < best_cost):
                best_cost = cost
                best_left = set(order[:p])

    if best_left is None:  # no prefix satisfied bounds (tiny graphs)
        order = orders[0]
        best_left = set(order[: max(1, n // 2)])

    best_left = _improve_cut(graph, weight, best_left, lo, hi, recorder=recorder)

    left_names = [a for a in graph.actor_names() if a in best_left]
    right_names = [a for a in graph.actor_names() if a not in best_left]
    left_sub = graph.subgraph(left_names)
    right_sub = graph.subgraph(right_names)
    left_order = _rpmc_components(left_sub, q, rng, num_random_orders, recorder)
    right_order = _rpmc_components(right_sub, q, rng, num_random_orders, recorder)
    return left_order + right_order


def _rpmc_components(
    graph: SDFGraph,
    q: Dict[str, int],
    rng: random.Random,
    num_random_orders: int,
    recorder=None,
) -> List[str]:
    """Recurse per connected component (cuts can disconnect a side).

    Components are emitted in an order consistent with the original
    graph's topology among themselves; within a component RPMC recurses.
    Component-local repetitions keep the gcd normalization meaningful.
    """
    if graph.num_actors <= 1:
        return graph.actor_names()
    components = _connected_components(graph)
    if len(components) == 1:
        return _rpmc_order(graph, q, rng, num_random_orders, recorder)
    result: List[str] = []
    for comp in components:
        sub = graph.subgraph(comp)
        result.extend(_rpmc_order(sub, q, rng, num_random_orders, recorder))
    return result


def _connected_components(graph: SDFGraph) -> List[List[str]]:
    seen: Set[str] = set()
    components: List[List[str]] = []
    for start in graph.actor_names():
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        stack = [start]
        while stack:
            a = stack.pop()
            for b in graph.successors(a) + graph.predecessors(a):
                if b not in seen:
                    seen.add(b)
                    comp.append(b)
                    stack.append(b)
        components.append(comp)
    return components


def _improve_cut(
    graph: SDFGraph,
    weight: Dict[Tuple[str, str, int], int],
    left: Set[str],
    lo: int,
    hi: int,
    max_passes: int = 4,
    recorder=None,
) -> Set[str]:
    """Greedy boundary improvement preserving legality and size bounds.

    A node may move right if none of its successors is in the left set;
    it may move left if all of its predecessors are.  Each pass applies
    the single best strictly improving move until none exists.  A move's
    cost delta touches only the moved node's own edges, so it is
    evaluated in O(deg) rather than by recomputing the whole cut.
    """
    out_w: Dict[str, List[Tuple[str, int]]] = {a: [] for a in graph.actor_names()}
    in_w: Dict[str, List[Tuple[str, int]]] = {a: [] for a in graph.actor_names()}
    for e in graph.edges():
        w = weight[e.key]
        out_w[e.source].append((e.sink, w))
        in_w[e.sink].append((e.source, w))

    for _ in range(max_passes):
        best_delta = 0
        best_move: Optional[Tuple[str, bool]] = None  # (actor, to_left)
        for a in graph.actor_names():
            if a in left:
                if len(left) - 1 < lo:
                    continue
                if any(s in left for s, _ in out_w[a]):
                    continue
                # All of a's out-edges stop crossing; in-edges from the
                # remaining left set start crossing.
                delta = sum(w for p, w in in_w[a] if p in left) - sum(
                    w for _, w in out_w[a]
                )
                if delta < best_delta:
                    best_delta = delta
                    best_move = (a, False)
            else:
                if len(left) + 1 > hi:
                    continue
                if any(p not in left for p, _ in in_w[a]):
                    continue
                # All of a's in-edges stop crossing; out-edges to the
                # right start crossing.
                delta = sum(w for s, w in out_w[a] if s not in left) - sum(
                    w for _, w in in_w[a]
                )
                if delta < best_delta:
                    best_delta = delta
                    best_move = (a, True)
        if best_move is None:
            break
        actor, to_left = best_move
        if recorder is not None:
            recorder.count("rpmc.moves")
        if to_left:
            left.add(actor)
        else:
            left.discard(actor)
    return left
