"""cc-compiled native kernels for the scheduler's hot core.

The chain DP (``dp_over_context`` — DPPO's EQ 2 and SDPPO's EQ 5,
including the episodic/persistent split for delayed graphs) and the
first-fit probe loop are the compile path's inner loops.  This package
compiles them once with the system C compiler into a small shared
object, content-addressed in the artifact cache (keyed by kernel
source + compiler identity + cflags + ABI), loads it via ctypes, and
dispatches to it behind ``backend="auto"|"python"|"native"`` at the
``implement``/``CompilationSession`` level.

The contract is *bit-identity*: the native kernels produce exactly the
bytes the pure-Python paths produce (same first-minimum tie-breaks,
same exact integer arithmetic, same factoring decisions), pinned by
the differential harness across the acyclic, broadcast, and cyclic
trial families and by a dedicated ``native_kernel`` fault-injection
class.  When no compiler is available (or ``$REPRO_NATIVE=0``) every
entry point silently takes the Python path — zero behavior change,
counted as ``native.fallback`` via :mod:`repro.obs`.
"""

from .build import (
    CFLAGS,
    build_kernel,
    compiler_identity,
    find_compiler,
    kernel_key,
    native_enabled,
)
from .kernels import (
    BACKENDS,
    NativeKernels,
    get_kernels,
    kernel_fault,
    reset,
    resolve_backend,
)
from .source import KERNEL_ABI_VERSION, KERNEL_SOURCE

__all__ = [
    "BACKENDS",
    "CFLAGS",
    "KERNEL_ABI_VERSION",
    "KERNEL_SOURCE",
    "NativeKernels",
    "build_kernel",
    "compiler_identity",
    "find_compiler",
    "get_kernels",
    "kernel_fault",
    "kernel_key",
    "native_enabled",
    "reset",
    "resolve_backend",
]
