"""The C source for the native hot-core kernels.

The kernels mirror, statement for statement, the pure-Python inner
loops they replace:

* ``repro_dp`` — the O(n^3) chain DP over a :class:`ChainContext`
  (EQ 2 non-shared sum combiner, EQ 5 shared max combiner, and the
  shared episodic/persistent split for delayed graphs), including the
  crossing-cost window evaluation as inline prefix-rectangle queries
  and the section 5.1 auto-factoring decision;
* ``repro_first_fit`` — the first-fit probe loop over periodic
  lifetimes (figure 19), including the probe counter the observability
  layer reports.

Bit-identity contract
---------------------
Every arithmetic step matches the Python path exactly:

* all values are nonnegative int64, so C's truncating ``/`` equals
  Python's ``//`` (the caller guards against overflow before
  dispatching here — see ``ChainContext.use_native``);
* the split scan keeps the *first* minimum (strict ``<`` while walking
  ``k`` ascending), matching both ``list.index(min(...))`` and
  ``numpy.argmin``;
* first-fit sorts placed neighbours by ``(base, size)``; ties are
  fully identical pairs, so an unstable ``qsort`` cannot reorder
  observably.

The source string is part of the kernel's content address
(:func:`repro.native.build.kernel_key`): editing it here produces a
new key, a fresh ``cc`` build, and a separate cache entry — stale
binaries can never be loaded.
"""

from __future__ import annotations

__all__ = ["KERNEL_SOURCE", "KERNEL_ABI_VERSION"]

#: Bumped whenever an exported signature changes shape; the loader
#: refuses a binary whose baked-in version disagrees (belt-and-braces
#: on top of content addressing).
KERNEL_ABI_VERSION = 1

KERNEL_SOURCE = r"""
/* repro native kernels: chain DP + first-fit probe loop.
 *
 * Generated/maintained as a template string in repro/native/source.py;
 * compiled on demand with `cc -O2 -fPIC -shared` and content-addressed
 * by (source, compiler identity, cflags, ABI) in the artifact cache.
 *
 * All quantities are nonnegative int64 and the Python caller has
 * already checked the DP accumulation bound, so `/` here matches
 * Python's floor division and nothing can overflow.
 */

#include <stdint.h>
#include <stdlib.h>

#define REPRO_ABI_VERSION 1

int64_t repro_abi_version(void) { return REPRO_ABI_VERSION; }

/* Sum of prefix grid P (side m = n+1) over sources [r0, r1] and sinks
 * [c0, c1] -- ChainContext._rect. */
#define RECT(P, m, r0, r1, c0, c1)                                   \
    ((P)[((r1) + 1) * (m) + (c1) + 1] - (P)[(r0) * (m) + (c1) + 1]   \
     - (P)[((r1) + 1) * (m) + (c0)] + (P)[(r0) * (m) + (c0)])

/* The chain DP of dppo/sdppo/dp_over_context.
 *
 *   n          actors in the lexical order
 *   pt, pd, pp (n+1)^2 row-major prefix grids: TNSE words, delay
 *              words, delayed-edge TNSE words
 *   g          n*n row-major window gcd table g[i][j]
 *   shared     0 = EQ 2 (sum combiner), 1 = EQ 5 (max combiner)
 *   pers_split 1 = shared DP with delayed edges: split costs into
 *              episodic (max) and persistent (sum) components
 *   factoring  0 = auto (factor iff crossing cost > 0), 1 = always,
 *              2 = never
 *   b          out n*n cost table (caller-zeroed)
 *   split      out n*n chosen split k per window (i, j)
 *   factored   out n*n factoring flags (shared only)
 *   ep, pers   n*n caller-zeroed scratch: episodic/persistent tables
 *              (used only when pers_split)
 */
int repro_dp(int64_t n,
             const int64_t *pt, const int64_t *pd, const int64_t *pp,
             const int64_t *g,
             int32_t shared, int32_t pers_split, int32_t factoring,
             int64_t *b, int64_t *split, uint8_t *factored,
             int64_t *ep, int64_t *pers)
{
    int64_t m = n + 1;
    int64_t L, i, k;
    if (n < 2)
        return 0;
    for (L = 2; L <= n; L++) {
        for (i = 0; i <= n - L; i++) {
            int64_t j = i + L - 1;
            int64_t gg = g[i * n + j];
            int64_t best = 0, best_cost = 0, best_k = -1;
            for (k = i; k < j; k++) {
                int64_t tw = RECT(pt, m, i, k, k + 1, j);
                int64_t dw = RECT(pd, m, i, k, k + 1, j);
                int64_t cost = tw / gg + dw;
                int64_t total;
                if (pers_split) {
                    int64_t el = ep[i * n + k];
                    int64_t er = ep[(k + 1) * n + j];
                    total = (el > er ? el : er)
                            + pers[i * n + k] + pers[(k + 1) * n + j]
                            + cost;
                } else {
                    int64_t bl = b[i * n + k];
                    int64_t br = b[(k + 1) * n + j];
                    total = (shared ? (bl > br ? bl : br) : bl + br)
                            + cost;
                }
                /* strict < after the first candidate: first minimum,
                 * matching list.index(min(...)) and numpy argmin. */
                if (best_k < 0 || total < best) {
                    best = total;
                    best_cost = cost;
                    best_k = k;
                }
            }
            b[i * n + j] = best;
            split[i * n + j] = best_k;
            if (pers_split) {
                int64_t ptw = RECT(pp, m, i, best_k, best_k + 1, j);
                int64_t dwb = RECT(pd, m, i, best_k, best_k + 1, j);
                int64_t np = pers[i * n + best_k]
                             + pers[(best_k + 1) * n + j]
                             + ptw / gg + dwb;
                pers[i * n + j] = np;
                ep[i * n + j] = best - np;
            }
            if (shared) {
                factored[i * n + j] = (uint8_t)(
                    factoring == 1 ? 1
                    : factoring == 2 ? 0
                    : (best_cost > 0));
            }
        }
    }
    return 0;
}

/* One placed neighbour: its base offset and size, sorted ascending by
 * (base, size) exactly like Python's tuple sort.  Equal pairs are
 * indistinguishable, so qsort's instability cannot change the scan. */
typedef struct {
    int64_t base;
    int64_t size;
} repro_ff_pair;

static int repro_ff_cmp(const void *pa, const void *pb)
{
    const repro_ff_pair *a = (const repro_ff_pair *)pa;
    const repro_ff_pair *b = (const repro_ff_pair *)pb;
    if (a->base != b->base)
        return a->base < b->base ? -1 : 1;
    if (a->size != b->size)
        return a->size < b->size ? -1 : 1;
    return 0;
}

/* First-fit over an enumerated instance (figure 19).
 *
 *   nb         number of buffers
 *   sizes      per-buffer word sizes
 *   order      placement order (a permutation of 0..nb-1)
 *   indptr     CSR row pointers into indices (nb+1 entries)
 *   indices    flattened intersection-graph adjacency lists
 *   scratch    caller-allocated 2*nb int64 (pair sort buffer)
 *   offsets    out nb chosen base offsets
 *   probes_out out total placed-neighbour comparisons
 */
int repro_first_fit(int64_t nb,
                    const int64_t *sizes, const int64_t *order,
                    const int64_t *indptr, const int64_t *indices,
                    int64_t *scratch,
                    int64_t *offsets, int64_t *probes_out)
{
    repro_ff_pair *pairs = (repro_ff_pair *)scratch;
    int64_t probes = 0;
    int64_t t, p;
    for (t = 0; t < nb; t++)
        offsets[t] = -1; /* -1 = not yet placed */
    for (t = 0; t < nb; t++) {
        int64_t i = order[t];
        int64_t cnt = 0;
        int64_t candidate = 0;
        for (p = indptr[i]; p < indptr[i + 1]; p++) {
            int64_t jn = indices[p];
            if (offsets[jn] >= 0 && sizes[jn] > 0) {
                pairs[cnt].base = offsets[jn];
                pairs[cnt].size = sizes[jn];
                cnt++;
            }
        }
        qsort(pairs, (size_t)cnt, sizeof(repro_ff_pair), repro_ff_cmp);
        for (p = 0; p < cnt; p++) {
            probes++;
            if (candidate + sizes[i] <= pairs[p].base)
                break; /* fits in the gap before this neighbour */
            if (pairs[p].base + pairs[p].size > candidate)
                candidate = pairs[p].base + pairs[p].size;
        }
        offsets[i] = candidate;
    }
    *probes_out = probes;
    return 0;
}
"""
