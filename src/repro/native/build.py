"""Build and cache the native kernel shared object.

The kernel binary is a pure function of ``(C source, compiler
identity, cflags, ABI version)``, so it is content-addressed in the
same :class:`~repro.serve.cache.ArtifactCache` that stores compilation
reports — under the cache root's ``kernels/`` area, digest-verified on
every load, with corrupt binaries evicted and rebuilt.  A farm's
worker processes (and every CI run with a warm cache) therefore share
one ``cc`` invocation.

Everything here degrades silently: no compiler on ``PATH``,
``REPRO_NATIVE=0``, a failed compile, or an unloadable binary all mean
"no native kernels" — the dispatch layer then takes the pure-Python
path with bit-identical results (counted as ``native.fallback`` by the
pipeline).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import tempfile
from typing import Optional

from .source import KERNEL_ABI_VERSION, KERNEL_SOURCE

__all__ = [
    "CFLAGS",
    "build_kernel",
    "compiler_identity",
    "find_compiler",
    "kernel_key",
    "native_enabled",
]

CFLAGS = ("-O2", "-fPIC", "-shared")

#: Values of ``$REPRO_NATIVE`` that disable the native path.
_DISABLED = ("0", "false", "no", "off")


def native_enabled() -> bool:
    """Whether ``$REPRO_NATIVE`` permits the native path (default yes).

    Checked at every dispatch, not at import, so tests (and operators)
    can flip the switch without reloading the package.
    """
    return os.environ.get("REPRO_NATIVE", "").strip().lower() not in _DISABLED


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler, or ``None``.

    ``$REPRO_CC`` overrides the default ``cc`` (useful for pinning a
    specific toolchain fleet-wide); resolution goes through ``PATH``
    either way.
    """
    return shutil.which(os.environ.get("REPRO_CC", "").strip() or "cc")


def compiler_identity(cc: str) -> str:
    """A digest identifying the toolchain: path plus ``--version`` banner.

    Part of the kernel cache key, so upgrading the compiler (or
    pointing ``$REPRO_CC`` elsewhere) rebuilds rather than reusing a
    binary from a different toolchain.
    """
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, timeout=30
        )
        banner = proc.stdout + proc.stderr
    except (OSError, subprocess.TimeoutExpired):
        banner = b""
    h = hashlib.sha256()
    h.update(cc.encode("utf-8", "surrogateescape"))
    h.update(b"\0")
    h.update(banner)
    return h.hexdigest()


def kernel_key(cc: str) -> str:
    """Content address of the kernel binary for compiler ``cc``."""
    payload = {
        "abi": KERNEL_ABI_VERSION,
        "cflags": list(CFLAGS),
        "compiler": compiler_identity(cc),
        "source": KERNEL_SOURCE,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_kernel(cache_root: Optional[str] = None, recorder=None) -> str:
    """Return the path of the compiled kernel ``.so``, building if needed.

    Checks the artifact cache's kernel area first (digest-verified; a
    corrupt binary is evicted and rebuilt), then compiles into a
    temporary directory and installs the result atomically.  Raises
    ``RuntimeError`` when no compiler is available or the compile
    fails — callers treat that as "fall back to Python".
    """
    # Imported lazily: repro.serve imports the scheduling pipeline,
    # which dispatches into this package — a module-level import here
    # would close that cycle at import time.
    from ..serve.cache import ArtifactCache

    cc = find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc) found on PATH")
    cache = ArtifactCache(cache_root)
    key = kernel_key(cc)
    path = cache.get_kernel(key)
    if path is not None:
        if recorder is not None:
            recorder.count("native.kernel_cache_hits")
        return path
    with tempfile.TemporaryDirectory(prefix="repro-native-") as tmp:
        src = os.path.join(tmp, "repro_kernels.c")
        out = os.path.join(tmp, "repro_kernels.so")
        with open(src, "w", encoding="utf-8") as handle:
            handle.write(KERNEL_SOURCE)
        proc = subprocess.run(
            [cc, *CFLAGS, "-o", out, src],
            capture_output=True, timeout=300,
        )
        if proc.returncode != 0:
            stderr = proc.stderr.decode("utf-8", "replace")[:500]
            raise RuntimeError(f"kernel compile failed: {stderr}")
        with open(out, "rb") as handle:
            data = handle.read()
    if recorder is not None:
        recorder.count("native.kernel_builds")
    return cache.put_kernel(key, data)
