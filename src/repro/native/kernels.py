"""ctypes bindings over the compiled kernel shared object.

:class:`NativeKernels` wraps the loaded library with Python-shaped
entry points mirroring the pure paths they replace:
:meth:`NativeKernels.dp_over_context` returns the same
``(b, split, factored)`` triple as
:func:`repro.scheduling.common.dp_over_context`, and
:meth:`NativeKernels.first_fit` the same ``(offsets, probes)`` the
probe loop in :func:`repro.allocation.first_fit.first_fit` produces.

Loading is memoized per process (one ``dlopen`` however many
``implement`` calls run) behind :func:`get_kernels`; a failed build is
memoized too, so a compiler-less host pays the discovery cost once.
``$REPRO_NATIVE`` is consulted on *every* call, so flipping it
mid-process (tests, operators) takes effect immediately.

The module also hosts the ``native_kernel`` fault-injection hook
(:func:`kernel_fault`): while armed, each kernel invocation perturbs
one result cell — one DP cost or one placement — the way a real
miscompiled kernel would, so the differential harness can prove it
notices.
"""

from __future__ import annotations

import ctypes
import threading
from contextlib import contextmanager
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .build import build_kernel, native_enabled
from .source import KERNEL_ABI_VERSION

__all__ = [
    "BACKENDS",
    "NativeKernels",
    "get_kernels",
    "kernel_fault",
    "reset",
    "resolve_backend",
]

#: The dispatch vocabulary accepted everywhere a backend is chosen.
BACKENDS = ("auto", "python", "native")

#: int64 bound on DP accumulations / total placed extent, matching the
#: numpy guard in :class:`ChainContext`.
_INT64_SAFE = 2 ** 62

_FACTORING_CODES = {"auto": 0, "always": 1, "never": 2}

#: Armed fault kind for the ``native_kernel`` mutation class, or None.
_FAULT: Dict[str, Optional[str]] = {"kind": None}


@contextmanager
def kernel_fault(kind: str):
    """Arm the native fault hook for the enclosed block.

    ``kind`` is ``"dp_cell"`` (each DP invocation's final cost cell is
    bumped by one word) or ``"probe"`` (each first-fit invocation
    mis-places its last buffer by one word — the effect of one wrong
    probe verdict).  Only the fault-injection self-test uses this.
    """
    if kind not in ("dp_cell", "probe"):
        raise ValueError(f"unknown native fault kind {kind!r}")
    previous = _FAULT["kind"]
    _FAULT["kind"] = kind
    try:
        yield
    finally:
        _FAULT["kind"] = previous


def _fault_armed(kind: str) -> bool:
    return _FAULT["kind"] == kind


def _as_int_list(arr) -> List[int]:
    """A ctypes int64 array as a plain list, via one bulk buffer copy."""
    import array

    buf = array.array("q")
    buf.frombytes(bytes(arr))
    return buf.tolist()


@lru_cache(maxsize=8)
def _window_keys(n: int) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Upper-triangle ``(i, j)`` keys and their flat row-major indices.

    Cached per chain length so repeated DP calls (DPPO then SDPPO, or
    many graphs of one size) skip rebuilding ~n^2/2 tuples each time.
    """
    keys = [(i, j) for i in range(n - 1) for j in range(i + 1, n)]
    return keys, [i * n + j for (i, j) in keys]


_TRUTH = (False, True)


class NativeKernels:
    """A loaded kernel library plus its typed entry points."""

    def __init__(self, lib: ctypes.CDLL, path: str) -> None:
        self._lib = lib
        #: Where the binary lives in the artifact cache (diagnostics).
        self.path = path
        i64p = ctypes.POINTER(ctypes.c_int64)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        lib.repro_abi_version.restype = ctypes.c_int64
        lib.repro_abi_version.argtypes = ()
        lib.repro_dp.restype = ctypes.c_int
        lib.repro_dp.argtypes = (
            ctypes.c_int64,
            i64p, i64p, i64p, i64p,
            ctypes.c_int32, ctypes.c_int32, ctypes.c_int32,
            i64p, i64p, u8p, i64p, i64p,
        )
        lib.repro_first_fit.restype = ctypes.c_int
        lib.repro_first_fit.argtypes = (
            ctypes.c_int64,
            i64p, i64p, i64p, i64p,
            i64p, i64p, i64p,
        )

    # -- chain DP -------------------------------------------------------
    def _context_state(self, context) -> tuple:
        """Flattened int64 ctypes copies of the context's prefix/gcd grids.

        Cached on the context (like ``_numpy_state``) so the DPPO and
        SDPPO runs over one order flatten the tables once.
        """
        state = context._native_state
        if state is None:
            import array
            from itertools import chain

            n = context.n
            m = n + 1

            def flatten(grid, size):
                buf = array.array("q", chain.from_iterable(grid))
                return (ctypes.c_int64 * size).from_buffer_copy(buf)

            state = (
                flatten(context._tw_prefix, m * m),
                flatten(context._dw_prefix, m * m),
                flatten(context._ptw_prefix, m * m),
                flatten(context._g, n * n),
            )
            context._native_state = state
        return state

    def dp_over_context(
        self,
        context,
        shared: bool,
        factoring: str = "auto",
    ) -> Tuple[
        List[List[int]], Dict[Tuple[int, int], int], Dict[Tuple[int, int], bool]
    ]:
        """EQ 2 / EQ 5 DP in C; same contract as ``dp_over_context``.

        The caller must have checked ``context.use_native`` (the int64
        overflow guard); results are bit-identical to both pure paths.
        """
        n = context.n
        pt, pd, pp, g = self._context_state(context)
        cells = n * n
        b = (ctypes.c_int64 * cells)()
        split_arr = (ctypes.c_int64 * cells)()
        factored_arr = (ctypes.c_uint8 * cells)()
        ep = (ctypes.c_int64 * cells)()
        pers = (ctypes.c_int64 * cells)()
        pers_split = 1 if (shared and context.has_delays) else 0
        rc = self._lib.repro_dp(
            n, pt, pd, pp, g,
            1 if shared else 0, pers_split, _FACTORING_CODES[factoring],
            b, split_arr, factored_arr, ep, pers,
        )
        if rc != 0:
            raise RuntimeError(f"repro_dp returned {rc}")
        # Bulk buffer-protocol conversions; per-element __getitem__ on
        # the ctypes arrays is what used to dominate the wrapper.
        flat = _as_int_list(b)
        if n >= 2 and _fault_armed("dp_cell"):
            # The injected bug: the full-window cost comes back off by
            # one word, as a miscompiled combiner would produce.
            flat[n - 1] += 1
        rows = [flat[i * n:(i + 1) * n] for i in range(n)]
        splits = _as_int_list(split_arr)
        keys, idx = _window_keys(n)
        split: Dict[Tuple[int, int], int] = dict(
            zip(keys, map(splits.__getitem__, idx))
        )
        factored: Dict[Tuple[int, int], bool] = {}
        if shared:
            facts = bytes(factored_arr)
            factored = dict(
                zip(keys, map(_TRUTH.__getitem__, map(facts.__getitem__, idx)))
            )
        return rows, split, factored

    # -- first fit ------------------------------------------------------
    def first_fit(
        self,
        sizes: Sequence[int],
        order: Sequence[int],
        neighbors: Sequence[Union[set, frozenset, Sequence[int]]],
    ) -> Optional[Tuple[List[int], int]]:
        """The probe loop in C: ``(offsets by buffer index, probes)``.

        Returns ``None`` when the instance is not int64-safe (total
        placed extent could exceed the bound) — the caller then runs
        the Python loop, exactly like the DP's overflow bail-out.
        """
        nb = len(sizes)
        if nb == 0:
            return [], 0
        if sum(sizes) + max(sizes) >= _INT64_SAFE:
            return None
        sizes_arr = (ctypes.c_int64 * nb)(*sizes)
        order_arr = (ctypes.c_int64 * nb)(*order)
        indptr = (ctypes.c_int64 * (nb + 1))()
        flat: List[int] = []
        for i in range(nb):
            flat.extend(sorted(neighbors[i]))
            indptr[i + 1] = len(flat)
        indices = (ctypes.c_int64 * max(1, len(flat)))(*flat)
        scratch = (ctypes.c_int64 * (2 * nb))()
        offsets = (ctypes.c_int64 * nb)()
        probes = ctypes.c_int64(0)
        rc = self._lib.repro_first_fit(
            nb, sizes_arr, order_arr, indptr, indices,
            scratch, offsets, ctypes.byref(probes),
        )
        if rc != 0:
            raise RuntimeError(f"repro_first_fit returned {rc}")
        out = list(offsets)
        if _fault_armed("probe"):
            # The injected bug: the last placement lands one word high,
            # as one wrong gap-fit verdict would leave it.
            out[order[-1]] += 1
        return out, probes.value


# -- process-wide loader ------------------------------------------------
_LOCK = threading.Lock()
#: None = never tried, False = tried and failed, NativeKernels = loaded.
_KERNELS: Union[None, bool, NativeKernels] = None


def _load(recorder=None) -> NativeKernels:
    path = build_kernel(recorder=recorder)
    lib = ctypes.CDLL(path)
    kernels = NativeKernels(lib, path)
    abi = lib.repro_abi_version()
    if abi != KERNEL_ABI_VERSION:
        raise RuntimeError(
            f"kernel ABI {abi} != expected {KERNEL_ABI_VERSION}"
        )
    return kernels


def get_kernels(recorder=None) -> Optional[NativeKernels]:
    """The process's kernel bindings, or ``None`` when unavailable.

    Build/load happens at most once per process (including the failed
    case); the ``$REPRO_NATIVE`` gate is re-read every call.
    """
    global _KERNELS
    if not native_enabled():
        return None
    if _KERNELS is None:
        with _LOCK:
            if _KERNELS is None:
                try:
                    _KERNELS = _load(recorder=recorder)
                except Exception:
                    _KERNELS = False
    return _KERNELS if isinstance(_KERNELS, NativeKernels) else None


def reset() -> None:
    """Forget the memoized load (tests that manipulate cc/env use this)."""
    global _KERNELS
    with _LOCK:
        _KERNELS = None


def resolve_backend(
    backend: Optional[str], recorder=None
) -> Tuple[str, Optional[NativeKernels]]:
    """Map a requested backend to ``(effective, kernels)``.

    ``"python"`` never touches the native layer.  ``"auto"`` and
    ``"native"`` both try the kernels and *silently* fall back to
    ``"python"`` when they are unavailable (no compiler, disabled via
    ``$REPRO_NATIVE``, failed build) — results are bit-identical by
    contract, so the only trace is one ``native.fallback`` count on the
    recorder.  Unknown names raise ``ValueError``.
    """
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {list(BACKENDS)}"
        )
    if backend == "python":
        return "python", None
    kernels = get_kernels(recorder=recorder)
    if kernels is None:
        if recorder is not None:
            recorder.count("native.fallback")
        return "python", None
    return "native", kernels
