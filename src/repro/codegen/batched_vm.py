"""Vectorized shared-memory execution: one array op per firing block.

:class:`BatchedVM` runs the same memory discipline as
:class:`repro.codegen.vm.SharedMemoryVM` — linear per-episode cursors
reset at the buffer's least-parent loop, circular cursors for delayed
edges, one physical write per broadcast group — but executes each
schedule-tree leaf (a counted firing block) as one batched transfer
instead of ``residual`` scalar firings.  Token identity lives in two
parallel int64 arrays (``mem_edge``/``mem_seq``) over the shared
address space, so a whole block's writes are one fancy-indexed store
and a whole block's reads are one gather-and-compare; slot positions
come from the closed form of the scalar VM's wrap rule (a cursor that
only ever advances by ``token_size`` from zero wraps exactly every
``size_words // token_size`` tokens).

The observable contract is the scalar VM's: the same ``firings`` and
``firings_per_actor`` counters, the same ``peak_address`` (a maximum
over the same set of writes, hence order-independent), and
:class:`~repro.exceptions.CodegenError` with the scalar VM's message at
the same failing firing for cursor overruns, token corruption, and
balance violations.  Blocks of an actor with a self-loop (or feeding a
broadcast group it also consumes from) fall back to per-firing
execution — their reads depend on writes from earlier firings of the
same block, so the block-wide read-then-write reordering would be
unsound for them.

One deliberate asymmetry: within a block all reads precede all writes
(that is what makes the block one transfer), so an *unsafe* allocation
whose corruption window opens mid-block — a write of firing ``i``
clobbering a cell firing ``i+1`` reads — can go unnoticed here while
the scalar VM catches it.  On allocations that verify cleanly the two
VMs are observationally identical; the check harness therefore keeps
the scalar VM as the corruption oracle and uses this one to check the
vectorized execution path itself.

When numpy is unavailable the transfers degrade to per-token Python
loops with identical semantics (the repo-wide optional-acceleration
convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

try:  # optional acceleration; the VM has a pure-Python path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..exceptions import CodegenError
from ..sdf.graph import Edge, SDFGraph
from ..allocation.first_fit import Allocation
from ..lifetimes.intervals import LifetimeSet, least_parent_of
from ..lifetimes.schedule_tree import ScheduleTreeNode

__all__ = ["BatchedVM"]

Key = Tuple[str, str, int]

#: ``mem_edge`` value for never-written words (the scalar VM's None).
_UNWRITTEN = -1


@dataclass
class _BufState:
    """One physical buffer's cursors and counters.

    ``produced``/``consumed`` are whole-run token counters (they drive
    circular slots and the balance check); ``wr_k``/``rd_k`` count
    tokens since the last least-parent reset (they drive linear slots
    and are the only thing a reset clears — exactly the scalar VM's
    ``reset_cursors``).
    """

    edge: Edge
    eid: int
    base: int
    size_words: int
    circular: bool
    produced: int = 0
    consumed: int = 0
    wr_k: int = 0
    rd_k: int = 0

    @property
    def slots(self) -> int:
        return self.size_words // self.edge.token_size

    def reset_cursors(self) -> None:
        self.wr_k = 0
        self.rd_k = 0


@dataclass
class _BReader:
    """One member sink's cursor over a broadcast group's buffer."""

    edge: Edge
    rd_k: int = 0
    consumed: int = 0


@dataclass
class _BGroup:
    name: str
    write: _BufState
    readers: Dict[Key, _BReader] = field(default_factory=dict)

    def reset_cursors(self) -> None:
        self.write.reset_cursors()
        for r in self.readers.values():
            r.rd_k = 0


class BatchedVM:
    """Execute a SAS against a first-fit allocation, one op per block.

    Same constructor and ``run``/``preload_delays``/``peak_address``
    contract as :class:`repro.codegen.vm.SharedMemoryVM`; accepted by
    ``run_shared_memory_check(vm_class=BatchedVM)``.
    """

    def __init__(
        self,
        graph: SDFGraph,
        lifetimes: LifetimeSet,
        allocation: Allocation,
    ) -> None:
        self.graph = graph
        self.lifetimes = lifetimes
        self.allocation = allocation
        total = max(allocation.total, 1)
        if _np is not None:
            self.mem_edge = _np.full(total, _UNWRITTEN, dtype=_np.int64)
            self.mem_seq = _np.zeros(total, dtype=_np.int64)
        else:  # pragma: no cover - exercised only without numpy
            self.mem_edge = [_UNWRITTEN] * total
            self.mem_seq = [0] * total
        self._edges: Dict[Key, _BufState] = {}
        self._groups: Dict[str, _BGroup] = {}
        self._reset_at: Dict[int, List] = {}
        self._eid_key: List[Key] = []

        def new_eid(key: Key) -> int:
            self._eid_key.append(key)
            return len(self._eid_key) - 1

        for e in graph.edge_list():
            if e.broadcast is not None:
                continue
            lt = lifetimes.lifetimes[e.key]
            state = _BufState(
                edge=e,
                eid=new_eid(e.key),
                base=allocation.offset_of(lt.name),
                size_words=lt.size,
                circular=e.delay > 0,
            )
            self._edges[e.key] = state
            if not state.circular:
                lp = lifetimes.tree.least_parent(e.source, e.sink)
                self._reset_at.setdefault(id(lp), []).append(state)
        for name, members in graph.broadcast_groups().items():
            first = members[0]
            lt = lifetimes.lifetimes[first.key]
            group = _BGroup(
                name=name,
                write=_BufState(
                    edge=first,
                    eid=new_eid(first.key),
                    base=allocation.offset_of(lt.name),
                    size_words=lt.size,
                    circular=first.delay > 0,
                ),
                readers={m.key: _BReader(edge=m) for m in members},
            )
            self._groups[name] = group
            if not group.write.circular:
                lp = least_parent_of(
                    lifetimes.tree,
                    [first.source] + [m.sink for m in members],
                )
                self._reset_at.setdefault(id(lp), []).append(group)

        # Actors whose blocks must run firing-at-a-time: a self-loop
        # (or a broadcast group the actor both feeds and consumes)
        # makes reads within the block depend on the block's own
        # writes, so reads cannot all precede writes.
        self._scalar_actors = set()
        for e in graph.edges():
            if e.is_self_loop():
                self._scalar_actors.add(e.source)
        for name, members in graph.broadcast_groups().items():
            src = members[0].source
            if any(m.sink == src for m in members):
                self._scalar_actors.add(src)

        self.firings = 0
        self.firings_per_actor: Dict[str, int] = {
            a: 0 for a in graph.actor_names()
        }
        #: One past the highest memory word ever written — must never
        #: exceed ``allocation.total`` (checked by the harness).
        self.peak_address = 0
        #: Batched transfers issued (block-level reads + writes), for
        #: amortization accounting in the benchmarks.
        self.transfers = 0

    # ------------------------------------------------------------------
    def preload_delays(self) -> None:
        """Write the initial tokens of delayed edges, one op per edge."""
        for state in self._edges.values():
            if state.edge.delay > 0:
                self._write_block(state, state.edge.delay, 0, 1)
        for group in self._groups.values():
            if group.write.edge.delay > 0:
                self._write_block(group.write, group.write.edge.delay, 0, 1)

    def run_period(self) -> None:
        self._run_node(self.lifetimes.tree.root)

    def run(self, periods: int = 1, recorder=None) -> None:
        """Preload delays and run ``periods`` schedule periods."""
        self.preload_delays()
        for _ in range(periods):
            self.run_period()
        self._check_balance()
        if recorder is not None:
            recorder.count("vm.firings", self.firings)
            recorder.count("vm.transfers", self.transfers)

    # ------------------------------------------------------------------
    def _run_node(self, node: ScheduleTreeNode) -> None:
        if node.is_leaf():
            self._fire_block(node.actor, node.residual)
            return
        for _ in range(node.loop):
            for state in self._reset_at.get(id(node), ()):
                state.reset_cursors()
            self._run_node(node.left)
            self._run_node(node.right)

    def _fire_block(self, actor: str, n: int) -> None:
        base = self.firings
        self.firings += n
        self.firings_per_actor[actor] += n
        if actor in self._scalar_actors:
            for i in range(n):
                self._transfer_firings(actor, 1, base + i)
        else:
            self._transfer_firings(actor, n, base)

    def _transfer_firings(self, actor: str, n: int, base_firings: int) -> None:
        """Reads then writes for ``n`` firings, one op per edge."""
        for e in self.graph.in_edges(actor):
            m = n * e.consumption
            if e.broadcast is None:
                self._read_block(
                    self._edges[e.key], m, base_firings, e.consumption
                )
            else:
                group = self._groups[e.broadcast]
                self._read_group_block(
                    group, group.readers[e.key], m, base_firings,
                    e.consumption,
                )
        written = set()
        for e in self.graph.out_edges(actor):
            m = n * e.production
            if e.broadcast is None:
                self._write_block(
                    self._edges[e.key], m, base_firings, e.production
                )
            elif e.broadcast not in written:
                # One physical write per group, regardless of fan-out.
                written.add(e.broadcast)
                self._write_block(
                    self._groups[e.broadcast].write, m, base_firings,
                    e.production,
                )

    # ------------------------------------------------------------------
    def _slot_start(
        self,
        state: _BufState,
        m: int,
        k_reset: int,
        counter: int,
        writing: bool,
        base_firings: int,
        rate: int,
    ) -> int:
        """Overrun check; returns the first token's slot index.

        ``k_reset`` is the tokens-since-reset count (linear cursor) and
        ``counter`` the whole-run token counter (circular cursor); the
        failing firing and cursor value of a linear overrun are
        recovered in closed form so the raise matches the scalar VM's.
        """
        e = state.edge
        slots = state.slots
        if state.circular:
            return counter % slots if slots else 0
        if k_reset + m > slots:
            fail_tok = slots - k_reset  # 0-based index of the failing token
            firing = base_firings + fail_tok // rate + 1
            cursor = slots * e.token_size
            if writing:
                raise CodegenError(
                    f"buffer {e} overruns its array: write cursor "
                    f"{cursor} + {e.token_size} > {state.size_words} "
                    f"(firing {firing})"
                )
            raise CodegenError(
                f"buffer {e} read cursor overruns: "
                f"{cursor} + {e.token_size} > {state.size_words} "
                f"(firing {firing})"
            )
        return k_reset

    def _indices(self, state: _BufState, start_slot: int, m: int):
        """Word indices of ``m`` consecutive token slots (maybe wrapped)."""
        ts = state.edge.token_size
        if _np is not None:
            sl = start_slot + _np.arange(m, dtype=_np.int64)
            if state.circular:
                sl %= state.slots
            return (
                state.base + sl[:, None] * ts
                + _np.arange(ts, dtype=_np.int64)[None, :]
            ).ravel()
        sl = [start_slot + j for j in range(m)]  # pragma: no cover
        if state.circular:  # pragma: no cover
            sl = [s % state.slots for s in sl]
        return [  # pragma: no cover
            state.base + s * ts + w for s in sl for w in range(ts)
        ]

    def _bump_peak(self, state: _BufState, start_slot: int, m: int) -> None:
        # The highest write top over the block: linear runs end at the
        # last slot; circular runs that wrap reach the final slot.
        slots = state.slots
        if state.circular and start_slot + m > slots:
            high = slots
        else:
            high = start_slot + m
        top = state.base + high * state.edge.token_size
        if top > self.peak_address:
            self.peak_address = top

    def _write_block(
        self, state: _BufState, m: int, base_firings: int, rate: int
    ) -> None:
        start = self._slot_start(
            state, m, state.wr_k, state.produced, True, base_firings, rate
        )
        idx = self._indices(state, start, m)
        ts = state.edge.token_size
        if _np is not None:
            seqs = state.produced + _np.arange(m, dtype=_np.int64)
            self.mem_edge[idx] = state.eid
            self.mem_seq[idx] = _np.repeat(seqs, ts)
        else:  # pragma: no cover - exercised only without numpy
            for j, i in enumerate(idx):
                self.mem_edge[i] = state.eid
                self.mem_seq[i] = state.produced + j // ts
        self._bump_peak(state, start, m)
        state.produced += m
        if not state.circular:
            state.wr_k += m
        self.transfers += 1

    def _found_token(self, address: int) -> Optional[Tuple[Key, int]]:
        """Reconstruct the scalar VM's token value at one address."""
        eid = int(self.mem_edge[address])
        if eid == _UNWRITTEN:
            return None
        return (self._eid_key[eid], int(self.mem_seq[address]))

    def _gather_compare(
        self,
        state: _BufState,
        start: int,
        m: int,
        expect_eid: int,
        first_seq: int,
        describe: str,
        base_firings: int,
        rate: int,
    ) -> None:
        """Read ``m`` tokens and verify identity, locating any mismatch."""
        idx = self._indices(state, start, m)
        ts = state.edge.token_size
        if _np is not None:
            seqs = _np.repeat(
                first_seq + _np.arange(m, dtype=_np.int64), ts
            )
            bad = (self.mem_edge[idx] != expect_eid) | (
                self.mem_seq[idx] != seqs
            )
            pos = int(_np.argmax(bad)) if bool(bad.any()) else -1
        else:  # pragma: no cover - exercised only without numpy
            pos = -1
            for j, i in enumerate(idx):
                if (
                    self.mem_edge[i] != expect_eid
                    or self.mem_seq[i] != first_seq + j // ts
                ):
                    pos = j
                    break
        if pos >= 0:
            tok = pos // ts
            address = int(idx[pos])
            firing = base_firings + tok // rate + 1
            raise CodegenError(
                f"token corruption on {describe}: expected token "
                f"#{first_seq + tok}, found "
                f"{self._found_token(address)!r} at address {address} "
                f"(firing {firing}) — unsafe buffer overlay"
            )
        self.transfers += 1

    def _read_block(
        self, state: _BufState, m: int, base_firings: int, rate: int
    ) -> None:
        start = self._slot_start(
            state, m, state.rd_k, state.consumed, False, base_firings, rate
        )
        self._gather_compare(
            state, start, m, state.eid, state.consumed,
            f"{state.edge}", base_firings, rate,
        )
        state.consumed += m
        if not state.circular:
            state.rd_k += m

    def _read_group_block(
        self,
        group: _BGroup,
        reader: _BReader,
        m: int,
        base_firings: int,
        rate: int,
    ) -> None:
        write = group.write
        e = reader.edge
        slots = write.slots
        if write.circular:
            start = reader.consumed % slots if slots else 0
        else:
            if reader.rd_k + m > slots:
                fail_tok = slots - reader.rd_k
                firing = base_firings + fail_tok // rate + 1
                cursor = slots * e.token_size
                raise CodegenError(
                    f"broadcast {group.name} member {e} read cursor "
                    f"overruns: {cursor} + {e.token_size} > "
                    f"{write.size_words} (firing {firing})"
                )
            start = reader.rd_k
        self._gather_compare(
            write, start, m, write.eid, reader.consumed,
            f"broadcast {group.name} member {e}", base_firings, rate,
        )
        reader.consumed += m
        if not write.circular:
            reader.rd_k += m

    def _check_balance(self) -> None:
        for state in self._edges.values():
            e = state.edge
            outstanding = state.produced - state.consumed
            if outstanding != e.delay:
                raise CodegenError(
                    f"edge {e} ends with {outstanding} tokens in flight, "
                    f"expected {e.delay}"
                )
        for group in self._groups.values():
            for reader in group.readers.values():
                outstanding = group.write.produced - reader.consumed
                if outstanding != reader.edge.delay:
                    raise CodegenError(
                        f"broadcast {group.name} member {reader.edge} ends "
                        f"with {outstanding} tokens in flight, expected "
                        f"{reader.edge.delay}"
                    )
