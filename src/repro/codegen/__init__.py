"""Code generation: inline C emission and shared-memory execution checks."""

from .c_emitter import emit_c
from .py_emitter import compile_python, emit_python
from .vm import SharedMemoryVM, run_shared_memory_check
from .batched_vm import BatchedVM

__all__ = [
    "emit_c",
    "emit_python",
    "compile_python",
    "SharedMemoryVM",
    "BatchedVM",
    "run_shared_memory_check",
]
