"""Inline C code generation from a scheduled, allocated SDF graph.

The paper's framework is the back end of a block-diagram compiler: after
scheduling and storage allocation it emits *threaded* inline code — the
nested loop structure of the SAS with each actor's code block invoked in
place, all buffers carved out of one statically allocated shared memory
pool at the offsets first-fit chose.

:func:`emit_c` renders that output as self-contained C:

* one ``static token_t memory[TOTAL]`` pool;
* a ``#define`` per buffer for its base offset;
* per-edge read/write cursors, reset at the top of each iteration of
  the buffer's innermost common loop (the least parent in the schedule
  tree), which is where each live episode begins;
* the loop nest mirroring the schedule tree, with a
  ``fire_<actor>(in..., out...)`` macro invocation per leaf;
* actor macro stubs the user replaces with real code blocks.

Edges with initial tokens use circular cursors (they may stay occupied
across the period boundary).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..exceptions import CodegenError
from ..sdf.graph import Edge, SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..allocation.first_fit import Allocation
from ..lifetimes.intervals import LifetimeSet, least_parent_of
from ..lifetimes.schedule_tree import ScheduleTreeNode

__all__ = ["emit_c"]


def _buffer_macro(edge: Edge) -> str:
    if edge.broadcast is not None:
        return _group_macro(edge.source, edge.broadcast)
    name = f"BUF_{edge.source}_{edge.sink}"
    if edge.index:
        name += f"_{edge.index}"
    return name.upper()


def _group_macro(source: str, group: str) -> str:
    return f"BUF_{source}__{group}".upper()


def _group_cursor(group: str, which: str) -> str:
    return f"{which}_bc_{group}"


def _out_ports(graph: SDFGraph, actor: str) -> List[Edge]:
    """Output ports of ``actor``: one per ordinary edge, one per group."""
    ports: List[Edge] = []
    seen = set()
    for e in graph.out_edges(actor):
        if e.broadcast is None:
            ports.append(e)
        elif e.broadcast not in seen:
            seen.add(e.broadcast)
            ports.append(e)
    return ports


def _cursor(edge: Edge, which: str) -> str:
    suffix = f"_{edge.index}" if edge.index else ""
    return f"{which}_{edge.source}_{edge.sink}{suffix}"


def _counter(edge: Edge, which: str) -> str:
    suffix = f"_{edge.index}" if edge.index else ""
    return f"{which}_{edge.source}_{edge.sink}{suffix}"


def emit_c(
    graph: SDFGraph,
    lifetimes: LifetimeSet,
    allocation: Allocation,
    system_name: Optional[str] = None,
    instrument: bool = False,
    periods: int = 2,
) -> str:
    """Render the shared-memory implementation of a scheduled graph.

    ``lifetimes`` must have been extracted from the schedule being
    emitted (its schedule tree drives the loop structure), and
    ``allocation`` must cover every buffer in it.

    With ``instrument=True`` the actor stubs become self-checking
    firing functions: every produced token carries a unique
    ``(edge, sequence)`` value, every consumption verifies it, and
    ``main`` runs ``periods`` schedule periods and prints
    ``SELFCHECK OK`` — so the generated program, compiled with any C
    compiler, proves the allocation safe on real hardware (the C-level
    counterpart of :mod:`repro.codegen.vm`).
    """
    q = repetitions_vector(graph)
    name = system_name or graph.name
    lines: List[str] = []
    lines.append(f"/* Generated shared-memory implementation of {name!r}.")
    lines.append(" * Schedule: " + str(lifetimes.tree.schedule))
    lines.append(" * Pool size: %d words." % allocation.total)
    lines.append(" */")
    lines.append("")
    lines.append("#include <stddef.h>")
    if instrument:
        lines.append("#include <stdio.h>")
        lines.append("#include <stdlib.h>")
        lines.append("")
        lines.append("typedef long token_t;")
        lines.append("")
        lines.append("#define TOKEN(e, s) ((token_t)(e) * 1000003L + (s))")
        lines.append("static long fired = 0;")
    else:
        lines.append("")
        lines.append("typedef int token_t;")
    lines.append("")
    lines.append(f"static token_t memory[{max(allocation.total, 1)}];")
    lines.append("")

    edges = graph.edge_list()
    ordinary = [e for e in edges if e.broadcast is None]
    groups = graph.broadcast_groups()
    # One buffer per ordinary edge; one shared buffer per broadcast
    # group (the members all map to the same lifetime object, so the
    # first member's lifetime names the group's array).
    buffer_edges = ordinary + [members[0] for members in groups.values()]
    for e in buffer_edges:
        lt = lifetimes.lifetimes[e.key]
        try:
            offset = allocation.offsets[lt.name]
        except KeyError:
            raise CodegenError(
                f"allocation missing buffer {lt.name!r}"
            ) from None
        lines.append(
            f"#define {_buffer_macro(e)} (memory + {offset})"
            f"  /* {lt.size} words, lifetime {lt} */"
        )
    lines.append("")

    # Ordinary edges own a write and read cursor each; a broadcast group
    # owns one shared write cursor while each member sink keeps its own
    # read cursor over the shared array.
    for e in ordinary:
        lines.append(f"static size_t {_cursor(e, 'wr')} = 0;")
        lines.append(f"static size_t {_cursor(e, 'rd')} = 0;")
    for gname, members in groups.items():
        lines.append(f"static size_t {_group_cursor(gname, 'wr')} = 0;")
        for e in members:
            lines.append(f"static size_t {_cursor(e, 'rd')} = 0;")
    if instrument:
        # Token identities: one id per physical buffer (members share
        # the group's id — every reader verifies the one write stream).
        token_id = {e.key: i for i, e in enumerate(ordinary)}
        for offset_id, (gname, members) in enumerate(groups.items()):
            for e in members:
                token_id[e.key] = len(ordinary) + offset_id
        for e in ordinary:
            lines.append(f"static long {_counter(e, 'produced')} = 0;")
            lines.append(f"static long {_counter(e, 'consumed')} = 0;")
        for gname, members in groups.items():
            lines.append(
                f"static long {_group_cursor(gname, 'produced')} = 0;"
            )
            for e in members:
                lines.append(f"static long {_counter(e, 'consumed')} = 0;")
    lines.append("")

    if instrument:
        # Self-checking firing functions: verify each consumed word,
        # stamp each produced word.  They own the cursor advancement
        # (word-wise, wrapping on circular buffers), so the loop nest
        # only calls fire_<actor>().
        for actor in graph.actor_names():
            in_edges = graph.in_edges(actor)
            out_edges = graph.out_edges(actor)
            lines.append(f"static void fire_{actor}(void)")
            lines.append("{")
            lines.append("    fired++;")
            for e in in_edges:
                words = e.consumption * e.token_size
                size = lifetimes.lifetimes[e.key].size
                rd = _cursor(e, "rd")
                lines.append(f"    for (int w = 0; w < {words}; ++w) {{")
                if e.delay > 0:
                    lines.append(
                        f"        if ({rd} >= {size}) {rd} = 0;"
                    )
                lines.append(
                    f"        if ({_buffer_macro(e)}[{rd}] != "
                    f"TOKEN({token_id[e.key]}, "
                    f"{_counter(e, 'consumed')}++)) {{"
                )
                lines.append(
                    f'            fprintf(stderr, "SELFCHECK FAIL: '
                    f'{actor} reading {e.source}->{e.sink} word %d '
                    f'(firing %ld)\\n", w, fired);'
                )
                lines.append("            exit(1);")
                lines.append("        }")
                lines.append(f"        {rd}++;")
                lines.append("    }")
            written_groups = set()
            for e in out_edges:
                words = e.production * e.token_size
                size = lifetimes.lifetimes[e.key].size
                if e.broadcast is None:
                    wr = _cursor(e, "wr")
                    produced = _counter(e, "produced")
                elif e.broadcast not in written_groups:
                    # One physical write per group per firing.
                    written_groups.add(e.broadcast)
                    wr = _group_cursor(e.broadcast, "wr")
                    produced = _group_cursor(e.broadcast, "produced")
                else:
                    continue
                lines.append(f"    for (int w = 0; w < {words}; ++w) {{")
                if e.delay > 0:
                    lines.append(
                        f"        if ({wr} >= {size}) {wr} = 0;"
                    )
                lines.append(
                    f"        {_buffer_macro(e)}[{wr}++] = "
                    f"TOKEN({token_id[e.key]}, {produced}++);"
                )
                lines.append("    }")
            lines.append("}")
            lines.append("")
    else:
        # Actor firing macros: stubs listing the I/O the code block
        # gets — one input per in-edge, one output per *port* (a
        # broadcast group is a single port however many sinks it has).
        for actor in graph.actor_names():
            arity = len(graph.in_edges(actor)) + len(
                _out_ports(graph, actor)
            )
            params = ", ".join(f"p{i}" for i in range(arity)) or "void"
            lines.append(
                f"#define fire_{actor}({params}) /* actor code block */"
            )
    lines.append("")

    # Map each buffer to its least parent for cursor resets.  Each
    # entry is (write cursor name, [read cursor names]); a broadcast
    # group resets its shared write cursor and every member's read
    # cursor at the group's least parent (the LCA of source and all
    # sinks — where each live episode of the shared buffer begins).
    reset_at: Dict[int, List[Tuple[str, List[str]]]] = {}
    for e in ordinary:
        if e.delay > 0:
            continue  # circular cursors, never reset
        lp = lifetimes.tree.least_parent(e.source, e.sink)
        reset_at.setdefault(id(lp), []).append(
            (_cursor(e, "wr"), [_cursor(e, "rd")])
        )
    for gname, members in groups.items():
        if members[0].delay > 0:
            continue
        lp = least_parent_of(
            lifetimes.tree,
            [members[0].source] + [m.sink for m in members],
        )
        reset_at.setdefault(id(lp), []).append(
            (
                _group_cursor(gname, "wr"),
                [_cursor(m, "rd") for m in members],
            )
        )

    body: List[str] = []

    def emit_node(node: ScheduleTreeNode, indent: int) -> None:
        pad = "    " * indent
        if node.is_leaf():
            actor = node.actor
            body.append(
                f"{pad}for (int r = 0; r < {node.residual}; ++r) {{"
                if node.residual > 1
                else f"{pad}{{"
            )
            inner = pad + "    "
            if instrument:
                body.append(f"{inner}fire_{actor}();")
            else:
                out_ports = _out_ports(graph, actor)

                def wr_name(e: Edge) -> str:
                    if e.broadcast is None:
                        return _cursor(e, "wr")
                    return _group_cursor(e.broadcast, "wr")

                args: List[str] = []
                for e in graph.in_edges(actor):
                    args.append(f"{_buffer_macro(e)} + {_cursor(e, 'rd')}")
                for e in out_ports:
                    args.append(f"{_buffer_macro(e)} + {wr_name(e)}")
                body.append(f"{inner}fire_{actor}({', '.join(args)});")
                for e in graph.in_edges(actor):
                    step = e.consumption * e.token_size
                    if e.delay > 0:
                        size = lifetimes.lifetimes[e.key].size
                        body.append(
                            f"{inner}{_cursor(e, 'rd')} = "
                            f"({_cursor(e, 'rd')} + {step}) % {size};"
                        )
                    else:
                        body.append(f"{inner}{_cursor(e, 'rd')} += {step};")
                for e in out_ports:
                    step = e.production * e.token_size
                    if e.delay > 0:
                        size = lifetimes.lifetimes[e.key].size
                        body.append(
                            f"{inner}{wr_name(e)} = "
                            f"({wr_name(e)} + {step}) % {size};"
                        )
                    else:
                        body.append(f"{inner}{wr_name(e)} += {step};")
            body.append(f"{pad}}}")
            return
        loop_var = f"i{indent}"
        if node.loop > 1:
            body.append(
                f"{pad}for (int {loop_var} = 0; {loop_var} < {node.loop}; "
                f"++{loop_var}) {{"
            )
            inner_indent = indent + 1
        else:
            body.append(f"{pad}{{")
            inner_indent = indent + 1
        inner_pad = "    " * inner_indent
        for wr, rds in reset_at.get(id(node), ()):
            body.append(f"{inner_pad}{wr} = 0;")
            for rd in rds:
                body.append(f"{inner_pad}{rd} = 0;")
        emit_node(node.left, inner_indent)
        emit_node(node.right, inner_indent)
        body.append(f"{pad}}}")

    lines.append("void run_one_period(void)")
    lines.append("{")
    root = lifetimes.tree.root
    # Delayed edges start with their initial tokens already written.
    delayed = [e for e in edges if e.delay > 0]
    if delayed:
        lines.append("    /* initial tokens (delays) are assumed to be")
        lines.append("     * preloaded by init_delays() below. */")
    emit_node(root, 1)
    lines.extend(body)
    lines.append("}")
    lines.append("")
    lines.append("void init_delays(void)")
    lines.append("{")
    for e in delayed:
        step = e.delay * e.token_size
        size = lifetimes.lifetimes[e.key].size
        if e.broadcast is None:
            wr = _cursor(e, "wr")
            produced = _counter(e, "produced") if instrument else None
        else:
            # Preload a delayed group once (shared buffer); members
            # other than the first are skipped below.
            if e is not graph.broadcast_members(e.broadcast)[0]:
                continue
            wr = _group_cursor(e.broadcast, "wr")
            produced = (
                _group_cursor(e.broadcast, "produced") if instrument else None
            )
        if instrument:
            lines.append(f"    for (int w = 0; w < {step}; ++w) {{")
            lines.append(
                f"        {_buffer_macro(e)}[w % {size}] = "
                f"TOKEN({token_id[e.key]}, w);"
            )
            lines.append("    }")
            lines.append(f"    {produced} = {step};")
        lines.append(f"    {wr} = {step} % {size};")
    lines.append("}")
    lines.append("")
    lines.append("int main(void)")
    lines.append("{")
    lines.append("    init_delays();")
    if instrument:
        lines.append(f"    for (int p = 0; p < {periods}; ++p) {{")
        lines.append("        run_one_period();")
        lines.append("    }")
        lines.append('    printf("SELFCHECK OK %ld firings\\n", fired);')
    else:
        lines.append("    for (;;) {")
        lines.append("        run_one_period();")
        lines.append("    }")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
