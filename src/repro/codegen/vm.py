"""Shared-memory execution of a scheduled, allocated SDF graph.

The strongest check an allocation can pass is *functional*: run the
schedule with every buffer living at its assigned offset in one shared
memory array, write a unique value for every produced token, and verify
that every consumer reads back exactly the value its producer wrote.
Any unsafe overlay — two time-overlapping buffers sharing addresses —
corrupts a token and is caught at the consuming firing.

:class:`SharedMemoryVM` performs exactly the memory discipline of the
generated C code (:mod:`repro.codegen.c_emitter`): linear per-episode
cursors reset at each iteration of the buffer's least-parent loop, and
circular cursors for delayed edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import CodegenError
from ..sdf.graph import Edge, SDFGraph
from ..allocation.first_fit import Allocation
from ..lifetimes.intervals import LifetimeSet, least_parent_of
from ..lifetimes.schedule_tree import ScheduleTreeNode

__all__ = ["SharedMemoryVM", "run_shared_memory_check"]

_Token = Tuple[Tuple[str, str, int], int]  # (edge key, sequence number)


@dataclass
class _EdgeState:
    edge: Edge
    base: int
    size_words: int
    write_cursor: int = 0
    read_cursor: int = 0
    produced: int = 0
    consumed: int = 0
    circular: bool = False

    def reset_cursors(self) -> None:
        self.write_cursor = 0
        self.read_cursor = 0


@dataclass
class _Reader:
    """One member sink's view of a broadcast group's shared buffer."""

    edge: Edge
    cursor: int = 0
    consumed: int = 0


@dataclass
class _GroupState:
    """A broadcast group: one write side, one reader per member sink.

    ``write`` reuses the edge-state machinery with the first member's
    edge (members share production/delay/token_size); tokens are
    written once per group and identified by that member's key, which
    every reader expects.
    """

    name: str
    write: _EdgeState
    readers: Dict[Tuple[str, str, int], _Reader]

    def reset_cursors(self) -> None:
        self.write.reset_cursors()
        for r in self.readers.values():
            r.cursor = 0


class SharedMemoryVM:
    """Execute a SAS against a first-fit allocation with token checking.

    Parameters
    ----------
    graph, lifetimes, allocation:
        The outputs of the scheduling pipeline; ``lifetimes`` carries
        the schedule tree that defines the loop structure to execute.

    Raises
    ------
    CodegenError
        On any token mismatch (memory corruption through an unsafe
        overlay) or cursor overrun.
    """

    def __init__(
        self,
        graph: SDFGraph,
        lifetimes: LifetimeSet,
        allocation: Allocation,
    ) -> None:
        self.graph = graph
        self.lifetimes = lifetimes
        self.allocation = allocation
        self.memory: List[Optional[_Token]] = [None] * max(allocation.total, 1)
        self._edges: Dict[Tuple[str, str, int], _EdgeState] = {}
        self._groups: Dict[str, _GroupState] = {}
        self._reset_at: Dict[int, List] = {}
        for e in graph.edge_list():
            if e.broadcast is not None:
                continue
            lt = lifetimes.lifetimes[e.key]
            state = _EdgeState(
                edge=e,
                base=allocation.offset_of(lt.name),
                size_words=lt.size,
                circular=e.delay > 0,
            )
            self._edges[e.key] = state
            if not state.circular:
                lp = lifetimes.tree.least_parent(e.source, e.sink)
                self._reset_at.setdefault(id(lp), []).append(state)
        for name, members in graph.broadcast_groups().items():
            first = members[0]
            lt = lifetimes.lifetimes[first.key]
            group = _GroupState(
                name=name,
                write=_EdgeState(
                    edge=first,
                    base=allocation.offset_of(lt.name),
                    size_words=lt.size,
                    circular=first.delay > 0,
                ),
                readers={m.key: _Reader(edge=m) for m in members},
            )
            self._groups[name] = group
            if not group.write.circular:
                lp = least_parent_of(
                    lifetimes.tree,
                    [first.source] + [m.sink for m in members],
                )
                self._reset_at.setdefault(id(lp), []).append(group)
        self.firings = 0
        #: Per-actor firing counts, for differential comparison against
        #: the schedule interpreter's flattened firing sequence.
        self.firings_per_actor: Dict[str, int] = {
            a: 0 for a in graph.actor_names()
        }
        #: One past the highest memory word ever written — must never
        #: exceed ``allocation.total`` (checked by the harness).
        self.peak_address = 0

    # ------------------------------------------------------------------
    def preload_delays(self) -> None:
        """Write the initial tokens of delayed edges into memory.

        A delayed broadcast group preloads *once* — its members share
        the delay tokens in the one physical buffer.
        """
        for state in self._edges.values():
            e = state.edge
            if e.delay == 0:
                continue
            for _ in range(e.delay):
                self._write_token(state)
        for group in self._groups.values():
            e = group.write.edge
            if e.delay == 0:
                continue
            for _ in range(e.delay):
                self._write_token(group.write)

    def run_period(self) -> None:
        """Execute one complete schedule period."""
        self._run_node(self.lifetimes.tree.root)

    def run(self, periods: int = 1, recorder=None) -> None:
        """Preload delays and run ``periods`` schedule periods.

        With a ``recorder``, the VM's total firing count is flushed to
        the ``vm.firings`` counter after the balance check.
        """
        self.preload_delays()
        for _ in range(periods):
            self.run_period()
        self._check_balance()
        if recorder is not None:
            recorder.count("vm.firings", self.firings)

    # ------------------------------------------------------------------
    def _run_node(self, node: ScheduleTreeNode) -> None:
        if node.is_leaf():
            for _ in range(node.residual):
                self._fire(node.actor)
            return
        for _ in range(node.loop):
            for state in self._reset_at.get(id(node), ()):
                state.reset_cursors()
            self._run_node(node.left)
            self._run_node(node.right)

    def _fire(self, actor: str) -> None:
        self.firings += 1
        self.firings_per_actor[actor] += 1
        for e in self.graph.in_edges(actor):
            if e.broadcast is None:
                state = self._edges[e.key]
                for _ in range(e.consumption):
                    self._read_token(state)
            else:
                group = self._groups[e.broadcast]
                reader = group.readers[e.key]
                for _ in range(e.consumption):
                    self._read_group_token(group, reader)
        written = set()
        for e in self.graph.out_edges(actor):
            if e.broadcast is None:
                state = self._edges[e.key]
                for _ in range(e.production):
                    self._write_token(state)
            elif e.broadcast not in written:
                # One physical write per group, regardless of fan-out.
                written.add(e.broadcast)
                group = self._groups[e.broadcast]
                for _ in range(e.production):
                    self._write_token(group.write)

    def _write_token(self, state: _EdgeState) -> None:
        e = state.edge
        words = e.token_size
        if state.write_cursor + words > state.size_words:
            if state.circular:
                state.write_cursor = 0
            else:
                raise CodegenError(
                    f"buffer {e} overruns its array: write cursor "
                    f"{state.write_cursor} + {words} > {state.size_words} "
                    f"(firing {self.firings})"
                )
        token: _Token = (e.key, state.produced)
        for w in range(words):
            self.memory[state.base + state.write_cursor + w] = token
        state.write_cursor += words
        state.produced += 1
        top = state.base + state.write_cursor
        if top > self.peak_address:
            self.peak_address = top

    def _read_token(self, state: _EdgeState) -> None:
        e = state.edge
        words = e.token_size
        if state.read_cursor + words > state.size_words:
            if state.circular:
                state.read_cursor = 0
            else:
                raise CodegenError(
                    f"buffer {e} read cursor overruns: "
                    f"{state.read_cursor} + {words} > {state.size_words} "
                    f"(firing {self.firings})"
                )
        expected: _Token = (e.key, state.consumed)
        for w in range(words):
            actual = self.memory[state.base + state.read_cursor + w]
            if actual != expected:
                raise CodegenError(
                    f"token corruption on {e}: expected token "
                    f"#{state.consumed}, found "
                    f"{actual!r} at address "
                    f"{state.base + state.read_cursor + w} "
                    f"(firing {self.firings}) — unsafe buffer overlay"
                )
        state.read_cursor += words
        state.consumed += 1

    def _read_group_token(self, group: _GroupState, reader: _Reader) -> None:
        """Read one token for a member sink from the shared group buffer.

        Each reader owns its cursor and sequence counter over the one
        buffer the group's write side filled; the expected token
        identity is the group's (written once per group).
        """
        e = reader.edge
        write = group.write
        words = e.token_size
        if reader.cursor + words > write.size_words:
            if write.circular:
                reader.cursor = 0
            else:
                raise CodegenError(
                    f"broadcast {group.name} member {e} read cursor "
                    f"overruns: {reader.cursor} + {words} > "
                    f"{write.size_words} (firing {self.firings})"
                )
        expected: _Token = (write.edge.key, reader.consumed)
        for w in range(words):
            actual = self.memory[write.base + reader.cursor + w]
            if actual != expected:
                raise CodegenError(
                    f"token corruption on broadcast {group.name} member "
                    f"{e}: expected token #{reader.consumed}, found "
                    f"{actual!r} at address {write.base + reader.cursor + w} "
                    f"(firing {self.firings}) — unsafe buffer overlay"
                )
        reader.cursor += words
        reader.consumed += 1

    def _check_balance(self) -> None:
        for state in self._edges.values():
            e = state.edge
            outstanding = state.produced - state.consumed
            if outstanding != e.delay:
                raise CodegenError(
                    f"edge {e} ends with {outstanding} tokens in flight, "
                    f"expected {e.delay}"
                )
        for group in self._groups.values():
            for reader in group.readers.values():
                outstanding = group.write.produced - reader.consumed
                if outstanding != reader.edge.delay:
                    raise CodegenError(
                        f"broadcast {group.name} member {reader.edge} ends "
                        f"with {outstanding} tokens in flight, expected "
                        f"{reader.edge.delay}"
                    )


def run_shared_memory_check(
    graph: SDFGraph,
    lifetimes: LifetimeSet,
    allocation: Allocation,
    periods: int = 2,
    recorder=None,
    vm_class=None,
) -> int:
    """Run the VM for ``periods`` periods; returns total firings.

    Running at least two periods exercises the period boundary (delayed
    edges wrapping their circular cursors, episode-cursor resets).
    ``vm_class`` selects the engine: the scalar :class:`SharedMemoryVM`
    (default) or :class:`repro.codegen.batched_vm.BatchedVM`, which
    runs each firing block as one array transfer under the same memory
    discipline.
    """
    vm = (vm_class or SharedMemoryVM)(graph, lifetimes, allocation)
    vm.run(periods=periods, recorder=recorder)
    return vm.firings
