"""Executable Python code generation from a scheduled, allocated graph.

The C emitter (:mod:`repro.codegen.c_emitter`) produces source the test
environment cannot compile; this emitter produces the same program as
Python so the repository can *run its own output*: the generated module
defines ``run(actors, periods)`` where ``actors`` maps actor names to
Python callables ``f(inputs: list[list[int]]) -> list[list[int]]``
(token lists per input/output edge, in graph edge order).  All buffers
live in one shared ``memory`` list at their first-fit offsets, with the
same cursor discipline as the C code.

Tests execute generated modules with functional actors (e.g. real FIR
arithmetic) and compare against a reference interpreter — closing the
loop from paper algorithm to runnable program.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import CodegenError
from ..sdf.graph import SDFGraph
from ..allocation.first_fit import Allocation
from ..lifetimes.intervals import LifetimeSet, least_parent_of
from ..lifetimes.schedule_tree import ScheduleTreeNode

__all__ = ["emit_python", "compile_python"]


def _edge_var(key) -> str:
    source, sink, index = key
    suffix = f"_{index}" if index else ""
    return f"{source}_{sink}{suffix}"


def emit_python(
    graph: SDFGraph,
    lifetimes: LifetimeSet,
    allocation: Allocation,
) -> str:
    """Render the shared-memory implementation as a Python module."""
    lines: List[str] = []
    lines.append('"""Generated shared-memory SDF implementation."""')
    lines.append("")
    lines.append(f"POOL_SIZE = {max(allocation.total, 1)}")
    lines.append("")
    # Physical buffers: one per ordinary edge, one per broadcast group
    # (identified as ('bcast', name), written once per production and
    # read through a per-member cursor).
    groups = graph.broadcast_groups()
    buffer_id = {}
    for e in graph.edges():
        buffer_id[e.key] = (
            e.key if e.broadcast is None else ("bcast", e.broadcast)
        )
    entries = []
    for e in graph.edges():
        if e.broadcast is None:
            entries.append((e.key, e))
    for name, members in groups.items():
        entries.append((("bcast", name), members[0]))
    offsets = {}
    sizes = {}
    circular = {}
    for bid, e in entries:
        lt = lifetimes.lifetimes[e.key]
        try:
            offsets[bid] = allocation.offsets[lt.name]
        except KeyError:
            raise CodegenError(f"allocation missing buffer {lt.name!r}") from None
        sizes[bid] = lt.size
        circular[bid] = e.delay > 0

    lines.append("BUFFERS = {")
    for bid, e in entries:
        lines.append(
            f"    {bid!r}: dict(base={offsets[bid]}, "
            f"size={sizes[bid]}, circular={circular[bid]}),"
        )
    lines.append("}")
    lines.append("")
    lines.append("# Read port -> physical buffer (broadcast members share one).")
    lines.append("READERS = {")
    for e in graph.edges():
        lines.append(f"    {e.key!r}: {buffer_id[e.key]!r},")
    lines.append("}")
    lines.append("")
    lines.append("""
class _Cursors:
    def __init__(self):
        self.wr = {key: 0 for key in BUFFERS}
        self.rd = {key: 0 for key in READERS}

    def reset(self, key):
        self.wr[key] = 0
        for rk, bid in READERS.items():
            if bid == key:
                self.rd[rk] = 0


def _write(memory, cursors, key, values):
    info = BUFFERS[key]
    for value in values:
        if cursors.wr[key] >= info["size"]:
            if not info["circular"]:
                raise IndexError(f"buffer overrun on {key}")
            cursors.wr[key] = 0
        memory[info["base"] + cursors.wr[key]] = value
        cursors.wr[key] += 1


def _read(memory, cursors, key, count):
    info = BUFFERS[READERS[key]]
    out = []
    for _ in range(count):
        if cursors.rd[key] >= info["size"]:
            if not info["circular"]:
                raise IndexError(f"buffer underrun on {key}")
            cursors.rd[key] = 0
        out.append(memory[info["base"] + cursors.rd[key]])
        cursors.rd[key] += 1
    return out
""")

    # Per-actor firing functions.  Output *ports*: each ordinary edge
    # is its own port; a broadcast group is one port (its token list is
    # written once into the shared buffer).
    for actor in graph.actor_names():
        in_edges = graph.in_edges(actor)
        out_ports = []
        seen_groups = set()
        for e in graph.out_edges(actor):
            if e.broadcast is None:
                out_ports.append((e.key, e))
            elif e.broadcast not in seen_groups:
                seen_groups.add(e.broadcast)
                out_ports.append((("bcast", e.broadcast), e))
        lines.append(f"def _fire_{actor}(memory, cursors, actors):")
        lines.append("    inputs = []")
        for e in in_edges:
            lines.append(
                f"    inputs.append(_read(memory, cursors, {e.key!r}, "
                f"{e.consumption * e.token_size}))"
            )
        lines.append(f"    outputs = actors[{actor!r}](inputs)")
        expected = len(out_ports)
        lines.append(
            f"    if len(outputs) != {expected}:"
        )
        lines.append(
            f"        raise ValueError('actor {actor} must return "
            f"{expected} output token lists')"
        )
        for position, (bid, e) in enumerate(out_ports):
            lines.append(
                f"    if len(outputs[{position}]) != "
                f"{e.production * e.token_size}:"
            )
            lines.append(
                f"        raise ValueError('actor {actor} output "
                f"{position} must have {e.production * e.token_size} words')"
            )
            lines.append(
                f"    _write(memory, cursors, {bid!r}, outputs[{position}])"
            )
        lines.append("")

    # Loop nest from the schedule tree.
    body: List[str] = []
    reset_keys: Dict[int, List] = {}
    for e in graph.edges():
        if e.delay > 0 or e.broadcast is not None:
            continue
        lp = lifetimes.tree.least_parent(e.source, e.sink)
        reset_keys.setdefault(id(lp), []).append(e.key)
    for name, members in groups.items():
        first = members[0]
        if first.delay > 0:
            continue
        lp = least_parent_of(
            lifetimes.tree, [first.source] + [m.sink for m in members]
        )
        reset_keys.setdefault(id(lp), []).append(("bcast", name))

    def emit(node: ScheduleTreeNode, indent: int) -> None:
        pad = "    " * indent
        if node.is_leaf():
            if node.residual > 1:
                body.append(f"{pad}for _ in range({node.residual}):")
                body.append(
                    f"{pad}    _fire_{node.actor}(memory, cursors, actors)"
                )
            else:
                body.append(
                    f"{pad}_fire_{node.actor}(memory, cursors, actors)"
                )
            return
        if node.loop > 1:
            body.append(f"{pad}for _ in range({node.loop}):")
            inner = indent + 1
        else:
            inner = indent
        inner_pad = "    " * inner
        for key in reset_keys.get(id(node), ()):
            body.append(f"{inner_pad}cursors.reset({key!r})")
        emit(node.left, inner)
        emit(node.right, inner)

    lines.append("def run_period(memory, cursors, actors):")
    emit(lifetimes.tree.root, 1)
    lines.extend(body)
    lines.append("")
    lines.append("""
def run(actors, periods=1, memory=None, preloads=None):
    \"\"\"Execute `periods` schedule periods; returns the memory pool.

    `preloads` maps buffer ids (edge keys; ('bcast', name) for a
    broadcast group, preloaded once) to the initial (delay) token word
    lists written before the first period.
    \"\"\"
    if memory is None:
        memory = [0] * POOL_SIZE
    cursors = _Cursors()
    for key, values in (preloads or {}).items():
        _write(memory, cursors, key, values)
    for _ in range(periods):
        run_period(memory, cursors, actors)
    return memory
""")
    return "\n".join(lines) + "\n"


def compile_python(
    graph: SDFGraph,
    lifetimes: LifetimeSet,
    allocation: Allocation,
):
    """Exec the generated module and return its namespace dict."""
    source = emit_python(graph, lifetimes, allocation)
    namespace: Dict[str, object] = {}
    exec(compile(source, "<generated sdf module>", "exec"), namespace)
    namespace["__source__"] = source
    return namespace
