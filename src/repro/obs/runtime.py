"""Ambient recorder for code the runner fans out to workers.

The pipeline threads its recorder explicitly; worker *task functions*
(module-level, picklable, fixed signatures) cannot take one as an
argument without breaking the ``parallel_map`` contract.  Instead the
runner activates a per-task recorder around each call and task bodies
fetch it with :func:`current` — the same mechanism on the serial and
parallel paths, so the recorded trees match.

This is deliberately a plain stack, not a contextvar: recorders are
single-threaded per process, and the stack makes nesting (a traced task
that itself activates a sub-recorder) explicit and cheap.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List

from .recorder import NULL_RECORDER, Recorder

__all__ = ["current", "activate"]

_ACTIVE: List[Recorder] = []


def current() -> Recorder:
    """The innermost activated recorder, or the shared NullRecorder."""
    return _ACTIVE[-1] if _ACTIVE else NULL_RECORDER


@contextmanager
def activate(recorder: Recorder) -> Iterator[Recorder]:
    """Make ``recorder`` the ambient recorder within the block."""
    _ACTIVE.append(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.pop()
