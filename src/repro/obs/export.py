"""Trace export: JSON-lines, Chrome ``traceEvents``, and text stats.

Chrome format: the ``{"traceEvents": [...]}`` object form with complete
("ph": "X") events, loadable in ``chrome://tracing`` and Perfetto.
Span clock readings are interpreted as seconds and exported as
microsecond timestamps; a deterministic integer clock simply yields a
trace on an abstract microsecond axis, which both viewers accept.

JSON-lines format: one object per line — ``{"type": "span", ...}`` in
depth-first order with an explicit ``depth``, then one
``{"type": "counter", "name": ..., "total": ...}`` per aggregate
counter — greppable and streamable without loading the whole trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .recorder import TraceRecorder

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "format_stats",
]


def _us(seconds: float) -> float:
    return round(seconds * 1_000_000, 3)


def chrome_trace_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """Complete-span events for every recorded span, depth-first."""
    events: List[Dict[str, Any]] = []
    for _depth, span in recorder.iter_spans():
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = dict(span.attrs)
        args.update(span.counters)
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": _us(span.start),
                "dur": _us(end - span.start),
                "args": args,
            }
        )
    return events


def write_chrome_trace(recorder: TraceRecorder, path: str) -> None:
    """Write the ``chrome://tracing`` object form, counters included."""
    payload = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {"counters": recorder.counter_totals()},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def write_jsonl(recorder: TraceRecorder, path: str) -> None:
    with open(path, "w") as fh:
        for depth, span in recorder.iter_spans():
            end = span.end if span.end is not None else span.start
            row: Dict[str, Any] = {
                "type": "span",
                "name": span.name,
                "depth": depth,
                "start": span.start,
                "dur": end - span.start,
            }
            if span.attrs:
                row["attrs"] = span.attrs
            if span.counters:
                row["counters"] = span.counters
            if span.error is not None:
                row["error"] = span.error
            fh.write(json.dumps(row) + "\n")
        for name, total in sorted(recorder.counter_totals().items()):
            fh.write(
                json.dumps({"type": "counter", "name": name, "total": total})
                + "\n"
            )


def write_trace(recorder: TraceRecorder, path: str, fmt: str = "auto") -> str:
    """Write ``path`` in ``fmt`` (``chrome``/``jsonl``/``auto``).

    ``auto`` picks by extension: ``.jsonl`` means JSON-lines, anything
    else the Chrome object form.  Returns the format used.
    """
    if fmt == "auto":
        fmt = "jsonl" if path.endswith(".jsonl") else "chrome"
    if fmt == "chrome":
        write_chrome_trace(recorder, path)
    elif fmt == "jsonl":
        write_jsonl(recorder, path)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    return fmt


def format_stats(recorder: TraceRecorder) -> str:
    """Aggregate table: per span name (calls, total wall), then counters.

    Span durations only aggregate cleanly under a real clock; under a
    deterministic stub the wall column is still shown (it is whatever
    the stub measures) but the counter table is the part that is exact
    by construction.
    """
    by_name: Dict[str, List[float]] = {}
    order: List[str] = []
    for _depth, span in recorder.iter_spans():
        if span.name not in by_name:
            by_name[span.name] = [0, 0.0]
            order.append(span.name)
        agg = by_name[span.name]
        agg[0] += 1
        agg[1] += span.duration
    lines = [f"{'span':>24} {'calls':>7} {'wall_s':>10}"]
    for name in order:
        calls, wall = by_name[name]
        lines.append(f"{name:>24} {int(calls):>7} {wall:>10.4f}")
    totals = recorder.counter_totals()
    if totals:
        lines.append("")
        lines.append(f"{'counter':>32} {'total':>12}")
        for name in sorted(totals):
            lines.append(f"{name:>32} {totals[name]:>12}")
    return "\n".join(lines)
