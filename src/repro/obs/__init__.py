"""Structured observability: spans, counters, and trace export.

The compiler's stages answer *what* they computed; this package answers
*where the time and work went*.  It grows the flat ``TimingReport`` of
the experiment runner into:

* hierarchical **spans** — nested stage timings recorded against an
  injected monotonic clock (:class:`TraceRecorder`), so the check
  harness can substitute a deterministic counter clock and stay
  reproducible;
* **counters** — cheap additive tallies (DP candidate cells, window
  cache hits/misses, heuristic moves, first-fit placement probes,
  interpreter firings vs symbolic shortcuts, VM firings, allocated
  words) attached to the span that was open when they were counted.

A single :class:`Recorder` protocol is threaded through the pipeline
(``implement(recorder=...)``), the allocator, the simulators, the VM
and the experiment runner.  The default everywhere is ``recorder=None``
— the code then takes exactly the uninstrumented path — and
:class:`NullRecorder` is the explicit disabled instance: :func:`active`
collapses it back to ``None`` at the hot entry points, so disabled
tracing shares the bare fast path (``benchmarks/bench_obs.py`` asserts
it costs <= 2% on the random-search workload).

Parallel runs are merge-safe: each worker records into its own
:class:`TraceRecorder`, ships the serialized span tree back with its
result, and the parent grafts the trees in task order — so a serial and
a ``REPRO_JOBS>1`` run produce identical counter totals and identical
tree shapes, differing only in timing fields.

Export via :mod:`repro.obs.export`: JSON-lines (one span or counter per
line) and the Chrome ``chrome://tracing`` / Perfetto ``traceEvents``
format, surfaced as ``repro compile --trace``, ``repro check --trace``
and ``repro stats``.
"""

from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    TraceRecorder,
    active,
)
from .runtime import activate, current
from .export import (
    chrome_trace_events,
    format_stats,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)

__all__ = [
    "Recorder",
    "Span",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "active",
    "activate",
    "current",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "format_stats",
]
