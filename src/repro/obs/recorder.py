"""The Recorder protocol: hierarchical spans and additive counters.

Two implementations:

* :class:`NullRecorder` — every operation is a no-op; ``span`` returns
  one shared, reusable null context manager so the disabled path
  allocates nothing.
* :class:`TraceRecorder` — records a forest of :class:`Span` nodes and
  per-span counter tallies against an injected monotonic clock.

The clock is a constructor argument (default
:func:`time.perf_counter`), never a module global: the differential
check harness passes a deterministic counting clock, so recorded traces
are a pure function of the work performed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

try:  # Protocol is typing-only; keep a runtime fallback cheap
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = ["Span", "Recorder", "NullRecorder", "NULL_RECORDER", "TraceRecorder"]


@dataclass
class Span:
    """One timed region: name, interval, attributes, counters, children.

    ``start``/``end`` are clock readings (seconds under the default
    clock; whatever the injected clock returns otherwise).  ``error``
    holds ``repr(exc)`` when the span's block raised — the span still
    closes, which is what keeps partial traces available on exception
    paths.
    """

    name: str
    start: float = 0.0
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def serialize(self) -> Dict[str, Any]:
        """A plain-data (picklable, JSON-able) copy of the subtree."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "error": self.error,
            "children": [c.serialize() for c in self.children],
        }

    @staticmethod
    def deserialize(data: Dict[str, Any]) -> "Span":
        return Span(
            name=data["name"],
            start=data.get("start", 0.0),
            end=data.get("end"),
            attrs=dict(data.get("attrs", {})),
            counters=dict(data.get("counters", {})),
            error=data.get("error"),
            children=[Span.deserialize(c) for c in data.get("children", [])],
        )


class Recorder(Protocol):
    """What instrumented code may call; see the module docstring."""

    enabled: bool

    def span(self, name: str, **attrs: Any):
        """Context manager for a timed region; yields a Span or None."""

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` on the open span."""

    def merge_serialized(self, data: Dict[str, Any]) -> None:
        """Graft a worker's serialized span tree under the open span."""


class _NullSpanContext:
    """Reusable do-nothing context manager (yields None)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullRecorder:
    """Discards everything; safe to share (it holds no state)."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        return None

    def merge_serialized(self, data: Dict[str, Any]) -> None:
        return None


#: The shared disabled recorder; code that wants a non-None recorder
#: default should use this instance rather than allocating its own.
NULL_RECORDER = NullRecorder()


def active(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Normalize a disabled recorder to ``None``.

    A recorder with ``enabled=False`` discards everything by contract,
    so hot entry points (``implement``, ``random_search``) collapse it
    to the bare ``recorder=None`` fast path — disabled tracing then
    costs exactly nothing, not one no-op call per hook site.
    """
    if recorder is None or not getattr(recorder, "enabled", True):
        return None
    return recorder


class _SpanContext:
    """Context manager that opens/closes one span on a TraceRecorder.

    Closes the span on *every* exit path: on exception the span records
    ``error=repr(exc)`` and still pops, so the tree stays well-formed
    and everything recorded before the failure survives.
    """

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        self._recorder._push(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self._span.error = repr(exc)
        self._recorder._pop(self._span)
        return False


class TraceRecorder:
    """Records spans and counters; single-threaded by design.

    Parameters
    ----------
    clock:
        A monotonic zero-argument callable.  Injected so deterministic
        runs (the check harness, unit tests) can pass a counting stub;
        the default is :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        #: Counters recorded while no span is open.
        self.counters: Dict[str, int] = {}
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, Span(name=name, attrs=dict(attrs)))

    def _push(self, span: Span) -> None:
        span.start = self.clock()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[s.name for s in self._stack]}"
            )
        self._stack.pop()

    @property
    def open_spans(self) -> List[str]:
        """Names of currently open spans (empty when well-closed)."""
        return [s.name for s in self._stack]

    # -- counters -------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        if self._stack:
            self._stack[-1].count(name, value)
        else:
            self.counters[name] = self.counters.get(name, 0) + value

    def counter_totals(self) -> Dict[str, int]:
        """All counters summed over the whole forest (plus root-level)."""
        totals = dict(self.counters)

        def walk(span: Span) -> None:
            for k, v in span.counters.items():
                totals[k] = totals.get(k, 0) + v
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return totals

    # -- merging --------------------------------------------------------
    def serialize(self) -> Dict[str, Any]:
        """Plain-data form of the full recording (workers return this)."""
        return {
            "roots": [r.serialize() for r in self.roots],
            "counters": dict(self.counters),
        }

    def merge_serialized(self, data: Dict[str, Any]) -> None:
        """Graft a serialized recording under the currently open span.

        Used by the parent process of a parallel run: workers record
        into fresh recorders and return ``serialize()`` output with
        their results; the parent merges the trees in task order, so
        serial and parallel runs agree on everything but clock fields.
        """
        spans = [Span.deserialize(r) for r in data.get("roots", [])]
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)
        for k, v in data.get("counters", {}).items():
            self.count(k, v)

    # -- convenience ----------------------------------------------------
    def iter_spans(self) -> Iterator[tuple]:
        """Depth-first ``(depth, span)`` over the recorded forest."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))
