"""Shared-memory implementations of synchronous dataflow specifications.

A from-scratch reproduction of Murthy & Bhattacharyya, *"Shared Memory
Implementations of Synchronous Dataflow Specifications Using Lifetime
Analysis Techniques"* (DATE 2000): SDF scheduling that minimizes data
memory by overlaying buffers with disjoint lifetimes.

Quickstart
----------
>>> from repro import SDFGraph, implement_best
>>> g = SDFGraph("example")
>>> _ = g.add_actors("ABC")
>>> _ = g.add_edge("A", "B", 10, 2)
>>> _ = g.add_edge("B", "C", 2, 3)
>>> result = implement_best(g)
>>> result.best_shared <= result.best_nonshared
True

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the
module map.
"""

from .exceptions import (
    AllocationError,
    CodegenError,
    GraphStructureError,
    InconsistentGraphError,
    ScheduleError,
    SDFError,
)
from .sdf import (
    Actor,
    Edge,
    Firing,
    Loop,
    LoopedSchedule,
    SDFGraph,
    bmlb,
    buffer_memory_nonshared,
    flat_single_appearance_schedule,
    is_consistent,
    is_valid_schedule,
    max_tokens,
    parse_schedule,
    repetitions_vector,
    validate_schedule,
)
from .scheduling import (
    apgan,
    chain_sdppo,
    dppo,
    implement,
    implement_best,
    rpmc,
    sdppo,
)
from .lifetimes import PeriodicLifetime, ScheduleTree, extract_lifetimes
from .allocation import (
    ffdur,
    ffstart,
    first_fit,
    mcw_optimistic,
    mcw_pessimistic,
    verify_allocation,
)

__version__ = "1.0.0"

__all__ = [
    "SDFError",
    "GraphStructureError",
    "InconsistentGraphError",
    "ScheduleError",
    "AllocationError",
    "CodegenError",
    "Actor",
    "Edge",
    "SDFGraph",
    "Firing",
    "Loop",
    "LoopedSchedule",
    "parse_schedule",
    "flat_single_appearance_schedule",
    "repetitions_vector",
    "is_consistent",
    "validate_schedule",
    "is_valid_schedule",
    "max_tokens",
    "buffer_memory_nonshared",
    "bmlb",
    "dppo",
    "sdppo",
    "chain_sdppo",
    "apgan",
    "rpmc",
    "implement",
    "implement_best",
    "PeriodicLifetime",
    "ScheduleTree",
    "extract_lifetimes",
    "ffdur",
    "ffstart",
    "first_fit",
    "mcw_optimistic",
    "mcw_pessimistic",
    "verify_allocation",
    "__version__",
]
