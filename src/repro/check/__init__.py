"""Cross-layer differential checking (the always-on oracle subsystem).

PR 1 gave every hot computation a second implementation — delta-trace
vs full-trace simulation, vectorized vs pure-Python DP, serial vs
parallel runners, session-trusted vs re-validated orders.  Redundancy
is an opportunity: wherever two layers claim the same quantity, the
claim is checkable.  This package generates random consistent SDF
graphs, runs them through the full compilation pipeline, and
cross-checks every layer pair:

* schedule interpreter vs :class:`~repro.codegen.vm.SharedMemoryVM` vs
  generated-Python execution (:mod:`repro.codegen.py_emitter`);
* the delta-encoded :class:`~repro.sdf.simulate.TokenTrace` vs a naive
  full-snapshot reference (``max_tokens``, liveness, peaks);
* SDPPO's predicted shared cost vs realized lifetime/allocation totals;
* first-fit vs :func:`~repro.allocation.verify.verify_allocation` vs
  the branch-and-bound optimum on small instances;
* serial vs parallel experiment-runner statistics.

Two mechanisms keep the oracles honest:

* **fault injection** (:mod:`repro.check.fault_injection`) applies
  seeded mutations — perturbed offsets, dropped intersection-graph
  edges, skewed loop bounds, corrupted delta checkpoints, understated
  totals, shrunk buffers — and asserts each one is *caught*: a
  mutation-kill self-test proving the oracles have teeth;
* **counterexample shrinking** (:mod:`repro.check.shrink`) minimizes a
  failing graph while preserving the failure, so every discovered bug
  arrives as a small reproducible regression test.

Entry points: ``python -m repro check [--trials N --seed S --inject]``
and ``make check``.
"""

from .harness import DEFAULT_FAMILIES, CheckFailure, CheckReport, run_check
from .fault_injection import (
    InjectionOutcome,
    InjectionReport,
    MUTATION_CLASSES,
    run_injection_selftest,
)
from .oracles import (
    PipelineArtifacts,
    broadcast_oracles,
    build_artifacts,
    cyclic_oracles,
    run_oracles,
)
from .shrink import shrink_graph

__all__ = [
    "CheckFailure",
    "CheckReport",
    "DEFAULT_FAMILIES",
    "InjectionOutcome",
    "InjectionReport",
    "MUTATION_CLASSES",
    "PipelineArtifacts",
    "broadcast_oracles",
    "build_artifacts",
    "cyclic_oracles",
    "run_check",
    "run_injection_selftest",
    "run_oracles",
    "shrink_graph",
]
