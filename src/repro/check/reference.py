"""Naive reference implementations for differential comparison.

Every function here recomputes a quantity the optimized layers produce
incrementally, using the most direct algorithm available: full
per-step token snapshots, O(firings x edges) walks, per-step clique
sums.  Slow and obviously correct — the point is that the code shares
*nothing* with the delta-trace/streaming fast paths of
:mod:`repro.sdf.simulate`, so agreement is evidence rather than
tautology.  Only suitable for the small graphs the harness generates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..exceptions import ScheduleError
from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule

EdgeKey = Tuple[str, str, int]

__all__ = [
    "full_trace",
    "reference_max_tokens",
    "reference_peak_token_words",
    "reference_total_peak",
    "reference_coarse_intervals",
    "reference_episode_sizes",
    "reference_group_episode_sizes",
    "reference_max_live_tokens",
]


def full_trace(
    graph: SDFGraph, schedule: LoopedSchedule
) -> List[Dict[EdgeKey, int]]:
    """Per-step full token snapshots: ``counts[t]`` after firing ``t``.

    ``counts[0]`` is the initial state (delays).  Raises
    :class:`ScheduleError` if a firing would drive an edge negative,
    matching the interpreter's contract.
    """
    state = {e.key: e.delay for e in graph.edges()}
    snapshots = [dict(state)]
    for actor in schedule.firing_sequence():
        for e in graph.in_edges(actor):
            state[e.key] -= e.consumption
            if state[e.key] < 0:
                raise ScheduleError(
                    f"firing {actor!r} drives edge {e} to "
                    f"{state[e.key]} tokens"
                )
        for e in graph.out_edges(actor):
            state[e.key] += e.production
        snapshots.append(dict(state))
    return snapshots


def reference_max_tokens(
    graph: SDFGraph, schedule: LoopedSchedule
) -> Dict[EdgeKey, int]:
    """Per-edge peak token counts from the full snapshot list."""
    snapshots = full_trace(graph, schedule)
    return {
        e.key: max(s[e.key] for s in snapshots) for e in graph.edges()
    }


def reference_total_peak(
    graph: SDFGraph, schedule: LoopedSchedule
) -> int:
    """Peak over time of the summed live tokens (all edges)."""
    snapshots = full_trace(graph, schedule)
    return max(sum(s.values()) for s in snapshots)


def reference_peak_token_words(
    graph: SDFGraph, schedule: LoopedSchedule
) -> int:
    """Peak over time of the summed live token *words* (all edges).

    Unlike the coarse model this counts only tokens actually present —
    the occupancy a circular buffer must hold — so it lower-bounds any
    feasible allocation extent regardless of delays.  A broadcast
    group's tokens live once in one shared buffer (each member's unread
    tokens are a suffix of the produced stream), so a group contributes
    its *maximum* member count, not the member sum.
    """
    snapshots = full_trace(graph, schedule)
    ordinary = [e for e in graph.edges() if e.broadcast is None]
    groups = graph.broadcast_groups()
    peak = 0
    for s in snapshots:
        live = sum(s[e.key] * e.token_size for e in ordinary)
        for members in groups.values():
            live += max(s[m.key] for m in members) * members[0].token_size
        if live > peak:
            peak = live
    return peak


def reference_coarse_intervals(
    graph: SDFGraph, schedule: LoopedSchedule
) -> Dict[EdgeKey, List[Tuple[int, int]]]:
    """Coarse-model live episodes per edge, from full snapshots.

    Mirrors the model of :func:`repro.sdf.simulate.coarse_live_intervals`
    — a buffer is live from the firing that makes it non-zero (interval
    start = that firing minus one: memory is reserved when the producer
    starts) until the firing that returns it to zero; edges with delays
    start live at step 0 — but derives it by scanning the snapshot list
    rather than streaming per-firing touch sets.
    """
    snapshots = full_trace(graph, schedule)
    intervals: Dict[EdgeKey, List[Tuple[int, int]]] = {
        e.key: [] for e in graph.edges()
    }
    for e in graph.edges():
        k = e.key
        open_at = 0 if snapshots[0][k] > 0 else None
        for t in range(1, len(snapshots)):
            count = snapshots[t][k]
            if open_at is None and count > 0:
                open_at = t - 1
            elif open_at is not None and count == 0:
                intervals[k].append((open_at, t))
                open_at = None
        if open_at is not None:
            intervals[k].append((open_at, len(snapshots) - 1))
    return intervals


def reference_episode_sizes(
    graph: SDFGraph, schedule: LoopedSchedule
) -> List[Tuple[EdgeKey, int, int, int]]:
    """``(edge, start, stop, words)`` per live episode.

    The coarse-model array for a delayless edge's episode holds every
    word transferred during it: tokens present when it opens plus
    everything the source produces before it drains, times the edge's
    token size.  Production per step is re-derived from the firing
    sequence (not from snapshot deltas, which would be circular for
    self-loops).  A delayed edge's buffer is circular — its initial
    tokens wrap the period boundary — so its episode needs only the
    peak token occupancy over the episode's snapshots.
    """
    firings = schedule.firing_list()
    snapshots = full_trace(graph, schedule)
    intervals = reference_coarse_intervals(graph, schedule)
    episodes: List[Tuple[EdgeKey, int, int, int]] = []
    for e in graph.edges():
        k = e.key
        for start, stop in intervals[k]:
            if e.delay > 0:
                peak = max(
                    snapshots[t][k] for t in range(start, stop + 1)
                )
                words = peak * e.token_size
            else:
                produced = sum(
                    e.production
                    for t in range(start + 1, stop + 1)
                    if firings[t - 1] == e.source
                )
                words = (snapshots[start][k] + produced) * e.token_size
            episodes.append((k, start, stop, words))
    return episodes


def reference_group_episode_sizes(
    graph: SDFGraph, schedule: LoopedSchedule
) -> List[Tuple[str, int, int, int]]:
    """``(group, start, stop, words)`` per broadcast-group live episode.

    The shared buffer is live while *any* member holds tokens; its
    per-step occupancy is the maximum member count (the union of unread
    suffixes of one produced stream is the largest suffix).  Delayless
    episodes are sized by tokens present at open plus everything the
    producer emits before the group drains — production counted once,
    not once per member; delayed groups need only the occupancy peak
    (circular buffer).
    """
    firings = schedule.firing_list()
    snapshots = full_trace(graph, schedule)
    episodes: List[Tuple[str, int, int, int]] = []
    for name, members in graph.broadcast_groups().items():
        counts = [max(s[m.key] for m in members) for s in snapshots]
        first = members[0]
        open_at = 0 if counts[0] > 0 else None
        spans: List[Tuple[int, int]] = []
        for t in range(1, len(counts)):
            if open_at is None and counts[t] > 0:
                open_at = t - 1
            elif open_at is not None and counts[t] == 0:
                spans.append((open_at, t))
                open_at = None
        if open_at is not None:
            spans.append((open_at, len(counts) - 1))
        for start, stop in spans:
            if first.delay > 0:
                words = max(counts[start:stop + 1]) * first.token_size
            else:
                produced = sum(
                    first.production
                    for t in range(start + 1, stop + 1)
                    if firings[t - 1] == first.source
                )
                words = (counts[start] + produced) * first.token_size
            episodes.append((name, start, stop, words))
    return episodes


def reference_max_live_tokens(
    graph: SDFGraph, schedule: LoopedSchedule
) -> int:
    """Peak of the coarse-model live-array total, by per-step summation.

    An episode ``(s, t)`` covers the half-open step range ``[s, t)``:
    a buffer dying at firing ``t`` frees its words before anything born
    at ``t`` occupies them.  Broadcast members are accounted through
    their group's merged episodes (one shared array), not per member.
    """
    member_keys = {
        m.key
        for members in graph.broadcast_groups().values()
        for m in members
    }
    episodes = [
        ep
        for ep in reference_episode_sizes(graph, schedule)
        if ep[0] not in member_keys
    ]
    episodes.extend(reference_group_episode_sizes(graph, schedule))
    steps = len(full_trace(graph, schedule))
    peak = 0
    for step in range(steps):
        live = sum(
            words for _, s, t, words in episodes if s <= step < t
        )
        if live > peak:
            peak = live
    return peak
