"""Cross-layer oracles: each redundant implementation pair, cross-checked.

Every function returns a list of violation strings (empty = all agree),
prefixed with the layer pair being compared (``trace:``, ``sched:``,
``exec:``, ``alloc:``).  The fault-injection self-test reuses the same
functions on deliberately corrupted artifacts, so anything the oracles
would miss there they would also miss on a real bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import SDFError
from ..sdf.graph import SDFGraph
from ..sdf.schedule import LoopedSchedule
from ..sdf.simulate import (
    TokenTrace,
    buffer_memory_nonshared,
    coarse_live_intervals,
    max_live_tokens,
    max_tokens,
    simulate_schedule,
    validate_schedule,
)
from ..sdf.repetitions import repetitions_vector
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..scheduling.pipeline import ImplementationResult, implement
from ..allocation.optimal import optimal_allocation
from ..allocation.verify import verify_allocation
from ..codegen.py_emitter import compile_python
from ..codegen.vm import SharedMemoryVM
from .reference import (
    full_trace,
    reference_coarse_intervals,
    reference_max_live_tokens,
    reference_max_tokens,
    reference_peak_token_words,
    reference_total_peak,
)

__all__ = [
    "PipelineArtifacts",
    "build_artifacts",
    "run_oracles",
    "trace_oracles",
    "schedule_oracles",
    "symbolic_oracles",
    "execution_oracles",
    "allocation_oracles",
    "broadcast_oracles",
    "cyclic_oracles",
    "native_oracles",
    "vectorize_oracles",
    "vectorize_violations",
    "compare_trace",
]

#: Stride used for checking traces: small enough that even a ~10-firing
#: schedule crosses several checkpoints, exercising delta replay.
CHECK_STRIDE = 3

#: Instances at or below this many sized buffers also get checked
#: against the exact branch-and-bound allocator.
OPTIMAL_LIMIT = 7


@dataclass
class PipelineArtifacts:
    """One graph pushed through the full flow, plus its provenance."""

    graph: SDFGraph
    method: str
    seed: int
    occurrence_cap: int
    result: ImplementationResult
    q: Dict[str, int]
    backend: str = "auto"


def build_artifacts(
    graph: SDFGraph,
    method: str = "rpmc",
    seed: int = 0,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    recorder: Optional[object] = None,
    backend: str = "auto",
) -> PipelineArtifacts:
    """Run the full compilation flow and bundle everything checkable."""
    result = implement(
        graph, method, seed=seed, occurrence_cap=occurrence_cap,
        verify=False, recorder=recorder, backend=backend,
    )
    return PipelineArtifacts(
        graph=graph,
        method=method,
        seed=seed,
        occurrence_cap=occurrence_cap,
        result=result,
        q=repetitions_vector(graph),
        backend=backend,
    )


# ----------------------------------------------------------------------
# trace layer: delta-encoded TokenTrace vs naive full snapshots
# ----------------------------------------------------------------------
def compare_trace(
    graph: SDFGraph, schedule: LoopedSchedule, trace: TokenTrace
) -> List[str]:
    """Compare an existing trace against the full-snapshot reference.

    Split out from :func:`trace_oracles` so the checkpoint-corruption
    mutation can hand in a tampered trace.
    """
    bad: List[str] = []
    snapshots = full_trace(graph, schedule)
    counts = trace.counts
    if len(counts) != len(snapshots):
        return [
            f"trace: {len(counts)} states recorded, reference has "
            f"{len(snapshots)}"
        ]
    # Random access replays deltas from the nearest checkpoint; iteration
    # replays them sequentially.  Exercise both paths.
    for t, state in enumerate(counts):
        if state != snapshots[t]:
            bad.append(
                f"trace: iterated state at step {t} disagrees with "
                f"reference: {state} != {snapshots[t]}"
            )
            break
    for t in range(len(snapshots) - 1, -1, -1):
        if counts[t] != snapshots[t]:
            bad.append(
                f"trace: indexed state at step {t} disagrees with "
                f"reference: {counts[t]} != {snapshots[t]}"
            )
            break
    ref_peaks = reference_max_tokens(graph, schedule)
    for e in graph.edges():
        if trace.peak(e.key) != ref_peaks[e.key]:
            bad.append(
                f"trace: peak({e.key}) = {trace.peak(e.key)}, "
                f"reference {ref_peaks[e.key]}"
            )
    ref_total = reference_total_peak(graph, schedule)
    if trace.total_peak() != ref_total:
        bad.append(
            f"trace: total_peak() = {trace.total_peak()}, "
            f"reference {ref_total}"
        )
    return bad


def trace_oracles(
    graph: SDFGraph,
    schedule: LoopedSchedule,
    recorder: Optional[object] = None,
) -> List[str]:
    """Delta-trace, streaming liveness, and max_tokens vs references."""
    bad: List[str] = []
    trace = simulate_schedule(
        graph, schedule, checkpoint_stride=CHECK_STRIDE, recorder=recorder
    )
    bad.extend(compare_trace(graph, schedule, trace))

    peaks = max_tokens(graph, schedule, recorder=recorder)
    ref_peaks = reference_max_tokens(graph, schedule)
    if peaks != ref_peaks:
        bad.append(
            f"trace: max_tokens disagrees with reference: "
            f"{peaks} != {ref_peaks}"
        )
    intervals = coarse_live_intervals(graph, schedule, recorder=recorder)
    ref_intervals = reference_coarse_intervals(graph, schedule)
    if intervals != ref_intervals:
        bad.append(
            f"trace: coarse_live_intervals disagrees with reference: "
            f"{intervals} != {ref_intervals}"
        )
    mlt = max_live_tokens(graph, schedule, recorder=recorder)
    ref_mlt = reference_max_live_tokens(graph, schedule)
    if mlt != ref_mlt:
        bad.append(
            f"trace: max_live_tokens = {mlt}, reference {ref_mlt}"
        )
    return bad


# ----------------------------------------------------------------------
# schedule layer: DPPO/SDPPO outputs vs the interpreter
# ----------------------------------------------------------------------
def schedule_oracles(art: PipelineArtifacts) -> List[str]:
    """Both post-optimized schedules are valid SASs with honest costs."""
    bad: List[str] = []
    r = art.result
    for label, schedule in (
        ("dppo", r.dppo_schedule),
        ("sdppo", r.sdppo_schedule),
    ):
        try:
            counts = validate_schedule(art.graph, schedule)
        except SDFError as exc:
            bad.append(f"sched: {label} schedule invalid: {exc}")
            continue
        if counts != art.q:
            bad.append(
                f"sched: {label} firing counts {counts} != "
                f"repetitions vector {art.q}"
            )
        if not schedule.is_single_appearance():
            bad.append(f"sched: {label} schedule is not single appearance")
        if schedule.lexical_order() != list(r.order):
            bad.append(
                f"sched: {label} lexical order "
                f"{schedule.lexical_order()} != pipeline order {r.order}"
            )
    # DPPO's cost claim is exact: it *is* the non-shared buffer memory of
    # the schedule it returns (EQ 1, re-derived by simulation).
    realized = buffer_memory_nonshared(art.graph, r.dppo_schedule)
    if r.dppo_cost != realized:
        bad.append(
            f"sched: dppo_cost {r.dppo_cost} != simulated non-shared "
            f"memory {realized}"
        )
    return bad


# ----------------------------------------------------------------------
# symbolic layer: loop-compressed closed forms vs the firing interpreter
# ----------------------------------------------------------------------
def symbolic_oracles(graph: SDFGraph, schedule: LoopedSchedule) -> List[str]:
    """Forced-symbolic vs forced-interpreter observables, bit-for-bit.

    The symbolic engine only claims coverage of delayless self-loop-free
    graphs under full topological single appearance schedules; on
    anything else ``try_build`` declines, ``backend="auto"`` falls back
    to the interpreter, and there is nothing to compare.  Where it does
    claim coverage, every observable must match the interpreter exactly
    — the ``trace:`` oracles then tie the interpreter itself to the
    naive references, closing the symbolic/interpreter/VM triangle.
    """
    from ..sdf.symbolic import SymbolicTrace

    if SymbolicTrace.try_build(graph, schedule) is None:
        return []
    bad: List[str] = []
    for label, fn in (
        ("max_tokens", max_tokens),
        ("coarse_live_intervals", coarse_live_intervals),
        ("max_live_tokens", max_live_tokens),
        ("validate_schedule", validate_schedule),
    ):
        sym = fn(graph, schedule, backend="symbolic")
        itp = fn(graph, schedule, backend="interpreter")
        if sym != itp:
            bad.append(
                f"symb: {label} symbolic result disagrees with "
                f"interpreter: {sym} != {itp}"
            )
    return bad


def _sequence_actors(graph: SDFGraph):
    """Actor callables for generated modules that check token integrity.

    Every produced word is the tuple ``(buffer identity, token sequence,
    word index)``; every consumer asserts it reads exactly the words its
    producer wrote, in order — the generated-code analogue of the VM's
    token check.  The buffer identity is the edge key for an ordinary
    edge and the *first member's* edge key for a broadcast group (the
    group's one physical stream, written once per firing and expected
    identically by every member sink).  Returns ``(actors, state)``
    where ``state`` tracks per-actor firing counts, per-buffer produce
    counters and per-edge consume counters.
    """
    first_of = {
        name: members[0]
        for name, members in graph.broadcast_groups().items()
    }
    produced = {
        e.key: e.delay for e in graph.edges() if e.broadcast is None
    }
    for first in first_of.values():
        produced[first.key] = first.delay
    state = {
        "fired": {a: 0 for a in graph.actor_names()},
        "produced": produced,
        "consumed": {e.key: 0 for e in graph.edges()},
    }

    def make_fire(actor: str) -> Callable:
        ins = graph.in_edges(actor)
        # Output *ports*: one per ordinary edge, one per broadcast
        # group — matching the generated module's firing signature.
        out_ports = []
        seen = set()
        for e in graph.out_edges(actor):
            if e.broadcast is None:
                out_ports.append((e.key, e))
            elif e.broadcast not in seen:
                seen.add(e.broadcast)
                out_ports.append((first_of[e.broadcast].key, e))

        def fire(inputs: List[List[object]]) -> List[List[object]]:
            state["fired"][actor] += 1
            for e, words in zip(ins, inputs):
                ident = (
                    e.key if e.broadcast is None
                    else first_of[e.broadcast].key
                )
                for i in range(e.consumption):
                    seq = state["consumed"][e.key]
                    state["consumed"][e.key] += 1
                    for w in range(e.token_size):
                        expected = (ident, seq, w)
                        actual = words[i * e.token_size + w]
                        if actual != expected:
                            raise AssertionError(
                                f"generated code fed {actor!r} corrupt "
                                f"input on {e.key}: expected "
                                f"{expected}, got {actual!r}"
                            )
            outputs: List[List[object]] = []
            for ident, e in out_ports:
                words: List[object] = []
                for _ in range(e.production):
                    seq = state["produced"][ident]
                    state["produced"][ident] += 1
                    words.extend(
                        (ident, seq, w) for w in range(e.token_size)
                    )
                outputs.append(words)
            return outputs

        return fire

    actors = {a: make_fire(a) for a in graph.actor_names()}
    return actors, state


def _module_preloads(graph: SDFGraph) -> Dict:
    """Initial-token word lists keyed by generated-module buffer ids.

    Ordinary delayed edges preload under their edge key; a delayed
    broadcast group preloads *once* under ``('bcast', name)`` with the
    first member's key as token identity.
    """
    preloads = {}
    for e in graph.edges():
        if e.delay == 0 or e.broadcast is not None:
            continue
        preloads[e.key] = [
            (e.key, seq, w)
            for seq in range(e.delay)
            for w in range(e.token_size)
        ]
    for name, members in graph.broadcast_groups().items():
        first = members[0]
        if first.delay == 0:
            continue
        preloads[("bcast", name)] = [
            (first.key, seq, w)
            for seq in range(first.delay)
            for w in range(first.token_size)
        ]
    return preloads


def _execution_checks(
    graph: SDFGraph,
    q: Dict[str, int],
    lifetimes,
    allocation,
    periods: int = 2,
    recorder: Optional[object] = None,
) -> List[str]:
    """VM + generated-Python cross-checks against interpreter counts."""
    bad: List[str] = []
    expected = {a: q[a] * periods for a in q}

    vm = SharedMemoryVM(graph, lifetimes, allocation)
    try:
        vm.run(periods=periods, recorder=recorder)
    except SDFError as exc:
        bad.append(f"exec: shared-memory VM failed: {exc}")
    else:
        if vm.firings_per_actor != expected:
            bad.append(
                f"exec: VM firing counts {vm.firings_per_actor} != "
                f"interpreter counts {expected}"
            )
        if vm.peak_address > allocation.total:
            bad.append(
                f"exec: VM wrote up to address {vm.peak_address}, past "
                f"the allocation total {allocation.total}"
            )

    try:
        module = compile_python(graph, lifetimes, allocation)
    except SDFError as exc:
        return bad + [f"exec: python emission failed: {exc}"]
    actors, state = _sequence_actors(graph)
    try:
        module["run"](
            actors, periods=periods, preloads=_module_preloads(graph)
        )
    except (AssertionError, IndexError, ValueError) as exc:
        bad.append(f"exec: generated module failed: {exc}")
    else:
        if state["fired"] != expected:
            bad.append(
                f"exec: generated module firing counts {state['fired']} "
                f"!= interpreter counts {expected}"
            )
    return bad


def execution_oracles(
    art: PipelineArtifacts,
    periods: int = 2,
    recorder: Optional[object] = None,
) -> List[str]:
    """Run the implementation three ways and compare firing behaviour.

    The interpreter defines ground truth; the VM must fire each actor
    identically and stay inside the allocation; the generated Python
    module must deliver every token uncorrupted through the shared pool.
    Two periods exercise circular-cursor wraparound on delayed edges.
    """
    r = art.result
    return _execution_checks(
        art.graph, art.q, r.lifetimes, r.allocation,
        periods=periods, recorder=recorder,
    )


# ----------------------------------------------------------------------
# allocation layer: predicted costs vs realized allocation vs optimum
# ----------------------------------------------------------------------
def allocation_oracles(art: PipelineArtifacts) -> List[str]:
    """Definition-5 verification, cost orderings, and the exact optimum."""
    bad: List[str] = []
    r = art.result
    graph = art.graph
    buffers = r.lifetimes.as_list()

    try:
        verify_allocation(buffers, r.allocation, art.occurrence_cap)
    except SDFError as exc:
        bad.append(f"alloc: verification failed: {exc}")
    if r.allocation.total != min(r.ffdur_total, r.ffstart_total):
        bad.append(
            f"alloc: winning allocation total {r.allocation.total} is not "
            f"min(ffdur {r.ffdur_total}, ffstart {r.ffstart_total})"
        )

    # Cost orderings tying the symbolic layers to the realized memory.
    # The coarse live peak sizes delayed edges as circular buffers at
    # peak occupancy (matching the lifetime extraction) and EQ 5 carries
    # delayed-edge buffers as an always-summed persistent component, so
    # both orderings hold with delays — the chains that used to
    # falsify them are pinned as passing in
    # tests/test_check_regressions.py.
    mlt = max_live_tokens(graph, r.sdppo_schedule)
    if mlt > r.sdppo_cost:
        bad.append(
            f"alloc: coarse live peak {mlt} exceeds SDPPO's predicted "
            f"shared cost {r.sdppo_cost}"
        )
    if mlt > r.allocation.total:
        bad.append(
            f"alloc: coarse live peak {mlt} exceeds the packed total "
            f"{r.allocation.total}"
        )
    # Unconditional: tokens simultaneously present occupy disjoint
    # words (co-live buffers have disjoint address ranges, occupancy
    # never exceeds a buffer's array), so the occupancy peak
    # lower-bounds any feasible extent, delays or not.
    occupancy = reference_peak_token_words(graph, r.sdppo_schedule)
    if occupancy > r.allocation.total:
        bad.append(
            f"alloc: peak token occupancy {occupancy} words exceeds the "
            f"packed total {r.allocation.total}"
        )
    if r.mco > r.allocation.total:
        bad.append(
            f"alloc: optimistic clique weight {r.mco} exceeds the packed "
            f"total {r.allocation.total} (MCW is a lower bound)"
        )
    unshared = r.lifetimes.total_size()
    if r.allocation.total > unshared:
        bad.append(
            f"alloc: packed total {r.allocation.total} exceeds the sum of "
            f"buffer sizes {unshared} (sharing cannot lose)"
        )

    sized = [b for b in buffers if b.size > 0]
    if len(sized) <= OPTIMAL_LIMIT:
        try:
            opt = optimal_allocation(
                buffers,
                graph=r.allocation.graph,
                occurrence_cap=art.occurrence_cap,
            )
        except RuntimeError:
            opt = None  # node limit; skip silently on this instance
        if opt is not None:
            if opt.total > r.allocation.total:
                bad.append(
                    f"alloc: branch-and-bound optimum {opt.total} exceeds "
                    f"first-fit {r.allocation.total}"
                )
            if r.mco > opt.total:
                bad.append(
                    f"alloc: optimistic clique weight {r.mco} exceeds the "
                    f"optimum {opt.total}"
                )
            try:
                verify_allocation(buffers, opt, art.occurrence_cap)
            except SDFError as exc:
                bad.append(f"alloc: optimum fails verification: {exc}")
    return bad


# ----------------------------------------------------------------------
# broadcast layer: shared-buffer model vs k-parallel-edges modelling
# ----------------------------------------------------------------------
def broadcast_oracles(art: PipelineArtifacts) -> List[str]:
    """The sharing win: a broadcast group never costs more than its
    k-parallel-edges model.

    Compiling the same graph with every ``broadcast`` tag dropped
    models each fan-out as ``k`` independent buffers.  The shared model
    holds one buffer per group — structurally the farthest member's
    buffer with the latest member stop — so every memory figure must
    come out at or below the parallel model's: the summed buffer sizes
    and the DPPO cost exactly (the group is counted once instead of
    ``k`` times at every DP split), the coarse live peak and the packed
    pool total on every harness instance.
    """
    graph = art.graph
    if not graph.has_broadcasts():
        return []
    bad: List[str] = []
    try:
        parallel = build_artifacts(
            graph.without_broadcasts(),
            method=art.method,
            seed=art.seed,
            occurrence_cap=art.occurrence_cap,
        )
    except SDFError as exc:
        return [f"bcast: parallel-edges model failed to compile: {exc}"]
    r, p = art.result, parallel.result
    if r.lifetimes.total_size() > p.lifetimes.total_size():
        bad.append(
            f"bcast: shared buffer sizes sum to "
            f"{r.lifetimes.total_size()}, more than the parallel-edges "
            f"model's {p.lifetimes.total_size()}"
        )
    if r.dppo_cost > p.dppo_cost:
        bad.append(
            f"bcast: shared DPPO cost {r.dppo_cost} exceeds the "
            f"parallel-edges model's {p.dppo_cost}"
        )
    # Pointwise dominance is a theorem only on the *same* schedule (a
    # group's live envelope is its slowest member's), and the two
    # models share topology — so judge both under the parallel model's
    # schedule.
    mlt = max_live_tokens(graph, p.sdppo_schedule)
    mlt_parallel = max_live_tokens(parallel.graph, p.sdppo_schedule)
    if mlt > mlt_parallel:
        bad.append(
            f"bcast: shared coarse live peak {mlt} exceeds the "
            f"parallel-edges model's {mlt_parallel} on the same schedule"
        )
    if r.allocation.total > p.allocation.total:
        bad.append(
            f"bcast: shared pool total {r.allocation.total} exceeds the "
            f"parallel-edges model's {p.allocation.total}"
        )
    return bad


# ----------------------------------------------------------------------
# native layer: cc-compiled kernels vs the Python pipeline, bit for bit
# ----------------------------------------------------------------------
def _result_signature(r: ImplementationResult) -> Dict[str, object]:
    """Every output of one ``implement`` run, as comparable plain data."""
    return {
        "order": list(r.order),
        "dppo_cost": r.dppo_cost,
        "dppo_schedule": str(r.dppo_schedule),
        "sdppo_cost": r.sdppo_cost,
        "sdppo_schedule": str(r.sdppo_schedule),
        "mco": r.mco,
        "mcp": r.mcp,
        "ffdur_total": r.ffdur_total,
        "ffstart_total": r.ffstart_total,
        "offsets": dict(r.allocation.offsets),
        "alloc_total": r.allocation.total,
        "bmlb": r.bmlb,
    }


def native_oracles(art: PipelineArtifacts) -> List[str]:
    """The bit-identity contract: native and Python pipelines agree.

    Recompiles the artifact's graph with the *other* kernel backend and
    compares every pipeline output field.  When no native kernel is
    available (no compiler, ``REPRO_NATIVE=0``) both runs would take
    the Python path and the comparison is vacuous, so it is skipped —
    the fallback path itself is exercised by the ``native_kernel``
    fault-injection class and the compiler-less tests.
    """
    from ..native import get_kernels

    if get_kernels() is None:
        return []
    native_run = art.backend != "python"
    other = "python" if native_run else "native"
    alt = implement(
        art.graph, art.method, seed=art.seed,
        occurrence_cap=art.occurrence_cap, verify=False, backend=other,
    )
    mine = _result_signature(art.result)
    theirs = _result_signature(alt)
    bad = []
    for field in mine:
        if mine[field] != theirs[field]:
            a, b = (
                (mine[field], theirs[field]) if native_run
                else (theirs[field], mine[field])
            )
            bad.append(
                f"native: {field} differs between backends: "
                f"native {a!r} != python {b!r}"
            )
    return bad


# ----------------------------------------------------------------------
# vectorize layer: blocked schedules vs every independent judge
# ----------------------------------------------------------------------
def vectorize_violations(
    graph: SDFGraph,
    vec,
    q: Dict[str, int],
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> List[str]:
    """Judge one claimed :class:`VectorizeResult` independently.

    Shared between :func:`vectorize_oracles` (clean artifacts) and the
    ``vectorize_overrun`` fault-injection class (forged artifacts), so
    a check the injector proves sharp is the same check every harness
    trial runs.  Three claims are re-derived from scratch: the blocked
    schedule is a valid period (interpreter is the judge), the batched
    closed-form backend reproduces every interpreter observable on it
    bit for bit, and the claimed pool cost equals the real
    lifetime/first-fit re-cost — which must also sit within any claimed
    ``memory_budget``.
    """
    from ..scheduling.vectorize import blocked_cost, dispatch_blocks

    try:
        counts = validate_schedule(graph, vec.schedule)
    except SDFError as exc:
        return [f"vec: blocked schedule invalid: {exc}"]
    bad: List[str] = []
    if counts != q:
        bad.append(
            f"vec: blocked schedule fires {counts}, repetitions vector "
            f"is {q}"
        )
    for label, fn in (
        ("max_tokens", max_tokens),
        ("coarse_live_intervals", coarse_live_intervals),
        ("max_live_tokens", max_live_tokens),
        ("validate_schedule", validate_schedule),
    ):
        batched = fn(graph, vec.schedule, backend="batched")
        interp = fn(graph, vec.schedule, backend="interpreter")
        if batched != interp:
            bad.append(
                f"vec: {label} batched backend disagrees with "
                f"interpreter on blocked schedule: {batched} != {interp}"
            )
    blocks, firings, factors = dispatch_blocks(vec.schedule)
    if (blocks, firings, factors) != (
        vec.blocks, vec.firings, vec.block_factors
    ):
        bad.append(
            f"vec: claimed block accounting ({vec.blocks} blocks, "
            f"{vec.firings} firings, {vec.block_factors}) != re-derived "
            f"({blocks}, {firings}, {factors})"
        )
    if vec.cost is not None:
        actual = blocked_cost(
            graph, vec.schedule, q, occurrence_cap=occurrence_cap
        )
        if actual != vec.cost:
            bad.append(
                f"vec: claimed pool cost {vec.cost} words != re-costed "
                f"{actual}"
            )
        if vec.memory_budget is not None and actual > vec.memory_budget:
            bad.append(
                f"vec: blocked schedule costs {actual} words, over its "
                f"claimed budget of {vec.memory_budget}"
            )
    return bad


def vectorize_oracles(
    art: PipelineArtifacts, recorder: Optional[object] = None
) -> List[str]:
    """Blocking pass output vs the interpreter, the re-cost, both VMs.

    Vectorizes the artifact's SDPPO schedule twice — unconstrained and
    with the baseline pool total as the budget (the tightest budget the
    identity pass always satisfies, so the greedy loop is exercised
    without being vacuous) — and pushes each outcome through
    :func:`vectorize_violations`.  Each costable blocking then runs on
    both execution engines: the firing-at-a-time
    :class:`~repro.codegen.vm.SharedMemoryVM` and the block-at-a-time
    :class:`~repro.codegen.batched_vm.BatchedVM` must fire identically
    and report the same pool high-water mark over two periods.
    """
    from ..allocation.first_fit import first_fit
    from ..codegen.batched_vm import BatchedVM
    from ..lifetimes.intervals import extract_lifetimes
    from ..scheduling.vectorize import vectorize_schedule

    r = art.result
    bad: List[str] = []
    budgets = (None, r.allocation.total)
    for budget in budgets:
        vec = vectorize_schedule(
            art.graph, r.sdppo_schedule, art.q,
            memory_budget=budget,
            occurrence_cap=art.occurrence_cap,
        )
        bad.extend(
            vectorize_violations(
                art.graph, vec, art.q, occurrence_cap=art.occurrence_cap
            )
        )
        if budget is not None and vec.cost is not None and vec.cost > budget:
            bad.append(
                f"vec: pass returned cost {vec.cost} over its own budget "
                f"{budget}"
            )
        if vec.cost is None:
            continue
        lifetimes = extract_lifetimes(art.graph, vec.schedule, art.q)
        allocation = first_fit(
            lifetimes.as_list(), occurrence_cap=art.occurrence_cap,
            backend=art.backend,
        )
        engines = {}
        for label, vm_class in (
            ("scalar", SharedMemoryVM), ("batched", BatchedVM),
        ):
            vm = vm_class(art.graph, lifetimes, allocation)
            try:
                vm.run(periods=2, recorder=recorder)
            except SDFError as exc:
                bad.append(f"vec: {label} VM failed on blocked artifact: {exc}")
                break
            engines[label] = vm
        if len(engines) == 2:
            scalar, batched = engines["scalar"], engines["batched"]
            if scalar.firings_per_actor != batched.firings_per_actor:
                bad.append(
                    f"vec: batched VM firing counts "
                    f"{batched.firings_per_actor} != scalar VM "
                    f"{scalar.firings_per_actor}"
                )
            if scalar.peak_address != batched.peak_address:
                bad.append(
                    f"vec: batched VM peak address {batched.peak_address} "
                    f"!= scalar VM {scalar.peak_address}"
                )
            if batched.peak_address > allocation.total:
                bad.append(
                    f"vec: batched VM wrote up to address "
                    f"{batched.peak_address}, past the blocked allocation "
                    f"total {allocation.total}"
                )
    return bad


# ----------------------------------------------------------------------
# cyclic layer: SCC-clustered scheduling vs the interpreter
# ----------------------------------------------------------------------
def cyclic_oracles(
    graph: SDFGraph,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    recorder: Optional[object] = None,
    backend: str = "auto",
) -> List[str]:
    """``schedule_cyclic`` output against the token interpreter.

    The expanded schedule must fire exactly the repetitions vector with
    no edge underflow (the interpreter is the judge), the quotient
    bookkeeping must cover every actor exactly once, and — whenever the
    greedy subschedules compress to single appearance — the schedule
    must carry the full downstream pipeline: lifetime extraction,
    first-fit packing, Definition-5 verification, and the VM/generated
    Python execution cross-check.
    """
    from ..lifetimes.intervals import extract_lifetimes
    from ..allocation.first_fit import first_fit
    from ..allocation.verify import verify_allocation
    from ..scheduling.cyclic import schedule_cyclic

    bad: List[str] = []
    q = repetitions_vector(graph)
    try:
        res = schedule_cyclic(graph)
    except SDFError as exc:
        return [f"cyclic: schedule_cyclic failed: {exc}"]
    schedule = res.schedule
    try:
        counts = validate_schedule(graph, schedule)
    except SDFError as exc:
        return [f"cyclic: expanded schedule invalid: {exc}"]
    if counts != q:
        bad.append(
            f"cyclic: expanded schedule fires {counts}, repetitions "
            f"vector is {q}"
        )
    covered = sorted(
        a for members in res.clustered.members.values() for a in members
    )
    if covered != sorted(graph.actor_names()):
        bad.append(
            f"cyclic: quotient members cover {covered}, graph has "
            f"{sorted(graph.actor_names())}"
        )
    if not res.clustered.quotient.is_acyclic():
        bad.append("cyclic: SCC quotient graph is not acyclic")
    bad.extend(trace_oracles(graph, schedule, recorder))

    if schedule.is_single_appearance():
        try:
            lifetimes = extract_lifetimes(graph, schedule, q)
            buffers = lifetimes.as_list()
            allocation = first_fit(
                buffers, occurrence_cap=occurrence_cap, backend=backend
            )
            verify_allocation(buffers, allocation, occurrence_cap)
        except SDFError as exc:
            return bad + [f"cyclic: downstream pipeline failed: {exc}"]
        if backend != "python":
            # Differential leg for the cyclic family, which never goes
            # through implement(): the native probe loop must place the
            # cyclic instance exactly like the Python loop.
            from ..native import get_kernels

            if get_kernels() is not None:
                pure = first_fit(
                    buffers, occurrence_cap=occurrence_cap,
                    backend="python",
                )
                if (
                    allocation.offsets != pure.offsets
                    or allocation.total != pure.total
                ):
                    bad.append(
                        f"cyclic: native first-fit placement "
                        f"({allocation.offsets}, total "
                        f"{allocation.total}) differs from python "
                        f"({pure.offsets}, total {pure.total})"
                    )
        bad.extend(
            _execution_checks(
                graph, q, lifetimes, allocation, recorder=recorder
            )
        )
    return bad


def run_oracles(
    art: PipelineArtifacts, recorder: Optional[object] = None
) -> List[str]:
    """All oracle groups for one set of artifacts.

    With a recorder, each oracle group runs under its own span (so a
    trace shows which comparison dominates a differential trial) and
    carries a ``check.violations`` counter when it found any.
    """
    r = art.result
    groups: List[Tuple[str, Callable[[], List[str]]]] = [
        ("oracle.sched", lambda: schedule_oracles(art)),
        ("oracle.trace.sdppo",
         lambda: trace_oracles(art.graph, r.sdppo_schedule, recorder)),
        ("oracle.trace.dppo",
         lambda: trace_oracles(art.graph, r.dppo_schedule, recorder)),
        ("oracle.symbolic.sdppo",
         lambda: symbolic_oracles(art.graph, r.sdppo_schedule)),
        ("oracle.symbolic.dppo",
         lambda: symbolic_oracles(art.graph, r.dppo_schedule)),
        ("oracle.exec", lambda: execution_oracles(art, recorder=recorder)),
        ("oracle.alloc", lambda: allocation_oracles(art)),
        ("oracle.vectorize",
         lambda: vectorize_oracles(art, recorder=recorder)),
    ]
    if art.graph.has_broadcasts():
        groups.append(("oracle.bcast", lambda: broadcast_oracles(art)))
    groups.append(("oracle.native", lambda: native_oracles(art)))
    bad: List[str] = []
    for name, fn in groups:
        if recorder is not None:
            with recorder.span(name) as span:
                found = fn()
                if span is not None and found:
                    span.count("check.violations", len(found))
        else:
            found = fn()
        bad.extend(found)
    return bad
