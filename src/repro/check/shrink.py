"""Counterexample shrinking: minimize a failing graph, keep the failure.

Given a graph and a predicate ("does the differential check still
fail?"), repeatedly try structure- and parameter-reducing edits — drop
an actor, drop an edge, zero a delay, unscale rates, shrink token
sizes — keeping each edit only if the predicate still holds.  The
result is the greedy local minimum: every single remaining reduction
makes the failure disappear, which is exactly the graph you want in a
regression test.

The predicate is a black box and may legitimately throw for candidates
that are no longer compilable (disconnected after an edge drop, say);
any exception counts as "failure not preserved" and the edit is
reverted.
"""

from __future__ import annotations

from math import gcd
from typing import Callable, List, Optional, Tuple

from ..sdf.graph import Edge, SDFGraph

__all__ = ["shrink_graph"]

EdgeKey = Tuple[str, str, int]


def _rebuild(
    graph: SDFGraph,
    drop_actor: Optional[str] = None,
    drop_edge: Optional[EdgeKey] = None,
    replace_edge: Optional[Edge] = None,
) -> SDFGraph:
    """A copy of ``graph`` with one edit applied.

    Edge indices are reassigned by insertion order, so dropping one of
    several parallel edges renumbers the rest — predicates must not
    depend on edge indices surviving a shrink step.
    """
    out = SDFGraph(graph.name)
    for a in graph.actors():
        if a.name != drop_actor:
            out.add_actor(a.name, a.execution_time)
    for e in graph.edges():
        if drop_actor is not None and drop_actor in (e.source, e.sink):
            continue
        if e.key == drop_edge:
            continue
        if replace_edge is not None and e.key == replace_edge.key:
            e = replace_edge
        # Broadcast tags survive the rebuild; an edit that breaks a
        # group invariant (e.g. desynchronized member rates) makes
        # add_edge raise, which the caller treats as "not preserved".
        out.add_edge(
            e.source, e.sink, e.production, e.consumption,
            e.delay, e.token_size, broadcast=e.broadcast,
        )
    return out


def _still_fails(
    predicate: Callable[[SDFGraph], bool], candidate: Optional[SDFGraph]
) -> bool:
    if candidate is None or candidate.num_actors == 0:
        return False
    try:
        return bool(predicate(candidate))
    except Exception:
        return False


def _try_rebuild(graph: SDFGraph, **edit) -> Optional[SDFGraph]:
    """:func:`_rebuild`, or ``None`` if the edit is not constructible
    (e.g. it desynchronizes a broadcast group's member rates)."""
    try:
        return _rebuild(graph, **edit)
    except Exception:
        return None


def _edge_edits(e: Edge) -> List[Edge]:
    """Parameter reductions for one edge, most aggressive first."""
    edits: List[Edge] = []

    def variant(**changes) -> Edge:
        fields = dict(
            source=e.source, sink=e.sink, production=e.production,
            consumption=e.consumption, delay=e.delay,
            token_size=e.token_size, index=e.index,
            broadcast=e.broadcast,
        )
        fields.update(changes)
        return Edge(**fields)

    common = gcd(e.production, e.consumption)
    if common > 1:
        edits.append(
            variant(
                production=e.production // common,
                consumption=e.consumption // common,
            )
        )
    if e.production > 1 or e.consumption > 1:
        edits.append(variant(production=1, consumption=1))
    if e.delay > 0:
        edits.append(variant(delay=0))
        if e.delay > 1:
            edits.append(variant(delay=1))
    if e.token_size > 1:
        edits.append(variant(token_size=1))
    return edits


def shrink_graph(
    graph: SDFGraph,
    predicate: Callable[[SDFGraph], bool],
    max_rounds: int = 20,
) -> SDFGraph:
    """Greedily minimize ``graph`` while ``predicate`` keeps holding.

    ``predicate(g)`` must return True iff the failure of interest still
    reproduces on ``g``; it is never called on the empty graph.  The
    original graph is returned unchanged if the predicate does not hold
    on it (nothing to shrink).
    """
    if not _still_fails(predicate, graph):
        return graph
    current = graph
    for _ in range(max_rounds):
        progressed = False

        # Pass 1: drop whole actors (with their incident edges), largest
        # reduction first.
        for name in list(current.actor_names()):
            if current.num_actors <= 1:
                break
            candidate = _try_rebuild(current, drop_actor=name)
            if _still_fails(predicate, candidate):
                current = candidate
                progressed = True

        # Pass 2: drop individual edges.
        for key in [e.key for e in current.edges()]:
            candidate = _try_rebuild(current, drop_edge=key)
            if _still_fails(predicate, candidate):
                current = candidate
                progressed = True
                break  # keys were renumbered; restart edge pass next round

        # Pass 3: shrink per-edge parameters.
        for key in [e.key for e in current.edges()]:
            try:
                e = current.edge(*key)
            except Exception:
                continue
            for edit in _edge_edits(e):
                candidate = _try_rebuild(current, replace_edge=edit)
                if _still_fails(predicate, candidate):
                    current = candidate
                    progressed = True
                    break

        if not progressed:
            break
    return current
