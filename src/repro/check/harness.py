"""The differential check driver: random graphs through every oracle.

One *trial* generates a random consistent SDF graph (delays and vector
tokens included, so circular buffers and word-multiplied sizes are
exercised), compiles it with a randomly chosen topological-sort method,
and runs the full oracle battery of :mod:`repro.check.oracles`.  Any
violation is shrunk to a minimal reproducing graph before being
reported, ready to be pinned as a regression test.

A separate one-shot oracle cross-checks the serial and parallel paths
of the experiment runner on identical task lists.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sdf.graph import SDFGraph
from ..sdf.random_graphs import (
    random_broadcast_sdf_graph,
    random_cyclic_sdf_graph,
    random_sdf_graph,
)
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..scheduling.pipeline import implement
from ..experiments.runner import parallel_map
from .fault_injection import InjectionReport, run_injection_selftest
from .oracles import build_artifacts, cyclic_oracles, run_oracles
from .shrink import shrink_graph

__all__ = [
    "CheckFailure",
    "CheckReport",
    "DEFAULT_FAMILIES",
    "broadcast_trial_graph",
    "cyclic_trial_graph",
    "describe_graph",
    "delayed_split_chain",
    "run_check",
    "trial_graph",
]

_METHODS = ("rpmc", "apgan", "natural")

#: Trial families ``run_check`` cycles through by default.  ``acyclic``
#: is the original battery (with the every-fifth delayed chain);
#: ``broadcast`` adds graphs with broadcast groups (plus the
#: sharing-win oracle); ``cyclic`` routes graphs with feedback edges
#: through :func:`repro.check.oracles.cyclic_oracles`.
DEFAULT_FAMILIES = ("acyclic", "broadcast", "cyclic")

#: Reusable stand-in when ``run_check`` has no recorder.
_NO_SPAN = nullcontext()


def describe_graph(graph: SDFGraph) -> str:
    """A one-line reconstruction recipe for a (small) graph."""
    edges = ", ".join(
        f"{e.source}-{e.production}/{e.consumption}->{e.sink}"
        + (f" delay={e.delay}" if e.delay else "")
        + (f" words={e.token_size}" if e.token_size != 1 else "")
        + (f" [{e.broadcast}]" if e.broadcast else "")
        for e in graph.edges()
    )
    return f"actors={graph.actor_names()} edges=[{edges}]"


@dataclass
class CheckFailure:
    """One trial whose artifacts violated at least one oracle."""

    trial: int
    graph_seed: int
    method: str
    violations: List[str]
    graph_summary: str
    shrunk_summary: Optional[str] = None
    shrunk_violations: List[str] = field(default_factory=list)


@dataclass
class CheckReport:
    """Everything one ``repro check`` run established."""

    trials: int
    seed: int
    failures: List[CheckFailure] = field(default_factory=list)
    runner_violations: List[str] = field(default_factory=list)
    injection: Optional[InjectionReport] = None

    @property
    def ok(self) -> bool:
        if self.failures or self.runner_violations:
            return False
        if self.injection is not None and not self.injection.all_caught:
            return False
        return True

    def summary_lines(self) -> List[str]:
        lines = [
            f"{self.trials} differential trial(s), seed {self.seed}: "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            lines.append(
                f"  trial {f.trial} (graph seed {f.graph_seed}, "
                f"{f.method}): {len(f.violations)} violation(s)"
            )
            for v in f.violations[:4]:
                lines.append(f"    {v}")
            lines.append(f"    graph: {f.graph_summary}")
            if f.shrunk_summary:
                lines.append(f"    shrunk: {f.shrunk_summary}")
        for v in self.runner_violations:
            lines.append(f"  runner: {v}")
        if self.injection is not None:
            verdict = (
                "all caught" if self.injection.all_caught
                else "MUTATIONS MISSED"
            )
            lines.append(
                f"fault injection ({len(self.injection.outcomes)} "
                f"classes): {verdict}"
            )
            lines.extend("  " + l for l in self.injection.summary_lines())
        return lines


def trial_graph(graph_seed: int) -> SDFGraph:
    """The deterministic random graph for one trial.

    Built on :func:`random_sdf_graph`, then decorated: up to two edges
    get initial tokens (circular buffers in the VM and generated code)
    and some edges get multi-word tokens.  The decoration preserves
    consistency — a DAG stays deadlock-free under added delays, and
    token size never enters the balance equations.
    """
    rng = random.Random(graph_seed)
    base = random_sdf_graph(
        rng.randint(2, 9),
        seed=rng.randrange(2 ** 30),
        max_repetition=rng.choice((4, 6, 10)),
    )
    decorated = SDFGraph(f"check{graph_seed}")
    for a in base.actors():
        decorated.add_actor(a.name, a.execution_time)
    edges = base.edge_list()
    delayed = set()
    if edges and rng.random() < 0.7:
        for e in rng.sample(edges, k=min(len(edges), rng.randint(1, 2))):
            delayed.add(e.key)
    for e in edges:
        delay = 0
        if e.key in delayed:
            delay = e.consumption * rng.randint(1, 2)
        token_size = rng.choice((1, 1, 1, 2, 3))
        decorated.add_edge(
            e.source, e.sink, e.production, e.consumption,
            delay=delay, token_size=token_size,
        )
    return decorated


def delayed_split_chain(graph_seed: int) -> SDFGraph:
    """A chain whose *internal* edges carry initial tokens.

    Chain graphs route through the precise section 6 DP and their
    delayed internal edges exercise the episodic/persistent split at
    every window boundary — the exact configuration that used to fall
    outside the ``mlt <= sdppo_cost`` / ``mlt <= total`` oracles.  Any
    rate pair is consistent on a chain, and a DAG stays deadlock-free
    under added delays.
    """
    rng = random.Random(graph_seed)
    n = rng.randint(3, 7)
    g = SDFGraph(f"chaincheck{graph_seed}")
    names = [f"c{i}" for i in range(n)]
    for name in names:
        g.add_actor(name)
    interior = list(range(1, n - 2)) or [0]
    delayed = set(rng.sample(interior, k=min(len(interior), rng.randint(1, 2))))
    for i in range(n - 1):
        p, c = rng.randint(1, 4), rng.randint(1, 4)
        delay = c * rng.randint(1, 2) if i in delayed else 0
        g.add_edge(
            names[i], names[i + 1], p, c,
            delay=delay, token_size=rng.choice((1, 1, 2)),
        )
    return g


def broadcast_trial_graph(graph_seed: int) -> SDFGraph:
    """The deterministic broadcast-family graph for one trial.

    Small graphs with one or two broadcast groups (some delayed, some
    with multi-word tokens), pushed through the full oracle battery
    plus the sharing-win comparison against the k-parallel-edges model.
    """
    rng = random.Random(graph_seed)
    return random_broadcast_sdf_graph(
        rng.randint(4, 9),
        seed=rng.randrange(2 ** 30),
        num_groups=rng.randint(1, 2),
        max_fanout=3,
        delayed_group_fraction=0.3,
        token_size_choices=(1, 1, 2),
        max_repetition=rng.choice((4, 6)),
        name=f"bcastcheck{graph_seed}",
    )


def cyclic_trial_graph(graph_seed: int) -> SDFGraph:
    """The deterministic cyclic-family graph for one trial.

    Consistent graphs with one or two feedback edges whose initial
    tokens make them schedulable — the SCC clustering, greedy
    subschedule, and (where single appearance) the downstream shared
    memory pipeline all run under the interpreter's judgment.
    """
    rng = random.Random(graph_seed)
    return random_cyclic_sdf_graph(
        rng.randint(3, 8),
        seed=rng.randrange(2 ** 30),
        num_feedback=rng.randint(1, 2),
        delay_factor=rng.choice((1, 1, 2)),
        max_repetition=rng.choice((4, 6)),
        name=f"cycliccheck{graph_seed}",
    )


def _violations_for(
    graph: SDFGraph,
    method: str,
    seed: int,
    occurrence_cap: int,
    recorder=None,
    backend: str = "auto",
) -> List[str]:
    art = build_artifacts(
        graph, method=method, seed=seed, occurrence_cap=occurrence_cap,
        recorder=recorder, backend=backend,
    )
    return run_oracles(art, recorder=recorder)


def _runner_probe(task_seed: int) -> Tuple[int, int, int, int]:
    """Picklable per-task statistic for the serial/parallel cross-check."""
    graph = random_sdf_graph(4, seed=task_seed)
    r = implement(graph, "apgan")
    return (r.dppo_cost, r.sdppo_cost, r.allocation.total, r.mco)


def runner_oracles(seed: int, tasks: int = 6) -> List[str]:
    """Serial vs parallel experiment statistics must be bit-identical.

    When the environment cannot create worker processes the parallel
    path degrades to serial and the check passes vacuously — that
    degradation itself is the documented contract.
    """
    task_seeds = [seed * 101 + i for i in range(tasks)]
    serial = parallel_map(_runner_probe, task_seeds, jobs=1)
    fanned = parallel_map(_runner_probe, task_seeds, jobs=2)
    if serial != fanned:
        return [
            f"parallel_map(jobs=2) disagrees with serial run: "
            f"{fanned} != {serial}"
        ]
    return []


def run_check(
    trials: int = 25,
    seed: int = 0,
    inject: bool = False,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    shrink: bool = True,
    recorder=None,
    families: Tuple[str, ...] = DEFAULT_FAMILIES,
    backend: str = "auto",
) -> CheckReport:
    """Run the full differential check and return the evidence.

    Parameters
    ----------
    trials:
        Number of random graphs pushed through the oracle battery.
        Every fifth trial swaps the general random graph for a
        :func:`delayed_split_chain`, keeping the precise chain DP's
        episodic/persistent split under differential pressure.
    seed:
        Root seed; trial ``i`` uses graph seed ``seed * 100000 + i``,
        so a failing trial is reproducible in isolation.
    inject:
        Also run the mutation-kill self-test
        (:func:`repro.check.fault_injection.run_injection_selftest`).
    shrink:
        Minimize each failing graph before reporting it.
    recorder:
        Optional :class:`repro.obs.Recorder`; each trial runs under a
        span (with the graph seed and method as attributes, oracle
        groups nested below), so the exported trace shows which
        backend/oracle dominated the run.
    families:
        Which trial families to cycle through (trial ``i`` draws
        ``families[i % len(families)]``); any non-empty subset of
        :data:`DEFAULT_FAMILIES`.
    backend:
        Kernel backend the trial pipelines compile with (``"auto"``,
        ``"python"``, or ``"native"``).  Whenever native kernels are
        actually available the ``oracle.native`` group re-runs each
        trial on the *other* backend and pins bit-identity regardless
        of this setting.
    """
    if not families:
        raise ValueError("families must be non-empty")
    unknown = set(families) - set(DEFAULT_FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown check families {sorted(unknown)!r}; "
            f"known: {list(DEFAULT_FAMILIES)}"
        )
    report = CheckReport(trials=trials, seed=seed)
    rng = random.Random(seed)
    for trial in range(trials):
        graph_seed = seed * 100000 + trial
        family = families[trial % len(families)]
        if family == "cyclic":
            graph = cyclic_trial_graph(graph_seed)
            method = "cyclic"
        elif family == "broadcast":
            graph = broadcast_trial_graph(graph_seed)
            method = rng.choice(_METHODS)
        elif trial % 5 == 4:
            graph = delayed_split_chain(graph_seed)
            method = rng.choice(_METHODS)
        else:
            graph = trial_graph(graph_seed)
            method = rng.choice(_METHODS)
        if recorder is not None:
            trial_span = recorder.span(
                "check.trial", trial=trial, graph=graph.name, method=method
            )
        else:
            trial_span = _NO_SPAN

        def violations_for(candidate: SDFGraph, rec=None) -> List[str]:
            if family == "cyclic":
                return cyclic_oracles(
                    candidate, occurrence_cap=occurrence_cap, recorder=rec,
                    backend=backend,
                )
            return _violations_for(
                candidate, method, seed, occurrence_cap, recorder=rec,
                backend=backend,
            )

        try:
            with trial_span:
                violations = violations_for(graph, rec=recorder)
        except Exception as exc:  # a crash is a failure, not an abort
            violations = [f"harness: pipeline raised {exc!r}"]
        if not violations:
            continue
        failure = CheckFailure(
            trial=trial,
            graph_seed=graph_seed,
            method=method,
            violations=violations,
            graph_summary=describe_graph(graph),
        )
        if shrink:
            def still_fails(candidate: SDFGraph) -> bool:
                return bool(violations_for(candidate))

            shrunk = shrink_graph(graph, still_fails)
            if shrunk is not graph:
                failure.shrunk_summary = describe_graph(shrunk)
                try:
                    failure.shrunk_violations = violations_for(shrunk)
                except Exception as exc:
                    failure.shrunk_violations = [
                        f"harness: pipeline raised {exc!r}"
                    ]
        report.failures.append(failure)

    with (recorder.span("check.runner") if recorder is not None
          else _NO_SPAN):
        report.runner_violations = runner_oracles(seed)
    if inject:
        with (recorder.span("check.injection") if recorder is not None
              else _NO_SPAN):
            report.injection = run_injection_selftest(seed=seed)
    return report
