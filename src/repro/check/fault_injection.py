"""Mutation-kill self-test: prove the oracles can actually fail.

A checking harness that never fires is indistinguishable from one that
works.  Each mutation class below corrupts one artifact the way a real
bug in that layer would — a misplaced offset, a dropped intersection
edge, a skewed loop bound, a tampered delta checkpoint, an understated
pool total, a shrunk buffer — and asserts the corresponding oracle
*catches* it.  A mutation that survives means an oracle has gone blind,
and ``python -m repro check --inject`` exits nonzero.

Each injector returns ``None`` when the sampled artifacts cannot host
its mutation (e.g. no two buffers ever overlap in time); the self-test
then tries the next graph seed, so every class is exercised on graphs
where it is meaningful.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import SDFError
from ..sdf.random_graphs import random_sdf_graph
from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode
from ..sdf.simulate import simulate_schedule, validate_schedule
from ..allocation.first_fit import Allocation, first_fit
from ..allocation.verify import verify_allocation
from ..codegen.vm import SharedMemoryVM
from .oracles import CHECK_STRIDE, PipelineArtifacts, build_artifacts, compare_trace

__all__ = [
    "InjectionOutcome",
    "InjectionReport",
    "MUTATION_CLASSES",
    "run_injection_selftest",
]


@dataclass
class InjectionOutcome:
    """One mutation applied to one compiled graph."""

    mutation: str
    graph_seed: int
    caught: bool
    detail: str


@dataclass
class InjectionReport:
    """The self-test verdict across all mutation classes."""

    outcomes: List[InjectionOutcome] = field(default_factory=list)

    @property
    def all_caught(self) -> bool:
        return bool(self.outcomes) and all(o.caught for o in self.outcomes)

    def summary_lines(self) -> List[str]:
        lines = []
        for o in self.outcomes:
            verdict = "caught" if o.caught else "MISSED"
            lines.append(
                f"{o.mutation:>18}  seed {o.graph_seed:>5}  {verdict}: "
                f"{o.detail}"
            )
        return lines


def _overlapping_pair(art: PipelineArtifacts):
    """Two sized buffers whose lifetimes intersect, or ``None``."""
    buffers = [b for b in art.result.lifetimes.as_list() if b.size > 0]
    for i in range(len(buffers)):
        for j in range(i + 1, len(buffers)):
            if buffers[i].overlaps(
                buffers[j], occurrence_cap=art.occurrence_cap
            ):
                return buffers[i], buffers[j]
    return None


def _verify_catches(art: PipelineArtifacts, allocation: Allocation) -> bool:
    try:
        verify_allocation(
            art.result.lifetimes.as_list(), allocation, art.occurrence_cap
        )
    except SDFError:
        return True
    return False


def inject_offset(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Move one buffer onto a time-overlapping neighbour's address."""
    pair = _overlapping_pair(art)
    if pair is None:
        return None
    victim, neighbour = pair
    alloc = art.result.allocation
    offsets = dict(alloc.offsets)
    offsets[victim.name] = offsets[neighbour.name]
    mutated = Allocation(
        offsets=offsets,
        total=max(offsets[n] + b.size for n, b in (
            (b.name, b) for b in art.result.lifetimes.as_list()
        )),
        order=alloc.order,
        graph=alloc.graph,
    )
    caught = _verify_catches(art, mutated)
    return InjectionOutcome(
        mutation="offset",
        graph_seed=art.seed,
        caught=caught,
        detail=(
            f"placed {victim.name!r} on top of {neighbour.name!r} "
            f"at offset {offsets[victim.name]}"
        ),
    )


def inject_wig_edge(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Drop an intersection-graph edge and re-run first-fit.

    The allocator, blinded to one genuine conflict, may now overlay the
    pair; Definition-5 verification (which re-derives intersection from
    the lifetimes, not the WIG) must notice.  Only edges whose removal
    actually changes the placement into an overlap count — dropping an
    edge the allocator never relied on is not a fault.
    """
    buffers = art.result.lifetimes.as_list()
    wig = art.result.allocation.graph
    candidates = [
        (i, j)
        for i in range(len(buffers))
        for j in wig.neighbors[i]
        if i < j and buffers[i].size > 0 and buffers[j].size > 0
    ]
    rng.shuffle(candidates)
    for i, j in candidates:
        neighbors = [set(n) for n in wig.neighbors]
        neighbors[i].discard(j)
        neighbors[j].discard(i)
        pruned = type(wig)(buffers=list(wig.buffers), neighbors=neighbors)
        alloc = first_fit(
            buffers, graph=pruned, occurrence_cap=art.occurrence_cap
        )
        oi, oj = alloc.offsets[buffers[i].name], alloc.offsets[buffers[j].name]
        disjoint = (
            oi + buffers[i].size <= oj or oj + buffers[j].size <= oi
        )
        if disjoint:
            continue  # allocator got lucky; this drop is harmless
        caught = _verify_catches(art, alloc)
        return InjectionOutcome(
            mutation="wig_edge",
            graph_seed=art.seed,
            caught=caught,
            detail=(
                f"dropped WIG edge ({buffers[i].name!r}, "
                f"{buffers[j].name!r}); first-fit overlaid them at "
                f"{oi}/{oj}"
            ),
        )
    return None


def _skew_one_loop(
    node: ScheduleNode, rng: random.Random
) -> Optional[ScheduleNode]:
    """Rebuild ``node`` with one nested loop/firing count bumped by one.

    Only *inner* counts are touched: scaling the whole schedule uniformly
    would be a legal blocking-factor change, not a fault.
    """
    if isinstance(node, Firing):
        return Firing(node.actor, node.count + 1)
    body = list(node.body)
    k = rng.randrange(len(body))
    skewed = _skew_one_loop(body[k], rng)
    if skewed is None:
        return None
    body[k] = skewed
    return Loop(node.count, tuple(body))


def inject_loop_bound(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Skew one loop bound of the SDPPO schedule; validation must fail.

    A graph with one actor has every count change absorbed into the
    blocking factor, so the mutation needs at least two actors (always
    true for harness graphs).
    """
    schedule = art.result.sdppo_schedule
    if len(art.graph.actor_names()) < 2:
        return None
    body = list(schedule.body)
    k = rng.randrange(len(body))
    skewed = _skew_one_loop(body[k], rng)
    if skewed is None:
        return None
    body[k] = skewed
    mutated = LoopedSchedule(body)
    try:
        validate_schedule(art.graph, mutated)
        caught = False
    except SDFError:
        caught = True
    return InjectionOutcome(
        mutation="loop_bound",
        graph_seed=art.seed,
        caught=caught,
        detail=f"skewed {schedule} into {mutated}",
    )


def inject_delta_checkpoint(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Corrupt a non-initial trace checkpoint; replay must expose it."""
    schedule = art.result.sdppo_schedule
    trace = simulate_schedule(
        art.graph, schedule, checkpoint_stride=CHECK_STRIDE
    )
    if len(trace._checkpoints) < 2:
        return None
    k = rng.randrange(1, len(trace._checkpoints))
    checkpoint = trace._checkpoints[k]
    key = rng.choice(sorted(checkpoint))
    checkpoint[key] += 1
    violations = compare_trace(art.graph, schedule, trace)
    return InjectionOutcome(
        mutation="delta_checkpoint",
        graph_seed=art.seed,
        caught=bool(violations),
        detail=(
            f"bumped edge {key} in checkpoint {k}; "
            f"{len(violations)} violation(s) reported"
        ),
    )


def inject_total(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Understate the allocation's reported pool extent by one word."""
    alloc = art.result.allocation
    if alloc.total < 1:
        return None
    mutated = Allocation(
        offsets=dict(alloc.offsets),
        total=alloc.total - 1,
        order=alloc.order,
        graph=alloc.graph,
    )
    caught = _verify_catches(art, mutated)
    return InjectionOutcome(
        mutation="total",
        graph_seed=art.seed,
        caught=caught,
        detail=f"reported total {alloc.total - 1} instead of {alloc.total}",
    )


def inject_buffer_size(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Shrink one linear buffer below its episode transfer size.

    The VM's cursor discipline writes exactly ``size`` words per episode
    into a non-circular buffer, so a size understated by one word must
    overrun (or corrupt a neighbour) at run time.
    """
    lifetimes = copy.deepcopy(art.result.lifetimes)
    candidates = [
        k
        for k, lt in lifetimes.lifetimes.items()
        if lt.size > 1 and art.graph.edge(*k).delay == 0
    ]
    if not candidates:
        return None
    key = rng.choice(sorted(candidates))
    victim = lifetimes.lifetimes[key]
    lifetimes.lifetimes[key] = type(victim)(
        name=victim.name,
        size=victim.size - 1,
        start=victim.start,
        duration=victim.duration,
        periods=victim.periods,
        total_span=victim.total_span,
    )
    try:
        vm = SharedMemoryVM(art.graph, lifetimes, art.result.allocation)
        vm.run(periods=2)
        caught = False
    except SDFError:
        caught = True
    return InjectionOutcome(
        mutation="buffer_size",
        graph_seed=art.seed,
        caught=caught,
        detail=(
            f"shrank buffer {victim.name!r} from {victim.size} to "
            f"{victim.size - 1} words"
        ),
    )


def inject_stage_crash(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Crash the pipeline mid-flow; partial observability must survive.

    Feeding the pipeline its own order *reversed* (declared trusted, so
    the up-front validation that would reject it is skipped) makes a
    downstream stage raise on most graphs — the regression mode where
    ``repro compile --profile`` used to lose the raising stage's timing
    row entirely.  Caught means: the flow raised, the ``TimingReport``
    still holds rows including one carrying the error, and the
    recorder's span stack unwound cleanly (no span left open, the
    failure recorded on a span).  Graphs whose reversed order happens
    to compile (enough initial tokens) are skipped as inapplicable.
    """
    from .. import obs
    from ..experiments.runner import TimingReport
    from ..scheduling.pipeline import implement

    order = list(reversed(art.result.order))
    if order == art.result.order:
        return None
    report = TimingReport()
    rec = obs.TraceRecorder()
    try:
        # ``use_chain_dp=False``: the chain DP ignores the supplied
        # order (it derives its own), which would mask the fault.
        implement(
            art.graph,
            order=order,
            trusted_order=True,
            use_chain_dp=False,
            occurrence_cap=art.occurrence_cap,
            report=report,
            recorder=rec,
        )
        return None  # reversed order compiled cleanly; try another graph
    except SDFError:
        pass
    error_rows = [r for r in report.rows if "error" in r["meta"]]
    span_errors = [s for _, s in rec.iter_spans() if s.error]
    caught = (
        bool(report.rows)
        and bool(error_rows)
        and bool(span_errors)
        and not rec.open_spans
    )
    return InjectionOutcome(
        mutation="stage_crash",
        graph_seed=art.seed,
        caught=caught,
        detail=(
            f"reversed order crashed stage "
            f"{error_rows[0]['bench'] if error_rows else '<none>'}; "
            f"{len(report.rows)} timing row(s), "
            f"{len(span_errors)} span error(s), "
            f"open spans {rec.open_spans!r}"
        ),
    )


def inject_cache_corrupt(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Corrupt an artifact-cache entry; it must never be served.

    Compiles the graph through a :class:`repro.serve.CompileService`
    backed by a throwaway cache, then corrupts the stored entry one of
    three ways a real deployment could: truncation (crash mid-write of
    a non-atomic writer), field tampering with a stale digest (bit rot
    or a buggy external editor), or wholesale garbage.  Caught means
    the corrupted entry is evicted on read (the lookup misses, the
    file is gone) and the recompute's report is bit-identical to the
    pre-corruption cold result — corruption repaired, never served.
    """
    import os
    import tempfile

    from ..sdf.io import to_json
    from ..serve import ArtifactCache, CompileOptions, CompileService

    document = to_json(art.graph)
    options = CompileOptions(
        method=art.method, seed=art.seed,
        occurrence_cap=art.occurrence_cap,
    )
    mode = rng.choice(("truncate", "tamper", "garbage"))
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as root:
        cache = ArtifactCache(root)
        service = CompileService(cache=cache)
        cold, status = service.compile_document(document, options)
        path = cache.path_for(cold.key)
        if status != "miss" or not os.path.isfile(path):
            return None
        if mode == "truncate":
            with open(path, "r+", encoding="utf-8") as handle:
                handle.truncate(max(1, os.path.getsize(path) // 2))
        elif mode == "tamper":
            # Valid JSON, wrong content: only the digest check can
            # notice.  Overstate the pool total by one word.
            import json

            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            entry["report"]["total"] = int(entry["report"]["total"]) + 1
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("\x00not json\x00" * 3)
        served = cache.get(cold.key)
        evicted = not os.path.isfile(path)
        warm, warm_status = service.compile_document(document, options)
        caught = (
            served is None
            and evicted
            and warm_status == "miss"
            and warm.canonical() == cold.canonical()
        )
        return InjectionOutcome(
            mutation="cache_corrupt",
            graph_seed=art.seed,
            caught=caught,
            detail=(
                f"{mode}: corrupt read -> "
                f"{'miss' if served is None else 'SERVED'}, "
                f"entry {'evicted' if evicted else 'STILL PRESENT'}, "
                f"recompute ({warm_status}) "
                f"{'bit-identical' if warm.canonical() == cold.canonical() else 'DIFFERS'}"
            ),
        )


def inject_worker_crash(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Kill a farm worker mid-compile; the failure must stay loud.

    Stands up a single-worker compile farm (``allow_faults=True``, a
    knob the CLI never sets) and submits the graph with the
    ``worker_crash`` fault armed: the worker ``os._exit``\\ s midway
    through the compile, after admission but before any response
    frame.  Caught means the crash surfaced as an immediate one-line
    503 (not a hang — the client would time out — and not a silently
    retried success), the supervisor respawned the worker, and a
    plain resubmit then compiles to a report bit-identical to the
    direct pipeline result.  A crash that hangs the request, leaks a
    dead pool, or diverges on retry means the farm's supervision has
    gone blind.
    """
    import tempfile

    from ..sdf.io import to_json
    from ..serve import (
        ArtifactCache,
        CompilationReport,
        CompileServer,
        CompileService,
        ServeClientError,
    )
    from ..serve.client import compile_remote

    document = to_json(art.graph)
    options = {
        "method": art.method, "seed": art.seed,
        "occurrence_cap": art.occurrence_cap,
    }
    reference = CompilationReport.from_result(
        art.result, art.graph.name, seed=art.seed
    )
    with tempfile.TemporaryDirectory(prefix="repro-farm-") as root:
        server = CompileServer(
            CompileService(cache=ArtifactCache(root)),
            port=0, processes=1, queue_limit=16,
            allow_faults=True, quiet=True,
        ).start()
        try:
            crash_status: Optional[int] = None
            crash_detail = "request unexpectedly succeeded"
            try:
                # cache=False keeps the fault on the compile path (a
                # cache hit would answer before the hook runs).
                payload = {
                    "graph": document, "options": options,
                    "cache": False, "fault": "worker_crash",
                }
                from ..serve.client import _post

                _post(server.url, "/compile", payload, timeout=60.0)
            except ServeClientError as exc:
                crash_status = exc.status
                crash_detail = str(exc)
            crashed_cleanly = crash_status == 503 and "\n" not in crash_detail
            try:
                retry, retry_status = compile_remote(
                    document, url=server.url, options=options, timeout=60.0
                )
            except ServeClientError as exc:
                return InjectionOutcome(
                    mutation="worker_crash",
                    graph_seed=art.seed,
                    caught=False,
                    detail=f"farm did not recover: {exc}",
                )
            reference.key = retry.key
            recovered = (
                server.farm is not None
                and server.farm.alive_count() == server.farm.size
                and server.farm.restarts_total() >= 1
            )
            identical = retry.canonical() == reference.canonical()
            caught = crashed_cleanly and recovered and identical
            return InjectionOutcome(
                mutation="worker_crash",
                graph_seed=art.seed,
                caught=caught,
                detail=(
                    f"crash -> HTTP {crash_status} "
                    f"({'one-line 503' if crashed_cleanly else 'WRONG SHAPE'}), "
                    f"worker {'respawned' if recovered else 'NOT RESPAWNED'}, "
                    f"retry ({retry_status}) "
                    f"{'bit-identical' if identical else 'DIVERGED'}"
                ),
            )
        finally:
            server.drain(timeout=10)


def inject_broadcast_stop(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Truncate a broadcast buffer's lifetime to its *earliest* member
    stop — the signature bug of modelling a shared buffer by its fastest
    consumer instead of its slowest.

    Builds its own broadcast graph (the default factory graphs carry no
    groups), shortens the group lifetime so first-fit may reuse the tail
    that slow members still read, and asserts Definition-5 verification
    — which re-derives conflicts from the *true* lifetimes — rejects
    the resulting placement.  Truncations first-fit never exploits are
    harmless and skipped.
    """
    from ..lifetimes.intervals import _stop_within, least_parent_of
    from ..sdf.random_graphs import random_broadcast_sdf_graph

    try:
        graph = random_broadcast_sdf_graph(
            rng.randint(4, 7),
            seed=art.seed,
            num_groups=2,
            delayed_group_fraction=0.0,
            max_repetition=6,
        )
        bart = build_artifacts(
            graph, method="rpmc", seed=art.seed,
            occurrence_cap=art.occurrence_cap,
        )
    except SDFError:
        return None
    except RuntimeError:
        return None
    lifetimes = bart.result.lifetimes
    tree = lifetimes.tree
    for name, members in sorted(graph.broadcast_groups().items()):
        first = members[0]
        if first.delay > 0:
            continue  # delayed groups span the whole period; no tail
        lp = least_parent_of(tree, [first.source] + [m.sink for m in members])
        stops = [_stop_within(tree, lp, m.sink) for m in members]
        shared = lifetimes.groups[name]
        if min(stops) >= shared.start + shared.duration:
            continue  # all members stop together; truncation is a no-op
        if min(stops) <= shared.start:
            continue
        mutated = copy.deepcopy(lifetimes)
        wrong = mutated.groups[name]
        truncated = type(wrong)(
            name=wrong.name,
            size=wrong.size,
            start=wrong.start,
            duration=min(stops) - wrong.start,
            periods=wrong.periods,
            total_span=wrong.total_span,
        )
        for key, lt in list(mutated.lifetimes.items()):
            if lt is wrong:
                mutated.lifetimes[key] = truncated
        mutated.groups[name] = truncated
        alloc = first_fit(
            mutated.as_list(), occurrence_cap=art.occurrence_cap
        )
        # Did first-fit exploit the shortened tail?  The mutation only
        # counts when the group buffer now shares addresses with a
        # buffer that truly conflicts with it.
        lo = alloc.offsets[shared.name]
        hi = lo + shared.size
        exploited = False
        for other in lifetimes.as_list():
            if other.name == shared.name or other.size == 0:
                continue
            o = alloc.offsets[other.name]
            if o + other.size <= lo or hi <= o:
                continue
            if shared.overlaps(other, occurrence_cap=art.occurrence_cap):
                exploited = True
                break
        if not exploited:
            continue  # allocator did not take the bait on this group
        caught = _verify_catches(bart, alloc)
        return InjectionOutcome(
            mutation="broadcast_stop",
            graph_seed=art.seed,
            caught=caught,
            detail=(
                f"truncated group {name!r} lifetime from duration "
                f"{shared.duration} to {truncated.duration} (earliest "
                f"member stop); first-fit overlaid it with a live buffer"
            ),
        )
    return None


def inject_cyclic_schedule(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Skew one loop bound of a *cyclic* graph's expanded schedule.

    Builds its own cyclic graph (the default factory graphs are
    acyclic), runs SCC clustering + quotient scheduling + expansion,
    then bumps one nested firing count — the shape of a bug in the
    composite-firing expansion.  Token-replay validation on the
    original cyclic graph must reject the result.
    """
    from ..scheduling.cyclic import schedule_cyclic
    from ..sdf.random_graphs import random_cyclic_sdf_graph

    try:
        graph = random_cyclic_sdf_graph(
            rng.randint(3, 6), seed=art.seed, num_feedback=1,
            max_repetition=6,
        )
        schedule = schedule_cyclic(graph).schedule
    except (SDFError, RuntimeError):
        return None
    if len(graph.actor_names()) < 2:
        return None
    body = list(schedule.body)
    k = rng.randrange(len(body))
    skewed = _skew_one_loop(body[k], rng)
    if skewed is None:
        return None
    body[k] = skewed
    mutated = LoopedSchedule(body)
    try:
        validate_schedule(graph, mutated)
        caught = False
    except SDFError:
        caught = True
    return InjectionOutcome(
        mutation="cyclic_schedule",
        graph_seed=art.seed,
        caught=caught,
        detail=f"skewed cyclic schedule {schedule} into {mutated}",
    )


def inject_native_kernel(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Arm a seeded fault inside the compiled kernels; the differential
    comparison against the Python pipeline must notice.

    Two fault kinds, the shapes of real kernel bugs: ``dp_cell`` skews
    one cell of the DP cost table (a bad index or combiner in the C
    loop), ``probe`` shifts one first-fit placement (an off-by-one in
    the probe scan).  Caught means the faulted native run's outputs
    differ from the clean pipeline's — exactly what the
    ``oracle.native`` bit-identity comparison checks on every trial.
    Without a usable kernel (no compiler, ``REPRO_NATIVE=0``) the
    armed contract is the *fallback*: a native-requested compile must
    silently produce the Python result bit for bit.
    """
    from ..native import get_kernels, kernel_fault
    from ..scheduling.pipeline import implement
    from .oracles import _result_signature

    reference = _result_signature(art.result)
    if get_kernels() is None:
        alt = implement(
            art.graph, art.method, seed=art.seed,
            occurrence_cap=art.occurrence_cap, verify=False,
            backend="native",
        )
        identical = _result_signature(alt) == reference
        return InjectionOutcome(
            mutation="native_kernel",
            graph_seed=art.seed,
            caught=identical,
            detail=(
                "no native kernel available; backend='native' fallback "
                + ("bit-identical to python" if identical else "DIVERGED")
            ),
        )
    kind = rng.choice(("dp_cell", "probe"))
    with kernel_fault(kind):
        mutated = implement(
            art.graph, art.method, seed=art.seed,
            occurrence_cap=art.occurrence_cap, verify=False,
            backend="native",
        )
    skewed = _result_signature(mutated)
    differing = sorted(k for k in reference if skewed[k] != reference[k])
    caught = bool(differing)
    return InjectionOutcome(
        mutation="native_kernel",
        graph_seed=art.seed,
        caught=caught,
        detail=(
            f"armed {kind!r} kernel fault; "
            + (
                f"differential caught it on {', '.join(differing)}"
                if caught
                else "faulted native run matched python (oracle blind)"
            )
        ),
    )


def inject_vectorize_overrun(
    art: PipelineArtifacts, rng: random.Random
) -> Optional[InjectionOutcome]:
    """Claim a budget the blocked schedule actually violates.

    Runs the real unconstrained blocking pass, then forges its result
    to assert it respected a ``memory_budget`` equal to the *baseline*
    pool total — the exact lie a buggy greedy loop would tell if it
    applied a fission without re-costing it.  The independent re-cost
    in :func:`~repro.check.oracles.vectorize_violations` (the same
    helper every ``oracle.vectorize`` trial runs) must expose the
    overrun.  Graphs where blocking is free (no safe fission, or the
    flat schedule costs no more than the baseline) cannot host the
    mutation and defer to the next seed.
    """
    from dataclasses import replace

    from ..scheduling.vectorize import vectorize_schedule
    from .oracles import vectorize_violations

    vec = vectorize_schedule(
        art.graph, art.result.sdppo_schedule, art.q,
        occurrence_cap=art.occurrence_cap,
    )
    if (
        vec.cost is None
        or vec.baseline_cost is None
        or vec.steps == 0
        or vec.cost <= vec.baseline_cost
    ):
        return None
    forged = replace(vec, memory_budget=vec.baseline_cost)
    violations = vectorize_violations(
        art.graph, forged, art.q, occurrence_cap=art.occurrence_cap
    )
    caught = any("budget" in v for v in violations)
    return InjectionOutcome(
        mutation="vectorize_overrun",
        graph_seed=art.seed,
        caught=caught,
        detail=(
            f"claimed budget {vec.baseline_cost} on a blocking costing "
            f"{vec.cost} words; {len(violations)} violation(s) reported"
        ),
    )


MUTATION_CLASSES: Dict[
    str, Callable[[PipelineArtifacts, random.Random], Optional[InjectionOutcome]]
] = {
    "offset": inject_offset,
    "wig_edge": inject_wig_edge,
    "loop_bound": inject_loop_bound,
    "delta_checkpoint": inject_delta_checkpoint,
    "total": inject_total,
    "buffer_size": inject_buffer_size,
    "stage_crash": inject_stage_crash,
    "cache_corrupt": inject_cache_corrupt,
    "worker_crash": inject_worker_crash,
    "broadcast_stop": inject_broadcast_stop,
    "cyclic_schedule": inject_cyclic_schedule,
    "native_kernel": inject_native_kernel,
    "vectorize_overrun": inject_vectorize_overrun,
}


def run_injection_selftest(
    seed: int = 0,
    max_attempts: int = 40,
    graph_factory: Optional[Callable[[int], PipelineArtifacts]] = None,
) -> InjectionReport:
    """Apply every mutation class to compiled random graphs.

    Each class retries across graph seeds until its mutation is
    applicable (at most ``max_attempts`` graphs); an inapplicable class
    after all attempts is recorded as missed — the self-test must not
    silently skip a mutation.
    """
    rng = random.Random(seed)
    if graph_factory is None:
        def graph_factory(graph_seed: int) -> PipelineArtifacts:
            graph = random_sdf_graph(
                rng.randint(3, 7), seed=graph_seed, max_repetition=6
            )
            return build_artifacts(graph, method="rpmc", seed=graph_seed)

    report = InjectionReport()
    cache: Dict[int, PipelineArtifacts] = {}
    for name, inject in MUTATION_CLASSES.items():
        outcome: Optional[InjectionOutcome] = None
        for attempt in range(max_attempts):
            graph_seed = seed * 1000 + attempt
            if graph_seed not in cache:
                cache[graph_seed] = graph_factory(graph_seed)
            outcome = inject(cache[graph_seed], rng)
            if outcome is not None:
                break
        if outcome is None:
            outcome = InjectionOutcome(
                mutation=name,
                graph_seed=-1,
                caught=False,
                detail=f"no applicable instance in {max_attempts} graphs",
            )
        report.outcomes.append(outcome)
    return report
