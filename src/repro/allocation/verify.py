"""Allocation verification (definition 5 of the paper).

An allocation ``A`` is feasible iff for every pair of buffers whose
lifetimes intersect, their address ranges are disjoint:
``A(b1) + w(b1) <= A(b2)`` or ``A(b2) + w(b2) <= A(b1)``.  The checker
re-derives intersection from the lifetimes (it does not trust the
intersection graph the allocator used), making it an independent oracle
for tests and experiments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import AllocationError
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime
from .first_fit import Allocation

__all__ = ["verify_allocation", "find_conflicts"]


def find_conflicts(
    buffers: Sequence[PeriodicLifetime],
    offsets: Dict[str, int],
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> List[Tuple[str, str]]:
    """All pairs that overlap in time *and* in memory."""
    conflicts: List[Tuple[str, str]] = []
    items = list(buffers)
    # Validate every name up front: the pair loop below reads the offset
    # of the *second* buffer of each pair before that buffer's own outer
    # iteration runs, so a missing offset must not surface as a KeyError
    # (or, for a zero-size buffer, be skipped entirely).
    for b in items:
        if b.name not in offsets:
            raise AllocationError(f"buffer {b.name!r} has no offset")
    for i in range(len(items)):
        bi = items[i]
        for j in range(i + 1, len(items)):
            bj = items[j]
            if bj.size == 0 or bi.size == 0:
                continue
            oi, oj = offsets[bi.name], offsets[bj.name]
            memory_disjoint = oi + bi.size <= oj or oj + bj.size <= oi
            if memory_disjoint:
                continue
            if bi.overlaps(bj, occurrence_cap=occurrence_cap):
                conflicts.append((bi.name, bj.name))
    return conflicts


def verify_allocation(
    buffers: Sequence[PeriodicLifetime],
    allocation: Allocation,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> None:
    """Raise :class:`AllocationError` unless ``allocation`` is feasible.

    Also checks that offsets are non-negative and that the reported
    total covers every buffer.
    """
    for b in buffers:
        off = allocation.offset_of(b.name)
        if off < 0:
            raise AllocationError(f"buffer {b.name!r} at negative offset {off}")
        if off + b.size > allocation.total:
            raise AllocationError(
                f"buffer {b.name!r} extends past the reported total "
                f"({off} + {b.size} > {allocation.total})"
            )
    conflicts = find_conflicts(buffers, allocation.offsets, occurrence_cap)
    if conflicts:
        raise AllocationError(
            f"allocation has {len(conflicts)} conflicting pair(s), "
            f"e.g. {conflicts[0]}"
        )
