"""Maximum clique weight bounds for lifetime instances (section 9.1).

The maximum clique weight (MCW) of the weighted intersection graph — the
largest total size of simultaneously live buffers — lower-bounds the
chromatic-number-style allocation total.  For *non-periodic* instances
the MCW is computed exactly by sweeping interval start times (the
maximum overlap always includes some interval's start).

With periodic lifetimes the maximum can occur at a later occurrence of
an interval (figure 20), and checking all occurrence starts is
exponential in the worst case.  Following section 9.1 the paper (and we)
use two polynomial heuristics:

* ``mco`` — optimistic: evaluate the clique weight only at each
  lifetime's *earliest* start (a lower bound on the true MCW);
* ``mcp`` — pessimistic: ignore periodicity, treating each lifetime as
  solid from its earliest start to its last stop, and compute the exact
  MCW of that interval instance (an upper bound on the true MCW).

``mcw_exact_occurrences`` evaluates every occurrence start (exact but
potentially slow) for cross-checks on small instances.
"""

from __future__ import annotations

from typing import List, Sequence

from ..lifetimes.periodic import PeriodicLifetime

__all__ = [
    "clique_weight_at",
    "mcw_optimistic",
    "mcw_pessimistic",
    "mcw_exact_occurrences",
]


def clique_weight_at(buffers: Sequence[PeriodicLifetime], time: int) -> int:
    """Total size of the buffers live at ``time`` (figure 18 test)."""
    return sum(b.size for b in buffers if b.live_at(time))


def mcw_optimistic(buffers: Sequence[PeriodicLifetime]) -> int:
    """``mco``: max clique weight over earliest start times only.

    A lower bound on the true MCW: the set of times where the maximum
    overlap occurs always contains *some* occurrence's start, but not
    necessarily an earliest one (figure 20).
    """
    best = 0
    for b in buffers:
        w = clique_weight_at(buffers, b.start)
        if w > best:
            best = w
    return best


def mcw_pessimistic(buffers: Sequence[PeriodicLifetime]) -> int:
    """``mcp``: exact MCW after replacing lifetimes by solid envelopes.

    An upper bound on the true MCW.  Computed by an event sweep over
    (start, +size) / (stop, -size) events with deaths processed before
    births at equal times (half-open intervals).
    """
    events: List = []
    for b in buffers:
        solid = b.solid()
        events.append((solid.start, 1, solid.size))
        events.append((solid.start + solid.duration, 0, solid.size))
    events.sort()
    live = best = 0
    for _, kind, size in events:
        if kind == 0:
            live -= size
        else:
            live += size
            if live > best:
                best = live
    return best


def mcw_exact_occurrences(
    buffers: Sequence[PeriodicLifetime], occurrence_limit: int = 200_000
) -> int:
    """Exact MCW by evaluating every occurrence start of every lifetime.

    Raises :class:`ValueError` if the instance has more occurrence
    starts than ``occurrence_limit`` (the non-polynomial blow-up the
    paper's heuristics exist to avoid).  Intended for validation on
    small instances.
    """
    total = sum(b.num_occurrences for b in buffers)
    if total > occurrence_limit:
        raise ValueError(
            f"instance has {total} occurrence starts; exceeds limit "
            f"{occurrence_limit}"
        )
    best = 0
    for b in buffers:
        for s in b.occurrence_starts():
            w = clique_weight_at(buffers, s)
            if w > best:
                best = w
    return best
