"""Dynamic storage allocation: WIG, first-fit, clique bounds, verification."""

from .intersection_graph import IntersectionGraph, build_intersection_graph
from .first_fit import Allocation, ffdur, ffstart, first_fit
from .clique import (
    clique_weight_at,
    mcw_exact_occurrences,
    mcw_optimistic,
    mcw_pessimistic,
)
from .verify import find_conflicts, verify_allocation
from .optimal import optimal_allocation

__all__ = [
    "optimal_allocation",
    "IntersectionGraph",
    "build_intersection_graph",
    "Allocation",
    "first_fit",
    "ffdur",
    "ffstart",
    "clique_weight_at",
    "mcw_optimistic",
    "mcw_pessimistic",
    "mcw_exact_occurrences",
    "find_conflicts",
    "verify_allocation",
]
