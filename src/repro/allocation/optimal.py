"""Exact dynamic storage allocation by branch and bound (section 9).

DSA is NP-complete (Theorem 1, even with sizes 1 and 2), so the paper
allocates with first-fit and judges quality against the maximum clique
weight.  For *small* instances the optimum is computable outright, which
gives the test suite an oracle: how far from optimal is first-fit, and
does the allocation really stay within the known 1.25 factor of the MCW
on our instances?

Exactness argument: any feasible allocation can be *compacted* — sweep
buffers in ascending base-address order, pushing each down until it
rests on address 0 or on the top of a time-overlapping buffer below —
without increasing the extent.  In a compacted allocation, every buffer
rests on 0 or on a buffer with a smaller base, so enumerating placements
in base-ascending order with only "resting" candidate offsets (0 and
the tops of already-placed intersecting neighbours, never below the
previously placed base) covers some optimal allocation.  The search
branches over both the next buffer and its resting offset, pruning with
the incumbent (initialized from first-fit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime
from .first_fit import Allocation, ffdur
from .intersection_graph import IntersectionGraph, build_intersection_graph

__all__ = ["optimal_allocation"]


def optimal_allocation(
    buffers: Sequence[PeriodicLifetime],
    graph: Optional[IntersectionGraph] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    node_limit: int = 2_000_000,
) -> Allocation:
    """The minimum-extent allocation of a (small) lifetime instance.

    Intended for instances of up to roughly a dozen sized buffers.

    Raises
    ------
    RuntimeError
        If the search exceeds ``node_limit`` branch nodes.
    """
    if graph is None:
        graph = build_intersection_graph(buffers, occurrence_cap=occurrence_cap)
    n = len(buffers)
    sized = [i for i in range(n) if buffers[i].size > 0]

    incumbent = ffdur(buffers, graph=graph, occurrence_cap=occurrence_cap)
    best_total = incumbent.total
    best_offsets = dict(incumbent.offsets)

    offsets: Dict[int, int] = {}
    nodes = 0

    def feasible(i: int, offset: int) -> bool:
        b = buffers[i]
        for j in graph.neighbors[i]:
            if j in offsets:
                oj, sj = offsets[j], buffers[j].size
                if not (offset + b.size <= oj or oj + sj <= offset):
                    return False
        return True

    def branch(placed: Set[int], last_base: int, extent: int) -> None:
        nonlocal nodes, best_total, best_offsets
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"optimal_allocation exceeded {node_limit} nodes"
            )
        if extent >= best_total:
            return
        if len(placed) == len(sized):
            best_total = extent
            named = {buffers[i].name: offsets[i] for i in offsets}
            for i in range(n):
                named.setdefault(buffers[i].name, 0)
            best_offsets = named
            return
        for i in sized:
            if i in placed:
                continue
            candidates = {0}
            for j in graph.neighbors[i]:
                if j in offsets:
                    candidates.add(offsets[j] + buffers[j].size)
            for offset in sorted(candidates):
                if offset < last_base:
                    continue  # base-ascending order (compaction WLOG)
                if offset + buffers[i].size >= best_total:
                    break  # sorted: later candidates only worse
                if feasible(i, offset):
                    offsets[i] = offset
                    placed.add(i)
                    branch(
                        placed, offset,
                        max(extent, offset + buffers[i].size),
                    )
                    placed.discard(i)
                    del offsets[i]

    branch(set(), 0, 0)
    return Allocation(
        offsets=best_offsets,
        total=best_total,
        order=[buffers[i].name for i in sized]
        + [buffers[i].name for i in range(n) if i not in sized],
        graph=graph,
    )
