"""First-fit dynamic storage allocation (paper section 9, figure 19).

Dynamic storage allocation (DSA): place each buffer at a fixed base
offset such that buffers whose lifetimes intersect occupy disjoint
address ranges, minimizing the total extent.  DSA is NP-complete even
for sizes 1 and 2 (Theorem 1), so the paper uses the *first-fit*
heuristic — scan the already-placed intersecting neighbours and take the
lowest feasible offset — applied to two buffer orderings suggested by
the empirical study in its reference [20]:

* ``ffdur``  — by decreasing lifetime duration (best on average);
* ``ffstart`` — by increasing earliest start time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import AllocationError
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime
from .intersection_graph import IntersectionGraph, build_intersection_graph

__all__ = ["Allocation", "first_fit", "ffdur", "ffstart"]


@dataclass
class Allocation:
    """A placement of buffers in a single shared memory pool.

    ``offsets[name]`` is the base address (in words) of each buffer;
    ``total`` the pool extent: ``max(offset + size)``.
    """

    offsets: Dict[str, int]
    total: int
    order: List[str]
    graph: IntersectionGraph

    def offset_of(self, name: str) -> int:
        try:
            return self.offsets[name]
        except KeyError:
            raise AllocationError(f"no allocation for buffer {name!r}") from None


def first_fit(
    buffers: Sequence[PeriodicLifetime],
    order: Optional[Sequence[int]] = None,
    graph: Optional[IntersectionGraph] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    recorder=None,
    backend: str = "python",
) -> Allocation:
    """First-fit allocation of an enumerated instance (figure 19).

    Parameters
    ----------
    buffers:
        The lifetimes to place.  Names must be unique.
    order:
        Indices into ``buffers`` giving the placement order; defaults to
        the given sequence order.
    graph:
        A prebuilt intersection graph (reused across ``ffdur`` and
        ``ffstart`` runs on the same instance).
    recorder:
        Optional :class:`repro.obs.Recorder`; receives one
        ``first_fit.probes`` count per placed-neighbour comparison —
        the heuristic's unit of work.
    backend:
        ``"native"``/``"auto"`` run the cc-compiled probe loop where
        available (bit-identical offsets and probe counts; falls
        through silently otherwise); ``"python"`` (default) never
        dispatches.
    """
    names = [b.name for b in buffers]
    if len(set(names)) != len(names):
        raise AllocationError("buffer names must be unique")
    if graph is None:
        graph = build_intersection_graph(buffers, occurrence_cap=occurrence_cap)
    if order is None:
        order = list(range(len(buffers)))
    if sorted(order) != list(range(len(buffers))):
        raise AllocationError("order must be a permutation of the instance")

    offsets: Optional[Dict[int, int]] = None
    if backend != "python" and buffers:
        from ..native import resolve_backend

        _, kernels = resolve_backend(backend)
        if kernels is not None:
            native = kernels.first_fit(
                [graph.buffers[i].size for i in range(len(buffers))],
                list(order),
                graph.neighbors,
            )
            if native is not None:
                placed_at, probes = native
                # Insert in placement order so the name->offset dict
                # below iterates exactly like the Python loop's.
                offsets = {i: placed_at[i] for i in order}
                if recorder is not None:
                    recorder.count("first_fit.probes", probes)
                    recorder.count("native.first_fit")
    if offsets is None:
        probes = 0
        offsets = {}
        for i in order:
            b = buffers[i]
            placed = [
                (offsets[j], graph.buffers[j].size)
                for j in graph.neighbors[i]
                if j in offsets and graph.buffers[j].size > 0
            ]
            placed.sort()
            candidate = 0
            for base, size in placed:
                probes += 1
                if candidate + b.size <= base:
                    break  # fits in the gap before this neighbour
                candidate = max(candidate, base + size)
            offsets[i] = candidate
        if recorder is not None:
            recorder.count("first_fit.probes", probes)

    total = max(
        (offsets[i] + buffers[i].size for i in range(len(buffers))), default=0
    )
    return Allocation(
        offsets={buffers[i].name: off for i, off in offsets.items()},
        total=total,
        order=[buffers[i].name for i in order],
        graph=graph,
    )


def ffdur(
    buffers: Sequence[PeriodicLifetime],
    graph: Optional[IntersectionGraph] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    recorder=None,
    backend: str = "python",
) -> Allocation:
    """First-fit ordered by decreasing duration (ties: larger size first).

    The reference study found duration ordering the best performer;
    long-lived buffers placed early end up at low addresses, letting
    short-lived ones fill gaps above them.
    """
    order = sorted(
        range(len(buffers)),
        key=lambda i: (-buffers[i].duration, -buffers[i].size, buffers[i].start),
    )
    return first_fit(
        buffers, order, graph, occurrence_cap, recorder=recorder, backend=backend
    )


def ffstart(
    buffers: Sequence[PeriodicLifetime],
    graph: Optional[IntersectionGraph] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    recorder=None,
    backend: str = "python",
) -> Allocation:
    """First-fit ordered by increasing earliest start time."""
    order = sorted(
        range(len(buffers)),
        key=lambda i: (buffers[i].start, -buffers[i].size),
    )
    return first_fit(
        buffers, order, graph, occurrence_cap, recorder=recorder, backend=backend
    )
