"""Weighted intersection graphs of buffer lifetimes (paper section 9.1).

The *weighted intersection graph* (WIG) of a set of buffer lifetimes has
one node per buffer, node weights equal to buffer sizes, and an edge
between two buffers iff their lifetimes overlap in time (using the
periodic intersection test of section 8.4).  First-fit consults the WIG
to know which already-placed buffers constrain a placement; the maximum
clique weight of the WIG lower-bounds the achievable allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime

__all__ = ["IntersectionGraph", "build_intersection_graph"]


@dataclass
class IntersectionGraph:
    """Adjacency-set representation of a WIG over an enumerated instance.

    ``buffers[i]`` is the i-th lifetime; ``neighbors[i]`` the indices of
    lifetimes whose live intervals intersect it.
    """

    buffers: List[PeriodicLifetime]
    neighbors: List[Set[int]]

    def degree(self, i: int) -> int:
        return len(self.neighbors[i])

    def num_edges(self) -> int:
        return sum(len(n) for n in self.neighbors) // 2

    def are_adjacent(self, i: int, j: int) -> bool:
        return j in self.neighbors[i]


def build_intersection_graph(
    buffers: Sequence[PeriodicLifetime],
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> IntersectionGraph:
    """Build the WIG of an enumerated instance of buffer lifetimes.

    Follows the sweep of figure 19's ``buildIntersectionGraph``: sort by
    earliest start, and for each buffer test only candidates whose
    earliest start precedes this buffer's last stop (others cannot
    intersect).  Each candidate pair is decided by the periodic
    intersection test (:meth:`PeriodicLifetime.overlaps`).

    Zero-size buffers participate normally; they cost nothing to place
    but keep the instance aligned with the graph's edge set.
    """
    n = len(buffers)
    neighbors: List[Set[int]] = [set() for _ in range(n)]
    order = sorted(range(n), key=lambda i: buffers[i].start)
    for a_pos in range(n):
        i = order[a_pos]
        bi = buffers[i]
        for b_pos in range(a_pos + 1, n):
            j = order[b_pos]
            bj = buffers[j]
            if bj.start >= bi.last_stop:
                break  # sorted by start: nothing later can intersect bi
            if bi.overlaps(bj, occurrence_cap=occurrence_cap):
                neighbors[i].add(j)
                neighbors[j].add(i)
    return IntersectionGraph(buffers=list(buffers), neighbors=neighbors)
