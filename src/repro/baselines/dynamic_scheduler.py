"""Greedy data-driven dynamic scheduling baseline (section 11.1.3).

Goddard & Jeffay argue that dynamic scheduling reduces SDF memory
requirements; the paper responds that a greedy, data-driven scheduler —
"fire a sink actor on an edge in preference to the source actor on that
edge whenever both are fireable" — achieves, per edge, the minimum
buffer bound over *all* valid schedules, ``a + b - c + (d mod c)``
(optimal simultaneously on every edge for chain-structured graphs), at
the price of a schedule too long to store and roughly 2x runtime
overhead when interpreted dynamically.

This module implements that scheduler as an executable baseline:

* :func:`demand_driven_schedule` produces the firing sequence for one
  period by always firing the *deepest* fireable actor (maximum distance
  from the sources), which prefers consumers over producers globally;
* the resulting per-edge peaks are compared against the static SAS
  results in the ``bench_satrec_baselines`` experiment, reproducing the
  paper's non-SAS < SAS buffer observation;
* a *shared* variant applies the first-fit machinery to the measured
  fine-grained lifetimes of the dynamic schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..exceptions import InconsistentGraphError
from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import Firing, LoopedSchedule

__all__ = ["DynamicScheduleResult", "demand_driven_schedule"]


@dataclass
class DynamicScheduleResult:
    """Outcome of the demand-driven dynamic scheduling baseline.

    ``peaks`` maps edge keys to the maximum token count observed;
    ``nonshared_total`` is their sum in words (the metric Goddard &
    Jeffay report); ``shared_total`` is the peak of the summed live
    token words over time — what a shared implementation of the dynamic
    schedule needs under fine-grained sharing.
    ``schedule_length`` is the number of firings in one period (non-SAS
    schedules can be as long as ``sum(q)``, the storage cost the paper
    warns about).
    """

    firing_sequence: List[str]
    peaks: Dict[Tuple[str, str, int], int]
    nonshared_total: int
    shared_total: int
    schedule_length: int

    def as_looped_schedule(self) -> LoopedSchedule:
        return LoopedSchedule([Firing(a) for a in self.firing_sequence])


def demand_driven_schedule(graph: SDFGraph) -> DynamicScheduleResult:
    """Run the greedy consumer-first dynamic scheduler for one period.

    At each step, among fireable actors that have not exhausted their
    repetition count, fire the one with maximal depth (longest path from
    the sources); ties break by actor insertion order.  Firing deep
    actors first drains buffers as early as possible, realizing the
    ``a + b - c`` bound on every edge of a chain.
    """
    q = repetitions_vector(graph)
    depth = _depths(graph)
    tokens = {e.key: e.delay for e in graph.edges()}
    remaining = dict(q)
    peaks = dict(tokens)
    live_words = sum(
        tokens[e.key] * e.token_size for e in graph.edges()
    )
    shared_peak = live_words
    firings: List[str] = []

    def fireable(a: str) -> bool:
        return remaining[a] > 0 and all(
            tokens[e.key] >= e.consumption for e in graph.in_edges(a)
        )

    total = sum(q.values())
    order = sorted(
        graph.actor_names(), key=lambda a: -depth[a]
    )  # deepest first, stable by insertion order
    while len(firings) < total:
        chosen = None
        for a in order:
            if fireable(a):
                chosen = a
                break
        if chosen is None:
            raise InconsistentGraphError(
                f"graph {graph.name!r} deadlocks under dynamic scheduling",
                kind="deadlock",
            )
        for e in graph.in_edges(chosen):
            tokens[e.key] -= e.consumption
            live_words -= e.consumption * e.token_size
        for e in graph.out_edges(chosen):
            tokens[e.key] += e.production
            live_words += e.production * e.token_size
            if tokens[e.key] > peaks[e.key]:
                peaks[e.key] = tokens[e.key]
        if live_words > shared_peak:
            shared_peak = live_words
        remaining[chosen] -= 1
        firings.append(chosen)

    by_key = {e.key: e for e in graph.edges()}
    nonshared = sum(peaks[k] * by_key[k].token_size for k in peaks)
    return DynamicScheduleResult(
        firing_sequence=firings,
        peaks=peaks,
        nonshared_total=nonshared,
        shared_total=shared_peak,
        schedule_length=len(firings),
    )


def _depths(graph: SDFGraph) -> Dict[str, int]:
    """Longest-path depth of each actor from the sources (DAG only)."""
    depth = {a: 0 for a in graph.actor_names()}
    for a in graph.topological_order():
        for e in graph.out_edges(a):
            if depth[a] + 1 > depth[e.sink]:
                depth[e.sink] = depth[a] + 1
    return depth
