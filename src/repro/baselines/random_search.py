"""Random topological-sort search baseline (paper section 10.1).

To test "whether RPMC and APGAN are generating good topological sorts",
the paper compares their allocations against the best found by applying
SDPPO + first-fit to *random* topological sorts.  On ~25-node graphs it
took ~50 random trials to match the heuristics; after 1000 trials random
search barely beats them (satrec 980 vs 991), while on ~200-node graphs
random search loses outright (qmf12_5d: 79 vs 58 after 100 trials).

:func:`random_search` reproduces that experiment for any graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..sdf.graph import SDFGraph
from ..sdf.topsort import random_topological_sort
from ..scheduling.pipeline import ImplementationResult, implement

__all__ = ["RandomSearchResult", "random_search"]


@dataclass
class RandomSearchResult:
    """Progress of a random topological-sort search.

    ``best_by_trial[t]`` is the best shared allocation total found in
    the first ``t + 1`` trials (the convergence series the paper
    describes); ``best_order`` the winning lexical order.
    """

    trials: int
    best_total: int
    best_order: List[str]
    best_by_trial: List[int] = field(default_factory=list)

    def trials_to_reach(self, target: int) -> Optional[int]:
        """1-based trial count at which the search first reached
        ``target`` or better, or None if it never did."""
        for t, value in enumerate(self.best_by_trial):
            if value <= target:
                return t + 1
        return None


def random_search(
    graph: SDFGraph,
    trials: int = 100,
    seed: int = 0,
    occurrence_cap: int = 4096,
) -> RandomSearchResult:
    """Best shared allocation over ``trials`` random topological sorts.

    Each trial draws a random topological sort, post-optimizes with
    SDPPO, extracts lifetimes, and takes the better of ``ffdur`` and
    ``ffstart`` — the identical flow the heuristic sorts go through.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = random.Random(seed)
    best_total: Optional[int] = None
    best_order: List[str] = []
    series: List[int] = []
    for _ in range(trials):
        order = random_topological_sort(graph, rng)
        result = implement(
            graph,
            order=order,
            occurrence_cap=occurrence_cap,
            verify=False,
        )
        total = result.best_shared_total
        if best_total is None or total < best_total:
            best_total = total
            best_order = order
        series.append(best_total)
    return RandomSearchResult(
        trials=trials,
        best_total=best_total if best_total is not None else 0,
        best_order=best_order,
        best_by_trial=series,
    )
