"""Random topological-sort search baseline (paper section 10.1).

To test "whether RPMC and APGAN are generating good topological sorts",
the paper compares their allocations against the best found by applying
SDPPO + first-fit to *random* topological sorts.  On ~25-node graphs it
took ~50 random trials to match the heuristics; after 1000 trials random
search barely beats them (satrec 980 vs 991), while on ~200-node graphs
random search loses outright (qmf12_5d: 79 vs 58 after 100 trials).

:func:`random_search` reproduces that experiment for any graph.  All
trials share one :class:`~repro.scheduling.session.CompilationSession`
(the graph-level precomputation is paid once, and the sampled orders
are trusted-by-construction so the per-trial topological re-validation
is skipped), and the independent trial evaluations can fan out over
worker processes (``REPRO_JOBS``) with bit-identical results: the order
sequence is drawn serially from the seeded generator before dispatch,
and the convergence series is folded in trial order afterwards.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..sdf.graph import SDFGraph
from ..sdf.topsort import random_topological_sort
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..scheduling.pipeline import implement
from ..scheduling.session import CompilationSession
from ..experiments.runner import effective_jobs, parallel_map

__all__ = ["RandomSearchResult", "random_search"]

#: Reusable stand-in when tracing is off.
_NO_SPAN = nullcontext()


@dataclass
class RandomSearchResult:
    """Progress of a random topological-sort search.

    ``best_by_trial[t]`` is the best shared allocation total found in
    the first ``t + 1`` trials (the convergence series the paper
    describes); ``best_order`` the winning lexical order.
    """

    trials: int
    best_total: int
    best_order: List[str]
    best_by_trial: List[int] = field(default_factory=list)

    def trials_to_reach(self, target: int) -> Optional[int]:
        """1-based trial count at which the search first reached
        ``target`` or better, or None if it never did."""
        for t, value in enumerate(self.best_by_trial):
            if value <= target:
                return t + 1
        return None


# Per-worker state for the parallel path: each worker builds one
# compilation session for the graph and reuses it for every order in
# its chunk.
_WORKER_GRAPH: Optional[SDFGraph] = None
_WORKER_SESSION: Optional[CompilationSession] = None
_WORKER_CAP: int = DEFAULT_OCCURRENCE_CAP


def _init_search_worker(graph: SDFGraph, occurrence_cap: int) -> None:
    global _WORKER_GRAPH, _WORKER_SESSION, _WORKER_CAP
    _WORKER_GRAPH = graph
    _WORKER_SESSION = CompilationSession(graph)
    _WORKER_CAP = occurrence_cap


def _ambient_recorder():
    """The per-task recorder ``parallel_map`` activated, if tracing."""
    rec = obs.current()
    return rec if getattr(rec, "enabled", False) else None


def _evaluate_order(order: Tuple[str, ...]) -> int:
    result = implement(
        _WORKER_GRAPH,
        order=list(order),
        occurrence_cap=_WORKER_CAP,
        verify=False,
        session=_WORKER_SESSION,
        trusted_order=True,
        recorder=_ambient_recorder(),
    )
    return result.best_shared_total


def random_search(
    graph: SDFGraph,
    trials: int = 100,
    seed: int = 0,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
    session: Optional[CompilationSession] = None,
    jobs: Optional[int] = None,
    recorder=None,
) -> RandomSearchResult:
    """Best shared allocation over ``trials`` random topological sorts.

    Each trial draws a random topological sort, post-optimizes with
    SDPPO, extracts lifetimes, and takes the better of ``ffdur`` and
    ``ffstart`` — the identical flow the heuristic sorts go through.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else
    serial) fans the trial evaluations out over worker processes; the
    returned statistics are identical on every path.

    ``recorder`` (a :class:`repro.obs.Recorder`) traces each trial
    under a ``search.trial`` span.  On the serial path spans nest
    directly; on the parallel path each worker records its trials
    locally and the trees are merged back in trial order.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    recorder = obs.active(recorder)
    rng = random.Random(seed)
    orders = [
        tuple(random_topological_sort(graph, rng)) for _ in range(trials)
    ]

    if effective_jobs(jobs) <= 1:
        if session is None:
            session = CompilationSession(graph)
        totals = []
        for order in orders:
            span = (
                recorder.span("search.trial") if recorder is not None
                else _NO_SPAN
            )
            with span:
                totals.append(
                    implement(
                        graph,
                        order=list(order),
                        occurrence_cap=occurrence_cap,
                        verify=False,
                        session=session,
                        trusted_order=True,
                        recorder=recorder,
                    ).best_shared_total
                )
    else:
        totals = parallel_map(
            _evaluate_order,
            orders,
            jobs=jobs,
            initializer=_init_search_worker,
            initargs=(graph, occurrence_cap),
            recorder=recorder,
            task_label="search.trial",
        )

    best_total: Optional[int] = None
    best_order: List[str] = []
    series: List[int] = []
    for order, total in zip(orders, totals):
        if best_total is None or total < best_total:
            best_total = total
            best_order = list(order)
        series.append(best_total)
    return RandomSearchResult(
        trials=trials,
        best_total=best_total if best_total is not None else 0,
        best_order=best_order,
        best_by_trial=series,
    )
