"""Comparison baselines: flat-SAS sharing, dynamic scheduling, random search."""

from .flat_sharing import FlatSharingResult, flat_shared_implementation
from .dynamic_scheduler import DynamicScheduleResult, demand_driven_schedule
from .random_search import RandomSearchResult, random_search

__all__ = [
    "FlatSharingResult",
    "flat_shared_implementation",
    "DynamicScheduleResult",
    "demand_driven_schedule",
    "RandomSearchResult",
    "random_search",
]
