"""Flat-SAS buffer sharing baseline, after Ritz et al. (section 11.1.2).

Ritz et al. minimize buffer memory *on flat single appearance schedules
only* (their primary goals are code size and context-switch overhead).
On a flat SAS ``(q1 x1)(q2 x2)...(qn xn)`` every edge's buffer holds its
full ``TNSE`` tokens — each producer runs to completion before its
consumer starts — so sharing can only exploit the coarse-grained
sequencing of whole actors.

This module reimplements that strategy within our framework: choose a
topological sort (the same search over candidate sorts as RPMC's
prefix-sweep, to be generous to the baseline), build the *flat* SAS,
extract lifetimes, and run first-fit.  The paper reports this class of
approach allocating "more than 2000 units" on the satellite receiver
versus 991 for the nested techniques (more than 100% worse); the bench
``bench_satrec_baselines`` reproduces that comparison's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import LoopedSchedule, flat_single_appearance_schedule
from ..sdf.simulate import buffer_memory_nonshared
from ..lifetimes.intervals import extract_lifetimes
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..allocation.first_fit import Allocation, ffdur, ffstart
from ..allocation.intersection_graph import build_intersection_graph

__all__ = ["FlatSharingResult", "flat_shared_implementation"]


@dataclass
class FlatSharingResult:
    """Outcome of the flat-SAS sharing baseline."""

    order: List[str]
    schedule: LoopedSchedule
    nonshared_total: int
    shared_total: int
    allocation: Allocation


def flat_shared_implementation(
    graph: SDFGraph,
    order: Optional[Sequence[str]] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> FlatSharingResult:
    """Share buffers over a *flat* single appearance schedule.

    Uses the given lexical ``order`` or the graph's deterministic
    topological order.  Returns both the non-shared flat cost (every
    edge at its full ``TNSE``) and the first-fit shared total.
    """
    q = repetitions_vector(graph)
    chosen = list(order) if order is not None else graph.topological_order()
    schedule = flat_single_appearance_schedule(chosen, q)
    lifetimes = extract_lifetimes(graph, schedule, q)
    buffers = lifetimes.as_list()
    wig = build_intersection_graph(buffers, occurrence_cap=occurrence_cap)
    alloc_dur = ffdur(buffers, graph=wig, occurrence_cap=occurrence_cap)
    alloc_start = ffstart(buffers, graph=wig, occurrence_cap=occurrence_cap)
    best = alloc_dur if alloc_dur.total <= alloc_start.total else alloc_start
    return FlatSharingResult(
        order=chosen,
        schedule=schedule,
        nonshared_total=buffer_memory_nonshared(graph, schedule),
        shared_total=best.total,
        allocation=best,
    )
