"""Satellite receiver benchmark ``satrec`` (paper figure 24, [24]).

The paper reproduces only the *schedule* of the satellite receiver
(section 11.1.3):

    (24 (11 (4A) B) C G H I (11 (4D) E) F K L M 10(N S J T U P))
    (Q R V 240W)

which fixes the repetitions vector of all 22 actors:

    A, D           : 1056
    B, E           : 264
    C, G, H, I     : 24
    F, K, L, M     : 24
    N, S, J, T, U, P : 240
    W              : 240
    Q, R, V        : 1

We reconstruct a graph whose balance equations yield exactly this
vector and whose topology matches the receiver structure the schedule
implies: two parallel input chains (the in-phase and quadrature
channels ``A->B->C->G->H->I`` and ``D->E->F->K->L->M``), a merge into a
common processing chain ``N->S->J->T->U->P`` at ten times the channel
rate, a block accumulation into the frame-level actors ``Q->R->V``, and
a final output expansion to ``W``.  This substitution (documented in
DESIGN.md) preserves the repetition structure — which is what drives
loop nesting, buffer lifetimes, and sharing — though the absolute
buffer sizes of the original [24] graph are not recoverable from the
paper.
"""

from __future__ import annotations

from typing import Dict

from ..sdf.graph import SDFGraph

__all__ = ["satellite_receiver", "SATREC_REPETITIONS"]

#: The repetitions vector implied by the published schedule.
SATREC_REPETITIONS: Dict[str, int] = {
    "A": 1056, "B": 264, "C": 24, "G": 24, "H": 24, "I": 24,
    "D": 1056, "E": 264, "F": 24, "K": 24, "L": 24, "M": 24,
    "N": 240, "S": 240, "J": 240, "T": 240, "U": 240, "P": 240,
    "Q": 1, "R": 1, "V": 1, "W": 240,
}


def satellite_receiver(name: str = "satrec") -> SDFGraph:
    """The reconstructed 22-actor satellite receiver graph.

    Examples
    --------
    >>> from repro.sdf import repetitions_vector
    >>> g = satellite_receiver()
    >>> repetitions_vector(g) == SATREC_REPETITIONS
    True
    """
    g = SDFGraph(name)
    for actor in SATREC_REPETITIONS:
        g.add_actor(actor)

    # In-phase channel: sample-rate 1056 -> symbol rate 24.
    g.add_edge("A", "B", 1, 4)     # 4:1 decimating matched filter
    g.add_edge("B", "C", 1, 11)    # 11:1 despreader
    g.add_edge("C", "G", 1, 1)     # carrier tracking
    g.add_edge("G", "H", 1, 1)     # gain control
    g.add_edge("H", "I", 1, 1)     # symbol detector

    # Quadrature channel, identical structure.
    g.add_edge("D", "E", 1, 4)
    g.add_edge("E", "F", 1, 11)
    g.add_edge("F", "K", 1, 1)
    g.add_edge("K", "L", 1, 1)
    g.add_edge("L", "M", 1, 1)

    # Merge into the common chain at 10x the symbol rate (soft bits).
    g.add_edge("I", "N", 10, 1)    # I-channel bit expansion
    g.add_edge("M", "N", 10, 1)    # Q-channel bit expansion
    g.add_edge("N", "S", 1, 1)     # deinterleaver
    g.add_edge("S", "J", 1, 1)     # depuncturer
    g.add_edge("J", "T", 1, 1)     # Viterbi decoder stage
    g.add_edge("T", "U", 1, 1)     # descrambler
    g.add_edge("U", "P", 1, 1)     # frame sync

    # Frame accumulation (240 bits per frame) and frame-level processing.
    g.add_edge("P", "Q", 1, 240)
    g.add_edge("Q", "R", 1, 1)     # frame CRC
    g.add_edge("R", "V", 1, 1)     # frame formatter

    # Output expansion back to the bit stream.
    g.add_edge("V", "W", 240, 1)
    return g
