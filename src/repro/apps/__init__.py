"""Benchmark application graphs (Table 1 systems and worked examples)."""

from typing import Callable, Dict, List

from ..sdf.graph import SDFGraph
from .filterbanks import (
    filterbank_by_name,
    one_sided_filterbank,
    two_sided_filterbank,
)
from .homogeneous import (
    depth_first_order,
    homogeneous_graph,
    nonshared_requirement,
    shared_lower_bound,
)
from .satellite import SATREC_REPETITIONS, satellite_receiver
from .ptolemy_demos import (
    block_vocoder,
    cd_to_dat,
    overlap_add_fft,
    pam4_transmitter_receiver,
    phased_array,
    qam16_modem,
)

__all__ = [
    "two_sided_filterbank",
    "one_sided_filterbank",
    "filterbank_by_name",
    "homogeneous_graph",
    "depth_first_order",
    "shared_lower_bound",
    "nonshared_requirement",
    "satellite_receiver",
    "SATREC_REPETITIONS",
    "cd_to_dat",
    "qam16_modem",
    "pam4_transmitter_receiver",
    "block_vocoder",
    "overlap_add_fft",
    "phased_array",
    "TABLE1_SYSTEMS",
    "table1_graph",
]

#: The Table 1 benchmark suite: name -> constructor.
TABLE1_SYSTEMS: Dict[str, Callable[[], SDFGraph]] = {
    "nqmf23_4d": lambda: one_sided_filterbank(4, "23", name="nqmf23_4d"),
    "qmf23_2d": lambda: two_sided_filterbank(2, "23", name="qmf23_2d"),
    "qmf12_2d": lambda: two_sided_filterbank(2, "12", name="qmf12_2d"),
    "qmf12_3d": lambda: two_sided_filterbank(3, "12", name="qmf12_3d"),
    "qmf12_5d": lambda: two_sided_filterbank(5, "12", name="qmf12_5d"),
    "qmf23_3d": lambda: two_sided_filterbank(3, "23", name="qmf23_3d"),
    "qmf235_2d": lambda: two_sided_filterbank(2, "235", name="qmf235_2d"),
    "qmf235_3d": lambda: two_sided_filterbank(3, "235", name="qmf235_3d"),
    "qmf235_5d": lambda: two_sided_filterbank(5, "235", name="qmf235_5d"),
    "satrec": satellite_receiver,
    "16qamModem": qam16_modem,
    "4pamxmitrec": pam4_transmitter_receiver,
    "blockVox": block_vocoder,
    "overAddFFT": overlap_add_fft,
    "phasedArray": phased_array,
}


def table1_graph(name: str) -> SDFGraph:
    """Construct a Table 1 system by name."""
    try:
        return TABLE1_SYSTEMS[name]()
    except KeyError:
        raise KeyError(
            f"unknown Table 1 system {name!r}; "
            f"known: {sorted(TABLE1_SYSTEMS)}"
        ) from None
