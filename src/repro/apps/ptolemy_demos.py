"""Reconstructions of the Ptolemy demonstration benchmarks (Table 1).

The paper's remaining practical systems — ``16qamModem``,
``4pamxmitrec``, ``blockVox``, ``overAddFFT``, ``phasedArray`` — are
"all taken from the Ptolemy system demonstrations [1]".  Their exact
graphs are not reproduced in the paper, so we reconstruct each as a
multirate SDF graph from the DSP structure its name and the paper's
one-line description imply (DESIGN.md section 3 records this
substitution).  The CD-to-DAT sample rate converter of section 11.1.3 is
fully specified in the authors' earlier work and is reproduced exactly.

All graphs are connected, acyclic, and consistent; their scale (15–30
actors, rate changes between 2x and 16x) matches the paper's
description of the benchmark suite.
"""

from __future__ import annotations

from ..sdf.graph import SDFGraph

__all__ = [
    "cd_to_dat",
    "qam16_modem",
    "pam4_transmitter_receiver",
    "block_vocoder",
    "overlap_add_fft",
    "phased_array",
]


def cd_to_dat(name: str = "cd2dat") -> SDFGraph:
    """The CD (44.1 kHz) to DAT (48 kHz) rate converter (section 11.1.3).

    The classic 147:160 conversion factored into four polyphase stages;
    repetitions (147, 147, 98, 28, 32, 160) and a schedule period of 147
    input sample periods, exactly as the paper states.

    Examples
    --------
    >>> from repro.sdf import repetitions_vector
    >>> repetitions_vector(cd_to_dat())["A"]
    147
    """
    g = SDFGraph(name)
    g.add_actors("ABCDEF")
    g.add_edge("A", "B", 1, 1)
    g.add_edge("B", "C", 2, 3)
    g.add_edge("C", "D", 2, 7)
    g.add_edge("D", "E", 8, 7)
    g.add_edge("E", "F", 5, 1)
    return g


def qam16_modem(name: str = "16qamModem") -> SDFGraph:
    """A 16-QAM modem: transmitter, channel, and receiver.

    Transmitter: bit source -> 4:1 symbol mapper -> I/Q split -> 1:8
    pulse-shaping interpolators -> I/Q modulator.  Receiver: demodulator
    -> matched filters (8:1) -> symbol combiner -> 1:4 bit slicer.
    """
    g = SDFGraph(name)
    g.add_actors(
        [
            "bits", "mapper", "splitI", "splitQ",
            "shapeI", "shapeQ", "mod", "chan",
            "demod", "matchI", "matchQ", "agcI", "agcQ",
            "combine", "slicer", "sink",
        ]
    )
    g.add_edge("bits", "mapper", 1, 4)       # 4 bits -> 1 symbol
    g.add_edge("mapper", "splitI", 1, 1)
    g.add_edge("mapper", "splitQ", 1, 1)
    g.add_edge("splitI", "shapeI", 1, 1)
    g.add_edge("splitQ", "shapeQ", 1, 1)
    g.add_edge("shapeI", "mod", 8, 8)        # 1:8 interpolation
    g.add_edge("shapeQ", "mod", 8, 8)
    g.add_edge("mod", "chan", 1, 1)
    g.add_edge("chan", "demod", 1, 1)
    g.add_edge("demod", "matchI", 1, 1)
    g.add_edge("demod", "matchQ", 1, 1)
    g.add_edge("matchI", "agcI", 1, 8)       # 8:1 matched filter
    g.add_edge("matchQ", "agcQ", 1, 8)
    g.add_edge("agcI", "combine", 1, 1)
    g.add_edge("agcQ", "combine", 1, 1)
    g.add_edge("combine", "slicer", 4, 1)    # 1 symbol -> 4 bits
    g.add_edge("slicer", "sink", 1, 1)
    return g


def pam4_transmitter_receiver(name: str = "4pamxmitrec") -> SDFGraph:
    """A 4-PAM transmitter/receiver pair.

    2 bits per symbol, 1:8 transmit interpolation, fractionally spaced
    (2x) receive sampling with an 8:1 decimating equalizer chain.
    """
    g = SDFGraph(name)
    g.add_actors(
        [
            "bits", "enc", "shape", "dac", "chan",
            "adc", "frontend", "eq", "timing", "detect",
            "dec", "sink",
        ]
    )
    g.add_edge("bits", "enc", 1, 2)          # 2 bits -> 1 PAM symbol
    g.add_edge("enc", "shape", 1, 1)
    g.add_edge("shape", "dac", 8, 1)         # 1:8 pulse shaping
    g.add_edge("dac", "chan", 1, 1)
    g.add_edge("chan", "adc", 1, 1)
    g.add_edge("adc", "frontend", 1, 2)      # 2:1 front-end decimation
    g.add_edge("frontend", "eq", 1, 1)
    g.add_edge("eq", "timing", 1, 4)         # 4:1 timing recovery
    g.add_edge("timing", "detect", 1, 1)
    g.add_edge("detect", "dec", 2, 1)        # 1 symbol -> 2 bits
    g.add_edge("dec", "sink", 1, 1)
    return g


def block_vocoder(name: str = "blockVox") -> SDFGraph:
    """A block vocoder: LPC analysis of voice modulating a synthesizer.

    The paper describes it as "a system that modulates a synthesized
    music signal with vocal parameters".  Voice path: 100-sample frames
    -> LPC analysis producing a 10-coefficient parameter block and a
    gain value per frame.  Music path: synthesizer at sample rate.
    Synthesis: all-pole filter driven per-sample, parameters applied
    per-frame; about 25 actors like the original demo.
    """
    g = SDFGraph(name)
    g.add_actors(
        [
            "voice", "preemph", "frame", "window",
            "autocorr", "lpc", "coefq", "gain",
            "music", "tune", "excite",
            "deq", "interp", "filt", "deemph",
            "agc", "limit", "out",
            "pitch", "vuv", "mixer",
            "fmt1", "fmt2", "fmt3", "post",
        ]
    )
    # Voice analysis path: 100-sample frames -> 10 LPC coefficients.
    g.add_edge("voice", "preemph", 1, 1)
    g.add_edge("preemph", "frame", 1, 100)     # frame accumulation
    g.add_edge("frame", "window", 100, 100)
    g.add_edge("window", "autocorr", 100, 100)
    g.add_edge("autocorr", "lpc", 11, 11)      # 11 lags per frame
    g.add_edge("lpc", "coefq", 10, 10)         # 10 coefficients
    g.add_edge("lpc", "gain", 1, 1)            # 1 gain per frame
    g.add_edge("window", "pitch", 100, 100)    # pitch track per frame
    g.add_edge("pitch", "vuv", 1, 1)           # voiced/unvoiced flag

    # Music / excitation path at sample rate (100 firings per frame).
    g.add_edge("music", "tune", 1, 1)
    g.add_edge("tune", "excite", 1, 1)
    g.add_edge("vuv", "mixer", 1, 1)           # per-frame control
    g.add_edge("excite", "mixer", 1, 100)      # 100 samples per frame

    # Synthesis: parameters interpolated back to sample rate.
    g.add_edge("coefq", "deq", 10, 10)
    g.add_edge("deq", "interp", 10, 10)
    g.add_edge("interp", "filt", 100, 100)     # per-sample coefficient sets
    g.add_edge("mixer", "filt", 100, 100)      # one mixed frame per firing
    g.add_edge("gain", "agc", 1, 1)
    g.add_edge("filt", "deemph", 100, 1)       # back to sample rate
    g.add_edge("deemph", "limit", 1, 100)      # frame-level limiter
    g.add_edge("agc", "limit", 1, 1)
    g.add_edge("limit", "fmt1", 1, 1)
    g.add_edge("fmt1", "fmt2", 1, 1)
    g.add_edge("fmt2", "fmt3", 1, 1)
    g.add_edge("fmt3", "post", 1, 1)
    g.add_edge("post", "out", 100, 1)          # sample-rate output
    return g


def overlap_add_fft(name: str = "overAddFFT", block: int = 64) -> SDFGraph:
    """An overlap-add FFT filter: FFT on overlapped successive blocks.

    Blocks of ``2 * block`` samples advance by ``block`` samples (50%
    overlap): the blocker consumes ``block`` and produces ``2 * block``
    per firing; the adder performs the inverse.
    """
    g = SDFGraph(name)
    g.add_actors(
        [
            "src", "blocker", "fft", "spectrum", "scale",
            "ifft", "adder", "trim", "snk",
        ]
    )
    two = 2 * block
    g.add_edge("src", "blocker", 1, block)
    g.add_edge("blocker", "fft", two, two)
    g.add_edge("fft", "spectrum", two, two)
    g.add_edge("spectrum", "scale", two, two)
    g.add_edge("scale", "ifft", two, two)
    g.add_edge("ifft", "adder", two, two)
    g.add_edge("adder", "trim", block, block)
    g.add_edge("trim", "snk", block, 1)
    return g


def phased_array(name: str = "phasedArray", sensors: int = 6) -> SDFGraph:
    """A phased-array detector: per-sensor conditioning and beamforming.

    Each of ``sensors`` channels band-filters and 4:1 decimates its
    input; the beamformer consumes one sample from every channel per
    output sample; detection integrates 16 beamformer outputs per
    decision.
    """
    g = SDFGraph(name)
    g.add_actor("beam")
    for s in range(sensors):
        src, bp, dec = f"sens{s}", f"bp{s}", f"dec{s}"
        g.add_actors([src, bp, dec])
        g.add_edge(src, bp, 1, 1)
        g.add_edge(bp, dec, 1, 4)       # 4:1 decimation per channel
        g.add_edge(dec, "beam", 1, 1)
    g.add_actors(["mag", "integ", "thresh", "report"])
    g.add_edge("beam", "mag", 1, 1)
    g.add_edge("mag", "integ", 1, 16)   # 16:1 integration
    g.add_edge("integ", "thresh", 1, 1)
    g.add_edge("thresh", "report", 1, 1)
    return g
