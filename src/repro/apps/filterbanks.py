"""Filterbank benchmark graphs (paper figures 22–23, Table 1).

Two families:

* **Two-sided (uniform) QMF filterbanks** ``qmfPQ_kD`` (figure 23): a
  complete binary analysis tree of depth ``k`` followed by its mirror
  synthesis tree.  Each analysis split is three actors — an input
  conditioner and a decimating lowpass/highpass pair — and each
  synthesis merge is three — an interpolating pair and an adder.  The
  paper's node counts (20, 44 and 188 for depths 2, 3 and 5) satisfy
  ``6 * 2^depth - 4 = 6 * (2^depth - 1) + 2`` which fixes exactly this
  3 + 3 actors-per-split structure plus a source and a sink.

* **One-sided (octave / wavelet) filterbanks** ``nqmfPQ_kD`` (figure 22):
  only the lowpass branch is split recursively; the highpass branch of
  each level feeds the corresponding synthesis merge directly.

Rate-change variants (Table 1 naming):

* ``12``  — 1/2, 1/2 splits (lowpass and highpass each keep half);
* ``23``  — 1/3, 2/3 splits;
* ``235`` — 2/5, 3/5 splits.

A split with denominator ``P`` and numerators ``(p_lo, p_hi)`` uses a
decimating lowpass ``cons P / prod p_lo``, highpass ``cons P / prod
p_hi``, and the inverse interpolators on the synthesis side; this is
sample-rate consistent for any external rate.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph

__all__ = ["two_sided_filterbank", "one_sided_filterbank", "filterbank_by_name"]

#: Table 1 name fragment -> (p_lo, p_hi, P)
RATE_VARIANTS: Dict[str, Tuple[int, int, int]] = {
    "12": (1, 1, 2),
    "23": (1, 2, 3),
    "235": (2, 3, 5),
}


def two_sided_filterbank(
    depth: int, variant: str = "12", name: str = ""
) -> SDFGraph:
    """A two-sided QMF filterbank of the given depth (figure 23).

    ``variant`` selects the rate-change family (``"12"``, ``"23"``,
    ``"235"``).  The graph has ``6 * 2^depth - 4`` actors.

    Examples
    --------
    >>> two_sided_filterbank(2).num_actors
    20
    >>> two_sided_filterbank(5).num_actors
    188
    """
    p_lo, p_hi, P = _variant(variant)
    if depth < 1:
        raise GraphStructureError("filterbank depth must be >= 1")
    g = SDFGraph(name or f"qmf{variant}_{depth}d")
    g.add_actor("src")
    g.add_actor("snk")

    def build(level: int, tag: str, upstream: str, up_prod: int) -> str:
        """Create the split rooted at ``tag``; returns the actor whose
        output carries the reconstructed signal of this subtree.
        ``up_prod`` is the upstream actor's per-firing production onto
        this subtree's input edge."""
        pre = f"pre{tag}"
        lo = f"lo{tag}"
        hi = f"hi{tag}"
        ulo = f"ulo{tag}"
        uhi = f"uhi{tag}"
        add = f"add{tag}"
        for a in (pre, lo, hi, ulo, uhi, add):
            g.add_actor(a)
        g.add_edge(upstream, pre, up_prod, 1)
        g.add_edge(pre, lo, 1, P)
        g.add_edge(pre, hi, 1, P)
        if level + 1 < depth:
            # Child subtrees reconstruct their branch signal one token
            # per adder firing.
            lo_out = build(level + 1, tag + "L", lo, p_lo)
            hi_out = build(level + 1, tag + "H", hi, p_hi)
            g.add_edge(lo_out, ulo, 1, p_lo)
            g.add_edge(hi_out, uhi, 1, p_hi)
        else:
            g.add_edge(lo, ulo, p_lo, p_lo)
            g.add_edge(hi, uhi, p_hi, p_hi)
        g.add_edge(ulo, add, P, 1)
        g.add_edge(uhi, add, P, 1)
        return add

    root_out = build(0, "0", "src", 1)
    g.add_edge(root_out, "snk", 1, 1)
    return g


def one_sided_filterbank(
    depth: int, variant: str = "23", name: str = ""
) -> SDFGraph:
    """A one-sided (octave) filterbank of the given depth (figure 22).

    Only the lowpass branch splits recursively; each level's highpass
    branch feeds its synthesis merge directly.  ``6 * depth + 2``
    actors.

    Examples
    --------
    >>> one_sided_filterbank(4, "23").num_actors
    26
    """
    p_lo, p_hi, P = _variant(variant)
    if depth < 1:
        raise GraphStructureError("filterbank depth must be >= 1")
    g = SDFGraph(name or f"nqmf{variant}_{depth}d")
    g.add_actor("src")
    g.add_actor("snk")

    def build(level: int, upstream: str, up_prod: int) -> str:
        tag = str(level)
        pre = f"pre{tag}"
        lo = f"lo{tag}"
        hi = f"hi{tag}"
        ulo = f"ulo{tag}"
        uhi = f"uhi{tag}"
        add = f"add{tag}"
        for a in (pre, lo, hi, ulo, uhi, add):
            g.add_actor(a)
        g.add_edge(upstream, pre, up_prod, 1)
        g.add_edge(pre, lo, 1, P)
        g.add_edge(pre, hi, 1, P)
        if level + 1 < depth:
            lo_out = build(level + 1, lo, p_lo)
            g.add_edge(lo_out, ulo, 1, p_lo)
        else:
            g.add_edge(lo, ulo, p_lo, p_lo)
        g.add_edge(hi, uhi, p_hi, p_hi)
        g.add_edge(ulo, add, P, 1)
        g.add_edge(uhi, add, P, 1)
        return add

    root_out = build(0, "src", 1)
    g.add_edge(root_out, "snk", 1, 1)
    return g


def filterbank_by_name(name: str) -> SDFGraph:
    """Construct a filterbank from its Table 1 name.

    ``qmf<variant>_<depth>d`` for two-sided, ``nqmf<variant>_<depth>d``
    for one-sided, e.g. ``"qmf23_2d"``, ``"nqmf23_4d"``, ``"qmf235_5d"``.
    """
    text = name.strip()
    one_sided = text.startswith("nqmf")
    rest = text[4:] if one_sided else text[3:]
    if not text.startswith(("qmf", "nqmf")) or "_" not in rest:
        raise GraphStructureError(f"unrecognized filterbank name {name!r}")
    variant, _, depth_part = rest.partition("_")
    if not depth_part.endswith("d"):
        raise GraphStructureError(f"unrecognized filterbank name {name!r}")
    depth = int(depth_part[:-1])
    if one_sided:
        return one_sided_filterbank(depth, variant, name=text)
    return two_sided_filterbank(depth, variant, name=text)


def _variant(variant: str) -> Tuple[int, int, int]:
    try:
        return RATE_VARIANTS[variant]
    except KeyError:
        raise GraphStructureError(
            f"unknown rate variant {variant!r}; "
            f"expected one of {sorted(RATE_VARIANTS)}"
        ) from None
