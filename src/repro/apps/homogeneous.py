"""The homogeneous sharing example of figure 26 (paper section 10.2).

A source fans out to ``M`` parallel chains of ``N`` actors each, which
fan back into a sink; every rate is 1.  No matter what the schedule is,
at most ``M + 1`` tokens are ever live, so a shared implementation needs
``M + 1`` words — while a non-shared implementation needs one word per
edge: ``M (N - 1) + 2 M`` (each chain's ``N - 1`` internal edges plus
the source and sink edges).

The paper reports that the complete technique suite allocates exactly
``M + 1`` units for any ``M`` and ``N``; the depth-first chain-by-chain
lexical order achieves this bound (see
:func:`depth_first_order`), and the experiment harness checks how close
RPMC/APGAN get on their own.
"""

from __future__ import annotations

from typing import List

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph

__all__ = [
    "homogeneous_graph",
    "depth_first_order",
    "shared_lower_bound",
    "nonshared_requirement",
]


def homogeneous_graph(m: int, n: int, token_size: int = 1) -> SDFGraph:
    """The figure 26 graph: ``M`` chains of ``N`` actors between src and snk.

    ``token_size > 1`` models the paper's remark that savings grow when
    vectors or matrices are exchanged instead of scalars.

    Examples
    --------
    >>> g = homogeneous_graph(3, 4)
    >>> g.num_actors
    14
    >>> g.num_edges   # M*(N-1) + 2*M
    15
    """
    if m < 1 or n < 1:
        raise GraphStructureError("homogeneous_graph requires m, n >= 1")
    g = SDFGraph(f"homogeneous_m{m}_n{n}")
    g.add_actor("src")
    g.add_actor("snk")
    for row in range(m):
        names = [f"c{row}_{col}" for col in range(n)]
        for a in names:
            g.add_actor(a)
        g.add_edge("src", names[0], 1, 1, token_size=token_size)
        for u, v in zip(names, names[1:]):
            g.add_edge(u, v, 1, 1, token_size=token_size)
        g.add_edge(names[-1], "snk", 1, 1, token_size=token_size)
    return g


def depth_first_order(graph: SDFGraph) -> List[str]:
    """The chain-by-chain lexical order that achieves ``M + 1`` words.

    ``src`` first, then each chain in full, then ``snk``; with sharing,
    only one chain's pipeline token plus the other chains' head tokens
    are live at once.
    """
    order = ["src"]
    rows: List[List[str]] = []
    for a in graph.actor_names():
        if a in ("src", "snk"):
            continue
        row, col = (int(p) for p in a[1:].split("_"))
        while len(rows) <= row:
            rows.append([])
        rows[row].append(a)
    for row in rows:
        order.extend(sorted(row, key=lambda s: int(s.split("_")[1])))
    order.append("snk")
    return order


def shared_lower_bound(m: int, n: int, token_size: int = 1) -> int:
    """``M + 1`` words: the live-token bound of section 10.2."""
    return (m + 1) * token_size


def nonshared_requirement(m: int, n: int, token_size: int = 1) -> int:
    """``M (N - 1) + 2 M`` words: one buffer per edge."""
    return (m * (n - 1) + 2 * m) * token_size
