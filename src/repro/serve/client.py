"""Batch client for a running ``repro serve`` instance (stdlib only).

``repro submit`` is a thin ``urllib`` wrapper over the server's JSON
endpoints: it resolves each argument to a graph document (built-in
system name or ``.json`` file), posts one ``/compile`` request per
graph (or a single ``/batch`` request), and prints or saves the
returned :class:`~repro.serve.report.CompilationReport`s.  Transport
failures raise :class:`ServeClientError` with the server's one-line
``error`` message when it sent one, so CLI users see the 429/503/504
reason rather than a traceback.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from .report import CompilationReport
from .server import DEFAULT_PORT

__all__ = [
    "DEFAULT_URL",
    "ServeClientError",
    "compile_remote",
    "compile_batch_remote",
    "get_json",
]

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"


class ServeClientError(RuntimeError):
    """A request the server refused or could not complete.

    ``status`` carries the HTTP status code (0 when the server was
    unreachable); the message is the server's ``error`` string when
    available.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


def _post(
    url: str, path: str, payload: Dict[str, Any],
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except (ValueError, OSError):
            pass
        raise ServeClientError(
            detail or f"server returned HTTP {exc.code}", status=exc.code
        ) from None
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServeClientError(
            f"cannot reach compile server at {url}: "
            f"{getattr(exc, 'reason', exc)}"
        ) from None


def get_json(
    url: str, path: str, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """GET a JSON endpoint (``/healthz``, ``/stats``)."""
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + path, timeout=timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            raise ServeClientError(
                f"server returned HTTP {exc.code}", status=exc.code
            ) from None
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServeClientError(
            f"cannot reach compile server at {url}: "
            f"{getattr(exc, 'reason', exc)}"
        ) from None


def compile_remote(
    document: Dict[str, Any],
    url: str = DEFAULT_URL,
    options: Optional[Dict[str, Any]] = None,
    use_cache: bool = True,
    timeout: Optional[float] = None,
) -> Tuple[CompilationReport, str]:
    """Submit one graph document; returns ``(report, cache_status)``."""
    payload = {
        "graph": document,
        "options": dict(options or {}),
        "cache": use_cache,
    }
    response = _post(url, "/compile", payload, timeout=timeout)
    return (
        CompilationReport.from_json(response["report"]),
        response["status"],
    )


def compile_batch_remote(
    documents: List[Dict[str, Any]],
    url: str = DEFAULT_URL,
    options: Optional[Dict[str, Any]] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[Tuple[CompilationReport, str]]:
    """Submit many documents in one ``/batch`` request, request order."""
    payload: Dict[str, Any] = {
        "graphs": list(documents),
        "options": dict(options or {}),
        "cache": use_cache,
    }
    if jobs is not None:
        payload["jobs"] = jobs
    response = _post(url, "/batch", payload, timeout=timeout)
    return [
        (CompilationReport.from_json(item["report"]), item["status"])
        for item in response["responses"]
    ]
