"""Batch client for a running ``repro serve`` instance (stdlib only).

``repro submit`` is a thin ``urllib`` wrapper over the server's JSON
endpoints: it resolves each argument to a graph document (built-in
system name or ``.json`` file), posts one ``/compile`` request per
graph (or a single ``/batch`` request), and prints or saves the
returned :class:`~repro.serve.report.CompilationReport`s.  Transport
failures raise :class:`ServeClientError` with the server's one-line
``error`` message when it sent one, so CLI users see the 429/503/504
reason rather than a traceback.

Backpressure is cooperative: a loaded (429) or momentarily degraded
(503, e.g. a farm worker being respawned) server is asking the client
to come back, not to give up.  With ``retries > 0`` the client obeys:
it sleeps for the server's ``Retry-After`` header when present (else
exponential backoff), jittered to avoid retry stampedes and capped at
:data:`RETRY_CAP_S`, then resubmits — up to ``retries`` extra
attempts.  The default stays 0 (fail fast, the pre-farm behavior).
"""

from __future__ import annotations

import email.utils
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple, Union

from .report import CompilationReport
from .server import DEFAULT_PORT

__all__ = [
    "DEFAULT_URL",
    "RETRY_CAP_S",
    "RETRY_STATUSES",
    "BatchItemError",
    "ServeClientError",
    "compile_remote",
    "compile_batch_remote",
    "get_json",
    "resize_remote",
]

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"

#: Statuses worth retrying: the server said "busy" (429) or "briefly
#: degraded" (503).  400s are the request's fault and 504 means the
#: compile itself is slow — retrying either wastes a server slot.
RETRY_STATUSES = (429, 503)

#: Upper bound on any single retry sleep, whatever Retry-After says.
RETRY_CAP_S = 8.0

#: First backoff step when the server sent no Retry-After header.
RETRY_BASE_S = 0.25

# Test seams: the retry tests replace these to run instantly and
# deterministically without patching the stdlib.
_sleep = time.sleep
_jitter = random.random


class BatchItemError:
    """One failed item of a ``/batch`` response.

    The server isolates item failures — a malformed document or a
    worker crash costs that item an error entry, not the whole batch —
    and :func:`compile_batch_remote` surfaces each as a
    ``(BatchItemError, "error")`` pair in its slot, preserving request
    order alongside the successful reports.
    """

    __slots__ = ("message", "code")

    def __init__(self, message: str, code: int = 500) -> None:
        self.message = message
        self.code = code

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchItemError(code={self.code}, message={self.message!r})"


class ServeClientError(RuntimeError):
    """A request the server refused or could not complete.

    ``status`` carries the HTTP status code (0 when the server was
    unreachable); the message is the server's ``error`` string when
    available.  ``retry_after`` is the parsed ``Retry-After`` header
    in seconds when the server sent one.
    """

    def __init__(
        self, message: str, status: int = 0,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _parse_retry_after(header: Optional[str]) -> Optional[float]:
    """``Retry-After`` in seconds, or ``None`` when unusable.

    RFC 9110 allows two forms: delta-seconds (``"2"``) and an
    HTTP-date (``"Wed, 21 Oct 2026 07:28:00 GMT"``).  Both parse to a
    non-negative sleep; anything else — empty, garbage, a date with no
    timezone — returns ``None`` so the retry loop falls back to
    exponential backoff instead of raising mid-retry.
    """
    if header is None:
        return None
    header = header.strip()
    try:
        return max(0.0, float(header))
    except (TypeError, ValueError):
        pass
    try:
        when = email.utils.parsedate_to_datetime(header)
    except (TypeError, ValueError, OverflowError):
        return None
    if when is None or when.tzinfo is None:
        return None
    now = email.utils.parsedate_to_datetime(
        email.utils.formatdate(time.time(), usegmt=True)
    )
    return max(0.0, (when - now).total_seconds())


def _post(
    url: str, path: str, payload: Dict[str, Any],
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except (ValueError, OSError):
            pass
        retry_after = _parse_retry_after(
            exc.headers.get("Retry-After") if exc.headers else None
        )
        raise ServeClientError(
            detail or f"server returned HTTP {exc.code}",
            status=exc.code, retry_after=retry_after,
        ) from None
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServeClientError(
            f"cannot reach compile server at {url}: "
            f"{getattr(exc, 'reason', exc)}"
        ) from None


def _post_retrying(
    url: str, path: str, payload: Dict[str, Any],
    timeout: Optional[float] = None, retries: int = 0,
) -> Dict[str, Any]:
    """:func:`_post`, resubmitting on 429/503 up to ``retries`` times.

    Sleep per attempt: the server's ``Retry-After`` when sent, else
    ``RETRY_BASE_S * 2**attempt``; capped at :data:`RETRY_CAP_S`, then
    scaled by a 50–100% jitter factor so a burst of rejected clients
    does not return in lockstep.  The final failure is re-raised
    unchanged.
    """
    attempt = 0
    while True:
        try:
            return _post(url, path, payload, timeout=timeout)
        except ServeClientError as exc:
            if attempt >= retries or exc.status not in RETRY_STATUSES:
                raise
            delay = (
                exc.retry_after
                if exc.retry_after is not None
                else RETRY_BASE_S * (2 ** attempt)
            )
            delay = min(delay, RETRY_CAP_S) * (0.5 + 0.5 * _jitter())
            if delay > 0:
                _sleep(delay)
            attempt += 1


def get_json(
    url: str, path: str, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """GET a JSON endpoint (``/healthz``, ``/stats``)."""
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + path, timeout=timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            raise ServeClientError(
                f"server returned HTTP {exc.code}", status=exc.code
            ) from None
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ServeClientError(
            f"cannot reach compile server at {url}: "
            f"{getattr(exc, 'reason', exc)}"
        ) from None


def compile_remote(
    document: Dict[str, Any],
    url: str = DEFAULT_URL,
    options: Optional[Dict[str, Any]] = None,
    use_cache: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> Tuple[CompilationReport, str]:
    """Submit one graph document; returns ``(report, cache_status)``.

    ``retries`` extra attempts are made on 429/503, honoring the
    server's ``Retry-After`` (see :func:`_post_retrying`).
    """
    payload = {
        "graph": document,
        "options": dict(options or {}),
        "cache": use_cache,
    }
    response = _post_retrying(
        url, "/compile", payload, timeout=timeout, retries=retries
    )
    return (
        CompilationReport.from_json(response["report"]),
        response["status"],
    )


def compile_batch_remote(
    documents: List[Dict[str, Any]],
    url: str = DEFAULT_URL,
    options: Optional[Dict[str, Any]] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[Tuple[Union[CompilationReport, BatchItemError], str]]:
    """Submit many documents in one ``/batch`` request, request order.

    ``retries`` behaves as in :func:`compile_remote`; a whole-batch
    429/503 is retried as a unit (the server processes batches
    atomically, so no duplicate partial work results).  Failed items
    come back as ``(BatchItemError, "error")`` in their slot — the
    server isolates per-item failures rather than failing the batch.
    """
    payload: Dict[str, Any] = {
        "graphs": list(documents),
        "options": dict(options or {}),
        "cache": use_cache,
    }
    if jobs is not None:
        payload["jobs"] = jobs
    response = _post_retrying(
        url, "/batch", payload, timeout=timeout, retries=retries
    )
    results: List[Tuple[Union[CompilationReport, BatchItemError], str]] = []
    for item in response["responses"]:
        if item.get("status") == "error" or "report" not in item:
            results.append((
                BatchItemError(
                    str(item.get("error", "unknown batch item failure")),
                    code=int(item.get("code", 500)),
                ),
                "error",
            ))
        else:
            results.append((
                CompilationReport.from_json(item["report"]),
                item["status"],
            ))
    return results


def resize_remote(
    workers: int,
    url: str = DEFAULT_URL,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """``POST /resize`` — live-resize the server's compile farm.

    Returns the post-resize farm description (``previous``, ``size``,
    ``added``, ``removed``, alive/restart figures).  A server without
    a farm (``--workers 0``) refuses with a 400, surfaced as
    :class:`ServeClientError`.
    """
    return _post(
        url, "/resize", {"workers": int(workers)}, timeout=timeout
    )
