"""Compilation as a service: content-addressed caching over the pipeline.

The one-shot CLI (``repro compile``) reruns the full
schedule/allocation flow on every invocation.  This package turns the
same :func:`~repro.scheduling.pipeline.implement` machinery into a
long-running, cache-fronted service:

:mod:`repro.serve.cache`
    :class:`ArtifactCache` — a content-addressed on-disk store of
    :class:`CompilationReport` payloads, keyed by
    :func:`~repro.serve.cache.cache_key` (SHA-256 of the canonical
    graph document + strategy options + package version).  Atomic
    writes, hash-verified reads, corrupt entries evicted and
    recomputed rather than served.  ``repro cache {stats,gc,clear}``.

:mod:`repro.serve.report`
    :class:`CompilationReport` — the plain-data projection of an
    ``ImplementationResult`` that travels over HTTP and into the
    cache, with a :meth:`~CompilationReport.canonical` form for
    bit-identity comparisons.

:mod:`repro.serve.service`
    :class:`CompileService` — transport-independent cache-then-compile
    core with a per-graph :class:`CompilationSession` LRU and a
    :func:`~repro.experiments.runner.parallel_map` batch path.

:mod:`repro.serve.farm`
    :class:`WorkerFarm` — a supervised pool of compile worker
    *processes*, sharded by graph content digest with rendezvous
    hashing (:func:`~repro.serve.farm.rendezvous_shard`) so each
    worker's session LRU and in-memory report tier stay hot.  Crashed
    workers are respawned; their in-flight request fails with a
    one-line 503 rather than hanging.

:mod:`repro.serve.server`
    :class:`CompileServer` — the ``repro serve`` JSON-over-HTTP
    front end (stdlib ``http.server``): compile farm or in-process
    thread pool, single-flight coalescing of identical concurrent
    requests, bounded queue with 429 backpressure, per-request
    timeouts, latency percentiles on ``/stats``, graceful SIGTERM
    drain, per-request ``repro.obs`` spans (including farm-worker
    subtrees) exported through the Chrome-trace path.

:mod:`repro.serve.client`
    ``repro submit`` — submit one or many graphs to a running server
    and print/save the reports.

Quickstart::

    $ repro serve --port 8177 &
    $ repro submit cddat                 # cold: compiles, fills cache
    $ repro submit cddat                 # warm: served from cache,
                                         # bit-identical, >=10x faster

The cache can be disabled end to end (``repro serve --no-cache``,
``repro submit --no-cache``, ``CompileService(cache=None)``), in which
case the service's outputs are bit-identical to the direct pipeline.
"""

from .cache import ArtifactCache, cache_key, default_cache_dir
from .client import (
    DEFAULT_URL,
    BatchItemError,
    ServeClientError,
    compile_batch_remote,
    compile_remote,
    get_json,
    resize_remote,
)
from .farm import (
    FarmError,
    FarmRequestError,
    FarmTimeout,
    FarmWorkerCrashed,
    WorkerFarm,
    rendezvous_shard,
)
from .report import CompilationReport
from .server import DEFAULT_PORT, CompileServer
from .service import CompileOptions, CompileService

__all__ = [
    "ArtifactCache",
    "cache_key",
    "default_cache_dir",
    "BatchItemError",
    "CompilationReport",
    "CompileOptions",
    "CompileService",
    "CompileServer",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "FarmError",
    "FarmRequestError",
    "FarmTimeout",
    "FarmWorkerCrashed",
    "ServeClientError",
    "WorkerFarm",
    "compile_remote",
    "compile_batch_remote",
    "get_json",
    "rendezvous_shard",
    "resize_remote",
]
