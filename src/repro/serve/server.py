"""JSON-over-HTTP front end for the compilation service (stdlib only).

``repro serve`` wraps a :class:`~repro.serve.service.CompileService`
in a :class:`http.server.ThreadingHTTPServer`.  The design goals, in
order: never corrupt a result, shed load explicitly, drain cleanly.

* **Compile farm** — with ``processes > 0`` compilations run on a
  :class:`~repro.serve.farm.WorkerFarm` of worker *processes*;
  requests are sharded by graph content digest (rendezvous hashing)
  so each worker's session LRU and in-memory report tier stay hot.
  The connection thread talks straight to its shard's pipe — no
  intermediate queue hop.  With ``processes = 0`` (the default and
  the pre-farm behavior) compilations run on a bounded
  ``ThreadPoolExecutor`` (``workers`` threads) in-process.
* **Farm-aware batch** — with a farm, ``/batch`` routes *through* it:
  every item is sharded by its own graph digest, shard groups run
  concurrently (items within a shard in order, so each worker's
  caches stay hot), each item reuses the per-item single-flight and
  all three cache tiers, and item failures are isolated — one
  malformed document or one worker crash costs that *item* an error
  entry, never the whole batch.  Responses come back in request
  order, success items spliced verbatim from the workers' rendered
  bytes.  Without a farm ``/batch`` keeps the in-process
  ``parallel_map`` fan-out, now with the same per-item isolation.
* **Live resizing** — ``POST /resize`` ``{"workers": N}`` grows or
  shrinks the farm without a restart: added workers are spawned
  supervised, removed workers drain (finish in-flight work, ship
  final counters) before shutdown, and rendezvous hashing moves only
  ~1/N of the key space.  The body memo is flushed so routing follows
  the new pool immediately.
* **Single-flight** — concurrent identical cache-enabled ``/compile``
  requests coalesce: the first becomes the leader and compiles; the
  rest wait and receive the leader's bytes verbatim (counted under
  ``coalesced``, not as extra hits/misses).  A cold-cache stampede
  compiles once, not N times.
* **Bounded queue / backpressure** — at most ``queue_limit`` requests
  may be queued or running; one more gets an immediate ``429`` with a
  ``Retry-After`` header instead of unbounded buffering.  Load the
  server cannot take is the *client's* signal to back off.
* **Per-request timeout** — a request that outlives
  ``request_timeout`` seconds gets ``504``.  On the farm path the
  overdue worker is killed and respawned, so a hung compile cannot
  wedge its shard; on the thread path the worker slot is reclaimed
  when the underlying job finishes.
* **Supervision** — a farm worker that crashes mid-request fails that
  request with a one-line ``503`` (never a hang) and is respawned
  immediately; a worker that dies idle is respawned by the farm's
  supervisor thread, so ``/healthz`` recovers without traffic.
* **Graceful drain** — :meth:`CompileServer.drain` (wired to SIGTERM
  by the CLI) stops accepting new work (``503`` while draining),
  waits for in-flight requests, stops the farm, writes the
  accumulated trace, and returns; ``repro serve`` then exits 0.
* **Observability** — with ``trace_path`` set, every request records
  a ``serve.request`` span tree.  Farm workers record into their own
  recorders and ship the serialized tree back over the pipe; the
  front end grafts it under the request span, so one merged
  Chrome-trace file covers the whole pool.  ``/stats`` reports
  latency percentiles (p50/p95/p99 over a sliding window) and
  per-worker counters alongside the existing cache figures.

Endpoints
---------
``GET /healthz``
    ``{"status": "ok" | "draining"}`` (200 / 503); with a farm, also
    a ``farm`` object (size, alive, restarts).
``GET /stats``
    Server counters, latency percentiles, cache stats, farm stats.
``POST /compile``
    ``{"graph": <to_json document>, "options": {...}, "cache": true}``
    → ``{"status": "hit"|"miss"|"disabled", "report": {...}}``.
``POST /batch``
    ``{"graphs": [<document>, ...], "options": {...}, "jobs": N}``
    → ``{"responses": [{"status": ..., "report": ...}, ...]}`` in
    request order.  A failed item is ``{"status": "error", "code":
    <http-equivalent>, "error": "..."}`` with the other items intact.
``POST /resize``
    ``{"workers": N}`` → the post-resize farm description (400 when
    no farm is configured).

Error responses are ``{"error": "..."}`` with status 400 (malformed
request), 404 (unknown path), 429 (queue full), 503 (draining or
worker crash), 504 (timeout), or 500 (unexpected failure).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import SDFError
from ..sdf.io import canonical_hash
from .cache import cache_key
from .farm import (
    FarmError,
    FarmRequestError,
    FarmTimeout,
    FarmWorkerCrashed,
    WorkerFarm,
)
from .service import CompileOptions, CompileService

__all__ = ["CompileServer", "DEFAULT_PORT"]

DEFAULT_PORT = 8177

#: Longest a coalesced follower will wait on its leader when no
#: ``request_timeout`` is configured.  The leader always publishes a
#: result (its error paths run under ``finally``), so this bound only
#: matters if the leader thread is destroyed mid-request.
_SINGLE_FLIGHT_CAP_S = 600.0

#: Body-memo limits: requests larger than this, or beyond this many
#: distinct bodies, are parsed every time instead of cached.
_MEMO_MAX_BODY = 1 << 20
_MEMO_MAX_ENTRIES = 512


class _FastHeaders:
    """Case-insensitive header lookup over a plain dict.

    Stands in for the ``email.message.Message`` that
    ``http.client.parse_headers`` would build — the full MIME parser
    costs ~100µs per request, an order of magnitude more than every
    other per-request step combined, for headers we only ever ``get``.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Dict[str, str]) -> None:
        self._fields = fields

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self._fields.get(name.lower(), default)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning :class:`CompileServer`."""

    protocol_version = "HTTP/1.1"
    # Keep-alive clients on loopback otherwise hit the Nagle +
    # delayed-ACK interaction: each response stalls ~40ms waiting for
    # the client's ACK before the final segment leaves.  TCP_NODELAY
    # on the server socket (client-side alone is not enough) takes
    # warm round trips from ~23/s to thousands/s.
    disable_nagle_algorithm = True

    _STATUS_LINES = {
        code: f"HTTP/1.1 {code} {msg[0]}\r\n".encode("latin-1")
        for code, msg in BaseHTTPRequestHandler.responses.items()
    }

    @property
    def _owner(self) -> "CompileServer":
        return self.server.owner  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if not self._owner.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def handle_one_request(self) -> None:
        """One request off the wire, with lean header parsing.

        Replaces the stock implementation only to avoid routing the
        header block through ``email.feedparser``; request-line
        handling, error codes, and keep-alive semantics match
        ``BaseHTTPRequestHandler``.
        """
        try:
            self.raw_requestline = self.rfile.readline(65537)
            if len(self.raw_requestline) > 65536:
                self.requestline = ""
                self.request_version = ""
                self.command = ""
                self.send_error(414)
                return
            if not self.raw_requestline:
                self.close_connection = True
                return
            if not self._parse_fast():
                return
            mname = "do_" + self.command
            if not hasattr(self, mname):
                self.send_error(
                    501, f"Unsupported method ({self.command!r})"
                )
                return
            getattr(self, mname)()
            self.wfile.flush()
        except TimeoutError as exc:  # pragma: no cover - socket timeout
            self.log_error("Request timed out: %r", exc)
            self.close_connection = True

    def _parse_fast(self) -> bool:
        """Parse request line + headers; False means already replied."""
        self.command = ""
        self.request_version = version = "HTTP/0.9"
        self.close_connection = True
        requestline = self.raw_requestline.decode("iso-8859-1")
        self.requestline = requestline = requestline.rstrip("\r\n")
        words = requestline.split()
        if len(words) == 3:
            command, path, version = words
            if version not in ("HTTP/1.0", "HTTP/1.1"):
                self.send_error(
                    505, f"Invalid HTTP version ({version[5:]})"
                )
                return False
        elif len(words) == 2:
            command, path = words
            if command != "GET":
                self.send_error(
                    400, f"Bad HTTP/0.9 request type ({command!r})"
                )
                return False
        else:
            self.send_error(400, f"Bad request syntax ({requestline!r})")
            return False
        self.command, self.path, self.request_version = (
            command, path, version
        )
        fields: Dict[str, str] = {}
        while True:
            line = self.rfile.readline(65537)
            if len(line) > 65536:
                self.send_error(431, "Header line too long")
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            if len(fields) >= 100:
                self.send_error(431, "Too many headers")
                return False
            name, sep, value = line.decode("iso-8859-1").partition(":")
            if not sep:
                self.send_error(
                    400, f"Bad header line ({line!r})"
                )
                return False
            fields[name.strip().lower()] = value.strip()
        self.headers = _FastHeaders(fields)  # type: ignore[assignment]
        conntype = fields.get("connection", "").lower()
        if version == "HTTP/1.1":
            self.close_connection = "close" in conntype
        else:
            self.close_connection = "keep-alive" not in conntype
        if (
            fields.get("expect", "").lower() == "100-continue"
            and version == "HTTP/1.1"
        ):
            self.wfile.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        return True

    def _reply_bytes(
        self, code: int, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # One buffer, one write: status line, headers, and body leave
        # in a single syscall/TCP segment instead of three.
        parts = [
            self._STATUS_LINES.get(
                code, f"HTTP/1.1 {code} Response\r\n".encode("latin-1")
            ),
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode("latin-1")
            + b"\r\n",
        ]
        for name, value in (headers or {}).items():
            parts.append(f"{name}: {value}\r\n".encode("latin-1"))
        if self.close_connection:
            parts.append(b"Connection: close\r\n")
        parts.append(b"\r\n")
        parts.append(body)
        self.wfile.write(b"".join(parts))
        if not self._owner.quiet:
            self.log_request(code, len(body))

    def _reply(
        self, code: int, payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._reply_bytes(
            code, json.dumps(payload).encode("utf-8"), headers
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        owner = self._owner
        if self.path == "/healthz":
            payload: Dict[str, Any] = {
                "status": "draining" if owner.draining else "ok"
            }
            if owner.farm is not None:
                payload["farm"] = owner.farm.describe()
            self._reply(503 if owner.draining else 200, payload)
        elif self.path == "/stats":
            self._reply(200, owner.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        owner = self._owner
        if self.path not in ("/compile", "/batch", "/resize"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        code, body, headers = owner.handle_raw(self.path, raw)
        self._reply_bytes(code, body, headers)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    owner: "CompileServer"


class _Memo:
    """Parsed-and-routed form of one distinct ``/compile`` body."""

    __slots__ = ("request", "key", "shard")

    def __init__(
        self, request: Dict[str, Any], key: str, shard: int
    ) -> None:
        self.request = request
        self.key = key
        self.shard = shard


class _Flight:
    """Single-flight rendezvous: leader publishes, followers wait."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Tuple[int, bytes, Dict[str, str]]] = None


#: One-line payload shapes quoted by missing-field errors, so a 400
#: tells the client exactly what to send instead of a bare KeyError.
_PAYLOAD_SHAPES = {
    "/compile": '{"graph": <to_json document>, "options": {...}, '
                '"cache": true}',
    "/batch": '{"graphs": [<to_json document>, ...], "options": {...}, '
              '"cache": true}',
    "/resize": '{"workers": N}',
}


def _require(request: Dict[str, Any], field: str, path: str) -> Any:
    """``request[field]`` with an actionable one-line error on absence."""
    try:
        return request[field]
    except KeyError:
        raise ValueError(
            f"missing required field '{field}': POST {path} expects "
            f"{_PAYLOAD_SHAPES[path]}"
        ) from None


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class CompileServer:
    """The long-running ``repro serve`` process (see module docstring).

    Parameters
    ----------
    service:
        The :class:`CompileService` handling actual compilation (the
        thread path and ``/batch``; farm workers build their own
        service instances over the same cache directory).
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port
        (``.port`` reports the bound one).
    workers:
        Worker-pool *threads* executing in-process compilations
        (``/batch`` always; ``/compile`` when ``processes == 0``).
    processes:
        Farm size: worker *processes* serving ``/compile`` requests,
        sharded by content digest.  0 (default) disables the farm.
    shard_by:
        ``"digest"`` (graph content hash) or ``"key"`` (full cache
        key) — see :class:`~repro.serve.farm.WorkerFarm`.
    mem_entries:
        Per-farm-worker in-memory report tier capacity.
    allow_faults:
        Honor test-only ``"fault"`` request fields in farm workers
        (never set by the CLI).
    queue_limit:
        Maximum queued-plus-running requests before ``429``.
    request_timeout:
        Seconds a request may take before ``504`` (``None``: no limit).
    trace_path / trace_format:
        When set, per-request span trees (including farm-worker
        subtrees) are recorded and written here (Chrome traceEvents
        by default) at drain time.
    quiet:
        Suppress per-request access logging.
    """

    def __init__(
        self,
        service: Optional[CompileService] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        processes: int = 0,
        shard_by: str = "digest",
        mem_entries: int = 512,
        allow_faults: bool = False,
        queue_limit: int = 8,
        request_timeout: Optional[float] = None,
        trace_path: Optional[str] = None,
        trace_format: str = "auto",
        quiet: bool = False,
    ) -> None:
        self.service = service or CompileService()
        self.workers = max(1, workers)
        self.queue_limit = max(1, queue_limit)
        self.request_timeout = request_timeout
        self.trace_path = trace_path
        self.trace_format = trace_format
        self.quiet = quiet
        self.draining = False
        self._lock = threading.Lock()
        self._inflight = 0
        self._counters = {
            "requests": 0, "hits": 0, "misses": 0, "compiled": 0,
            "rejected": 0, "timeouts": 0, "errors": 0,
            "coalesced": 0, "worker_failures": 0,
            "timeout_reclaimed": 0,
        }
        self._latencies: "deque[float]" = deque(maxlen=2048)
        self._trace_trees: List[Dict[str, Any]] = []
        self._memo: "OrderedDict[str, _Memo]" = OrderedDict()
        #: Batch plans by body SHA-256: the /batch analogue of
        #: ``_memo`` — a repeated identical batch body skips the JSON
        #: parse and both canonical-hash passes per item.
        self._batch_memo: "OrderedDict[str, List[Tuple[str, Any]]]" = (
            OrderedDict()
        )
        self._memo_lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self._flight_lock = threading.Lock()
        self.farm: Optional[WorkerFarm] = None
        if processes > 0:
            cache_root = (
                self.service.cache.root
                if self.service.cache is not None else None
            )
            self.farm = WorkerFarm(
                size=processes,
                cache_root=cache_root,
                shard_by=shard_by,
                mem_entries=mem_entries,
                max_sessions=self.service.max_sessions,
                allow_faults=allow_faults,
            ).start()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        #: Shard-group dispatch for the farm /batch path.  A persistent
        #: pool: spawning one Thread per shard group per POST costs more
        #: than the warm dispatch it parallelizes.  run_group never
        #: re-submits, so a bounded pool cannot deadlock.
        self._batch_pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=8, thread_name_prefix="repro-batch"
            )
            if self.farm is not None else None
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.owner = self
        self._thread: Optional[threading.Thread] = None

    # -- addressing -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "CompileServer":
        """Serve on a background thread (tests, smoke harness)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`drain` (CLI path)."""
        self._httpd.serve_forever()

    def drain(self, timeout: float = 60.0) -> None:
        """Stop accepting work, finish in-flight requests, shut down.

        Idempotent.  New requests observe ``draining`` and get 503
        immediately; existing ones run to completion (bounded by
        ``timeout`` seconds of waiting).  The farm is stopped after
        the queue empties; the accumulated trace, if any, is written
        last so it includes every completed request.
        """
        with self._lock:
            if self.draining:
                return
            self.draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        self._pool.shutdown(wait=True)
        if self._batch_pool is not None:
            self._batch_pool.shutdown(wait=True)
        if self.farm is not None:
            self.farm.stop()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._write_trace()

    # -- request handling -----------------------------------------------
    def handle_raw(
        self, path: str, raw: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One POST body straight off the socket → response bytes.

        ``/compile`` and ``/batch`` with a farm take the fast path:
        memoized parse and routing, single-flight coalescing, direct
        pipe dispatch on the connection thread(s).  ``/resize``
        reconfigures the farm.  Everything else goes through the
        legacy parse-then-:meth:`handle` flow.
        """
        if self.draining:
            return self._err(503, "server is draining")
        start = time.perf_counter()
        try:
            if path == "/resize":
                return self._handle_resize(raw)
            if self.farm is not None:
                if path == "/compile":
                    return self._handle_farm(raw)
                if path == "/batch":
                    return self._handle_batch_farm(raw)
            try:
                request = json.loads(raw or b"{}")
                if not isinstance(request, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as exc:
                return self._err(400, f"malformed request: {exc}")
            code, payload, headers = self.handle(path, request)
            return code, json.dumps(payload).encode("utf-8"), headers
        finally:
            self._latencies.append(time.perf_counter() - start)

    @staticmethod
    def _err(
        code: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, bytes, Dict[str, str]]:
        return (
            code,
            json.dumps({"error": message}).encode("utf-8"),
            headers or {},
        )

    def _parse_compile(self, raw: bytes) -> _Memo:
        """Parse + route one ``/compile`` body, memoized on its bytes.

        A repeated identical body (the warm hot path) costs one
        SHA-256 and a dict probe instead of a JSON parse, an options
        validation, and two canonical-JSON hashes.
        """
        body_id = hashlib.sha256(raw).hexdigest()
        with self._memo_lock:
            memo = self._memo.get(body_id)
            if memo is not None:
                self._memo.move_to_end(body_id)
                return memo
        request = json.loads(raw or b"{}")
        if not isinstance(request, dict):
            raise ValueError("request body must be a JSON object")
        options = CompileOptions.from_dict(request.get("options"))
        document = _require(request, "graph", "/compile")
        caching = (
            bool(request.get("cache", True))
            and self.service.cache is not None
        )
        key = cache_key(document, options.key_dict()) if caching else ""
        if self.farm.shard_by == "key" and key:
            shard = self.farm.shard_for(key)
        else:
            shard = self.farm.shard_for(canonical_hash(document))
        memo = _Memo(request, key, shard)
        if len(raw) <= _MEMO_MAX_BODY:
            with self._memo_lock:
                self._memo[body_id] = memo
                while len(self._memo) > _MEMO_MAX_ENTRIES:
                    self._memo.popitem(last=False)
        return memo

    def _handle_farm(self, raw: bytes) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            memo = self._parse_compile(raw)
        except (SDFError, ValueError, KeyError, TypeError) as exc:
            with self._lock:
                self._counters["errors"] += 1
            return self._err(400, f"bad request: {exc}")
        with self._lock:
            self._counters["requests"] += 1
            if self._inflight >= self.queue_limit:
                self._counters["rejected"] += 1
                return self._err(
                    429, "compile queue is full, retry later",
                    {"Retry-After": "1"},
                )
            self._inflight += 1
        try:
            return self._coalesced_dispatch(memo)
        finally:
            with self._lock:
                self._inflight -= 1

    def _coalesced_dispatch(
        self, memo: _Memo, path: str = "/compile"
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One item through single-flight + farm dispatch.

        Shared by ``/compile`` and each ``/batch`` item: cache-enabled
        identical requests in flight anywhere on the server (single
        requests or batch items, in any mix) coalesce onto one leader
        per cache key; the rest receive the leader's bytes verbatim.
        """
        if not memo.key:
            return self._farm_dispatch(memo, path)
        with self._flight_lock:
            flight = self._flights.get(memo.key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[memo.key] = flight
        if not leader:
            ok = flight.event.wait(
                self.request_timeout or _SINGLE_FLIGHT_CAP_S
            )
            with self._lock:
                self._counters["coalesced"] += 1
            if not ok or flight.result is None:
                with self._lock:
                    self._counters["timeouts"] += 1
                return self._err(
                    504,
                    "coalesced request timed out waiting for the "
                    "in-flight identical compile",
                )
            return flight.result
        try:
            result = self._farm_dispatch(memo, path)
            flight.result = result
            return result
        finally:
            with self._flight_lock:
                self._flights.pop(memo.key, None)
            flight.event.set()

    def _farm_dispatch(
        self, memo: _Memo, path: str = "/compile"
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Run one request on its shard; map farm failures to HTTP."""
        trace = self.trace_path is not None
        try:
            response = self.farm.compile(
                memo.shard, memo.key, memo.request,
                trace=trace, timeout=self.request_timeout,
            )
        except FarmRequestError as exc:
            with self._lock:
                self._counters["errors"] += 1
            return self._err(exc.code, str(exc))
        except FarmWorkerCrashed as exc:
            with self._lock:
                self._counters["worker_failures"] += 1
                self._counters["errors"] += 1
            return self._err(exc.code, str(exc))
        except FarmTimeout as exc:
            with self._lock:
                self._counters["timeouts"] += 1
            return self._err(exc.code, str(exc))
        self._account(response.status)
        if response.tree is not None:
            self._graft_worker_trace(memo, response.tree, path)
        return 200, response.body, {}

    def _graft_worker_trace(
        self, memo: _Memo, tree: Dict[str, Any], path: str = "/compile"
    ) -> None:
        from .. import obs

        recorder = obs.TraceRecorder()
        with recorder.span(
            "serve.request", path=path, shard=memo.shard
        ):
            recorder.merge_serialized(tree)
        with self._lock:
            self._trace_trees.append(recorder.serialize())

    # -- farm batch path ------------------------------------------------
    def _parse_batch(self, raw: bytes) -> List[Tuple[str, Any]]:
        """Parse + route one ``/batch`` body, memoized on its bytes.

        Returns one entry per item in request order: ``("item", memo)``
        for a routable document, ``("err", body_bytes)`` for a
        malformed one.  Like :meth:`_parse_compile`, a repeated
        identical batch body (the warm hot path) costs one SHA-256 and
        a dict probe instead of a JSON parse plus two canonical-JSON
        hashes *per item*.  Bodies with fault injection are never
        memoized — faults must reach the worker on every POST.
        """
        body_id = hashlib.sha256(raw).hexdigest()
        with self._memo_lock:
            entries = self._batch_memo.get(body_id)
            if entries is not None:
                self._batch_memo.move_to_end(body_id)
                return entries
        request = json.loads(raw or b"{}")
        if not isinstance(request, dict):
            raise ValueError("request body must be a JSON object")
        documents = _require(request, "graphs", "/batch")
        if not isinstance(documents, list):
            raise ValueError(
                "'graphs' must be a list of graph documents"
            )
        options = CompileOptions.from_dict(request.get("options"))
        caching = (
            bool(request.get("cache", True))
            and self.service.cache is not None
        )
        faults = request.get("faults")
        if faults is not None and (
            not isinstance(faults, list)
            or len(faults) != len(documents)
        ):
            raise ValueError(
                "'faults' must align one-to-one with 'graphs'"
            )
        entries = []
        options_dict = request.get("options") or {}
        for index, document in enumerate(documents):
            try:
                item = {
                    "graph": document,
                    "options": options_dict,
                    "cache": caching,
                }
                if faults is not None and faults[index]:
                    item["fault"] = faults[index]
                key = (
                    cache_key(document, options.key_dict())
                    if caching else ""
                )
                if self.farm.shard_by == "key" and key:
                    shard = self.farm.shard_for(key)
                else:
                    shard = self.farm.shard_for(
                        canonical_hash(document)
                    )
            except (SDFError, ValueError, KeyError, TypeError) as exc:
                entries.append(
                    ("err",
                     self._item_error(400, f"bad request: {exc}"))
                )
                continue
            entries.append(("item", _Memo(item, key, shard)))
        if faults is None and len(raw) <= _MEMO_MAX_BODY:
            with self._memo_lock:
                self._batch_memo[body_id] = entries
                while len(self._batch_memo) > _MEMO_MAX_ENTRIES:
                    self._batch_memo.popitem(last=False)
        return entries

    def _handle_batch_farm(
        self, raw: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """``/batch`` through the farm: per-item sharding + isolation.

        Each item is routed by its own graph digest; shard groups run
        on a persistent dispatch pool with the items of one shard
        processed in request order (the shard's session LRU and memory
        tier stay hot, and N identical colds in one batch compile
        exactly once — the first item compiles, the rest hit the
        memory tier or coalesce on the single-flight).  A malformed
        document, worker crash, or per-item timeout yields a
        ``{"status": "error", "code": ..., "error": ...}`` entry for
        that item only.  Success items splice the workers' rendered
        response bytes verbatim — no decode/re-encode on the hot path.
        """
        try:
            entries = self._parse_batch(raw)
        except (SDFError, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            with self._lock:
                self._counters["errors"] += 1
            return self._err(400, f"bad request: {exc}")
        with self._lock:
            self._counters["requests"] += 1
            if self._inflight >= self.queue_limit:
                self._counters["rejected"] += 1
                return self._err(
                    429, "compile queue is full, retry later",
                    {"Retry-After": "1"},
                )
            self._inflight += 1
        try:
            parts: List[Optional[bytes]] = [None] * len(entries)
            groups: Dict[int, List[Tuple[int, _Memo]]] = {}
            parse_errors = 0
            for index, (kind, value) in enumerate(entries):
                if kind == "err":
                    parts[index] = value
                    parse_errors += 1
                else:
                    groups.setdefault(value.shard, []).append(
                        (index, value)
                    )
            if parse_errors:
                with self._lock:
                    self._counters["errors"] += parse_errors

            def run_item(index: int, memo: _Memo) -> None:
                code, body, _headers = self._coalesced_dispatch(
                    memo, path="/batch"
                )
                if code == 200:
                    parts[index] = body
                else:
                    message = ""
                    try:
                        message = json.loads(body).get("error", "")
                    except (ValueError, AttributeError):
                        pass
                    parts[index] = self._item_error(code, message)

            def run_group(members: List[Tuple[int, _Memo]]) -> None:
                trace = self.trace_path is not None
                try:
                    results = self.farm.compile_many(
                        members[0][1].shard,
                        [(memo.key, memo.request)
                         for _, memo in members],
                        trace=trace, timeout=self.request_timeout,
                    )
                except (FarmWorkerCrashed, FarmTimeout, FarmError):
                    # The grouped frame failed as a unit (the worker
                    # died or hung mid-group).  Fall back to per-item
                    # dispatch so only the actually-bad item errors —
                    # fault isolation stays per item, not per shard.
                    with self._lock:
                        self._counters["worker_failures"] += 1
                    for index, memo in members:
                        run_item(index, memo)
                    return
                for (index, memo), entry in zip(members, results):
                    if entry[0] != "ok":
                        with self._lock:
                            self._counters["errors"] += 1
                        parts[index] = self._item_error(
                            entry[1], entry[2]
                        )
                        continue
                    _, status, _tier, body, tree = entry
                    self._account(status)
                    if tree is not None:
                        self._graft_worker_trace(memo, tree, "/batch")
                    parts[index] = body

            ordered = [groups[shard] for shard in sorted(groups)]
            if len(ordered) == 1:
                run_group(ordered[0])
            elif ordered:
                # First group runs inline; the rest overlap on the
                # persistent pool (per-POST Thread spawns cost more
                # than the warm dispatches they parallelize).
                futures = [
                    self._batch_pool.submit(run_group, members)
                    for members in ordered[1:]
                ]
                run_group(ordered[0])
                for future in futures:
                    future.result()
            filled = [
                part if part is not None
                else self._item_error(500, "internal error")
                for part in parts
            ]
            body = b'{"responses":[' + b",".join(filled) + b"]}"
            return 200, body, {}
        finally:
            with self._lock:
                self._inflight -= 1

    @staticmethod
    def _item_error(code: int, message: str) -> bytes:
        """One failed batch item, shaped like a response entry."""
        return json.dumps(
            {"status": "error", "code": code, "error": message}
        ).encode("utf-8")

    # -- live resizing --------------------------------------------------
    def _handle_resize(
        self, raw: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            request = json.loads(raw or b"{}")
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
            workers = int(_require(request, "workers", "/resize"))
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            return self._err(400, f"bad request: {exc}")
        if self.farm is None:
            return self._err(
                400,
                "no farm to resize: start the server with "
                "--workers N (N > 0) to enable live resizing",
            )
        try:
            info = self.resize(workers)
        except ValueError as exc:
            return self._err(400, f"bad request: {exc}")
        payload = dict(info)
        payload.update(self.farm.describe())
        return 200, json.dumps(payload).encode("utf-8"), {}

    def resize(self, processes: int) -> Dict[str, Any]:
        """Resize the farm live; flush routing memos.  See
        :meth:`WorkerFarm.resize`."""
        if self.farm is None:
            raise ValueError("server has no farm to resize")
        info = self.farm.resize(processes)
        # Memoized bodies carry pre-resize shard numbers; flush so new
        # requests route against the new pool (in-flight stale shards
        # are re-routed by the farm itself).
        with self._memo_lock:
            self._memo.clear()
            self._batch_memo.clear()
        return info

    def handle(
        self, path: str, request: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Dispatch one parsed POST; returns (code, payload, headers).

        The thread-pool path: ``/batch`` always, and ``/compile`` when
        no farm is configured.
        """
        with self._lock:
            self._counters["requests"] += 1
            if self._inflight >= self.queue_limit:
                self._counters["rejected"] += 1
                return (
                    429,
                    {"error": "compile queue is full, retry later"},
                    {"Retry-After": "1"},
                )
            self._inflight += 1
        cancel: Optional[threading.Event] = None
        if self.request_timeout is not None and path == "/batch":
            cancel = threading.Event()
        future = self._pool.submit(self._run_job, path, request, cancel)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeout:
            # The job keeps running in the pool, but for /batch the
            # cancel event stops unstarted items at the next round
            # boundary, so the worker slot comes back promptly instead
            # of grinding through the abandoned batch.
            if cancel is not None:
                cancel.set()
            with self._lock:
                self._counters["timeouts"] += 1
            return (
                504,
                {"error": (
                    f"request exceeded {self.request_timeout}s; "
                    "still compiling, retry to pick up the cached result"
                )},
                {},
            )

    def _run_job(
        self, path: str, request: Dict[str, Any],
        cancel: Optional[threading.Event] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        recorder = None
        if self.trace_path is not None:
            from .. import obs

            recorder = obs.TraceRecorder()
        try:
            span = (
                recorder.span("serve.request", path=path)
                if recorder is not None
                else None
            )
            if span is not None:
                with span:
                    return self._dispatch(path, request, recorder, cancel)
            return self._dispatch(path, request, recorder, cancel)
        finally:
            with self._lock:
                self._inflight -= 1
                if recorder is not None:
                    self._trace_trees.append(recorder.serialize())

    def _dispatch(
        self, path: str, request: Dict[str, Any], recorder,
        cancel: Optional[threading.Event] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            if path == "/compile":
                return self._compile_one(request, recorder)
            return self._compile_batch(request, recorder, cancel)
        except (SDFError, ValueError, KeyError, TypeError) as exc:
            with self._lock:
                self._counters["errors"] += 1
            return 400, {"error": f"bad request: {exc}"}, {}
        except Exception as exc:  # pragma: no cover - defensive
            with self._lock:
                self._counters["errors"] += 1
            return 500, {"error": f"internal error: {exc!r}"}, {}

    def _compile_one(
        self, request: Dict[str, Any], recorder
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        document = _require(request, "graph", "/compile")
        options = CompileOptions.from_dict(request.get("options"))
        report, status = self.service.compile_document(
            document, options,
            use_cache=bool(request.get("cache", True)),
            recorder=recorder,
        )
        self._account(status)
        return 200, {"status": status, "report": report.to_json()}, {}

    def _compile_batch(
        self, request: Dict[str, Any], recorder,
        cancel: Optional[threading.Event] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        documents = _require(request, "graphs", "/batch")
        if not isinstance(documents, list):
            raise ValueError("'graphs' must be a list of graph documents")
        options = CompileOptions.from_dict(request.get("options"))
        jobs = request.get("jobs")
        extra: Dict[str, Any] = {}
        if cancel is not None:  # stay duck-type compatible without it
            extra["cancel"] = cancel
        results = self.service.compile_batch(
            documents, options,
            use_cache=bool(request.get("cache", True)),
            jobs=int(jobs) if jobs is not None else None,
            recorder=recorder,
            **extra,
        )
        responses = []
        reclaimed = errored = 0
        for result, status in results:
            if status in ("error", "cancelled"):
                if status == "cancelled":
                    reclaimed += 1
                else:
                    errored += 1
                responses.append({
                    "status": "error",
                    "code": int(result.get("code", 500)),
                    "error": str(result.get("error", "")),
                })
                continue
            self._account(status)
            responses.append(
                {"status": status, "report": result.to_json()}
            )
        if reclaimed or errored:
            with self._lock:
                self._counters["timeout_reclaimed"] += reclaimed
                self._counters["errors"] += errored
        return 200, {"responses": responses}, {}

    def _account(self, status: str) -> None:
        with self._lock:
            if status == "hit":
                self._counters["hits"] += 1
            else:
                self._counters["compiled"] += 1
                if status == "miss":
                    self._counters["misses"] += 1

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Server counters plus cache/farm stats (the ``/stats`` payload)."""
        with self._lock:
            counters = dict(self._counters)
            counters["inflight"] = self._inflight
            window = sorted(self._latencies)
        payload: Dict[str, Any] = {
            "server": counters,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "draining": self.draining,
            "latency_ms": {
                "count": len(window),
                "p50": round(_percentile(window, 0.50) * 1000, 3),
                "p95": round(_percentile(window, 0.95) * 1000, 3),
                "p99": round(_percentile(window, 0.99) * 1000, 3),
            },
        }
        if self.service.cache is not None:
            payload["cache"] = self.service.cache.stats()
        if self.farm is not None:
            farm = self.farm.describe()
            workers = self.farm.worker_stats()
            totals: Dict[str, int] = {}
            for row in workers:
                for name, value in row.get("counters", {}).items():
                    totals[name] = totals.get(name, 0) + value
            # Counters shipped home by workers drained on a shrink
            # keep counting after the resize.
            for name, value in self.farm.retired.get(
                "counters", {}
            ).items():
                totals[name] = totals.get(name, 0) + value
            farm["workers"] = workers
            farm["counters"] = totals
            payload["farm"] = farm
        return payload

    def _write_trace(self) -> None:
        if self.trace_path is None:
            return
        from .. import obs

        merged = obs.TraceRecorder()
        with self._lock:
            trees = list(self._trace_trees)
        for tree in trees:
            merged.merge_serialized(tree)
        obs.write_trace(merged, self.trace_path, fmt=self.trace_format)
