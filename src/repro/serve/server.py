"""JSON-over-HTTP front end for the compilation service (stdlib only).

``repro serve`` wraps a :class:`~repro.serve.service.CompileService`
in a :class:`http.server.ThreadingHTTPServer`.  The design goals, in
order: never corrupt a result, shed load explicitly, drain cleanly.

* **Worker pool** — compilations run on a bounded
  ``ThreadPoolExecutor`` (``workers``); the request thread waits on
  the future.  Batch requests additionally fan out across processes
  via :func:`~repro.experiments.runner.parallel_map` inside the job.
* **Bounded queue / backpressure** — at most ``queue_limit`` requests
  may be queued or running; one more gets an immediate ``429`` with a
  ``Retry-After`` header instead of unbounded buffering.  Load the
  server cannot take is the *client's* signal to back off.
* **Per-request timeout** — a request that outlives
  ``request_timeout`` seconds gets ``504``; its worker slot is
  reclaimed when the underlying job finishes, so timeouts cannot leak
  pool capacity.
* **Graceful drain** — :meth:`CompileServer.drain` (wired to SIGTERM
  by the CLI) stops accepting new work (``503`` while draining),
  waits for in-flight requests, writes the accumulated trace, and
  returns; ``repro serve`` then exits 0.
* **Observability** — with ``trace_path`` set, every request records
  a ``serve.request`` span tree (cache lookup, pipeline stages,
  counters) into its own recorder; the trees are merged in completion
  order and written through the existing Chrome-trace exporter on
  drain, so a serve session can be inspected in ``chrome://tracing``
  exactly like a ``repro compile --trace`` run.

Endpoints
---------
``GET /healthz``
    ``{"status": "ok" | "draining"}`` (200 / 503).
``GET /stats``
    Server counters plus cache stats.
``POST /compile``
    ``{"graph": <to_json document>, "options": {...}, "cache": true}``
    → ``{"status": "hit"|"miss"|"disabled", "report": {...}}``.
``POST /batch``
    ``{"graphs": [<document>, ...], "options": {...}, "jobs": N}``
    → ``{"responses": [{"status": ..., "report": ...}, ...]}`` in
    request order.

Error responses are ``{"error": "..."}`` with status 400 (malformed
request), 404 (unknown path), 429 (queue full), 503 (draining), 504
(timeout), or 500 (unexpected failure).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..exceptions import SDFError
from .service import CompileOptions, CompileService

__all__ = ["CompileServer", "DEFAULT_PORT"]

DEFAULT_PORT = 8177


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning :class:`CompileServer`."""

    protocol_version = "HTTP/1.1"

    @property
    def _owner(self) -> "CompileServer":
        return self.server.owner  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if not self._owner.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _reply(
        self, code: int, payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        owner = self._owner
        if self.path == "/healthz":
            if owner.draining:
                self._reply(503, {"status": "draining"})
            else:
                self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, owner.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        owner = self._owner
        if self.path not in ("/compile", "/batch"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        if owner.draining:
            self._reply(503, {"error": "server is draining"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed request: {exc}"})
            return
        code, payload, headers = owner.handle(self.path, request)
        self._reply(code, payload, headers)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    owner: "CompileServer"


class CompileServer:
    """The long-running ``repro serve`` process (see module docstring).

    Parameters
    ----------
    service:
        The :class:`CompileService` handling actual compilation.
    host / port:
        Bind address; ``port=0`` picks a free ephemeral port
        (``.port`` reports the bound one).
    workers:
        Worker-pool threads executing compilations.
    queue_limit:
        Maximum queued-plus-running requests before ``429``.
    request_timeout:
        Seconds a request may take before ``504`` (``None``: no limit).
    trace_path / trace_format:
        When set, per-request span trees are recorded and written
        here (Chrome traceEvents by default) at drain time.
    quiet:
        Suppress per-request access logging.
    """

    def __init__(
        self,
        service: Optional[CompileService] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        queue_limit: int = 8,
        request_timeout: Optional[float] = None,
        trace_path: Optional[str] = None,
        trace_format: str = "auto",
        quiet: bool = False,
    ) -> None:
        self.service = service or CompileService()
        self.workers = max(1, workers)
        self.queue_limit = max(1, queue_limit)
        self.request_timeout = request_timeout
        self.trace_path = trace_path
        self.trace_format = trace_format
        self.quiet = quiet
        self.draining = False
        self._lock = threading.Lock()
        self._inflight = 0
        self._counters = {
            "requests": 0, "hits": 0, "misses": 0, "compiled": 0,
            "rejected": 0, "timeouts": 0, "errors": 0,
        }
        self._trace_trees: List[Dict[str, Any]] = []
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.owner = self
        self._thread: Optional[threading.Thread] = None

    # -- addressing -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "CompileServer":
        """Serve on a background thread (tests, smoke harness)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`drain` (CLI path)."""
        self._httpd.serve_forever()

    def drain(self, timeout: float = 60.0) -> None:
        """Stop accepting work, finish in-flight requests, shut down.

        Idempotent.  New requests observe ``draining`` and get 503
        immediately; existing ones run to completion (bounded by
        ``timeout`` seconds of waiting).  The accumulated trace, if
        any, is written last so it includes every completed request.
        """
        with self._lock:
            if self.draining:
                return
            self.draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        self._pool.shutdown(wait=True)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._write_trace()

    # -- request handling -----------------------------------------------
    def handle(
        self, path: str, request: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Dispatch one parsed POST; returns (code, payload, headers)."""
        with self._lock:
            self._counters["requests"] += 1
            if self._inflight >= self.queue_limit:
                self._counters["rejected"] += 1
                return (
                    429,
                    {"error": "compile queue is full, retry later"},
                    {"Retry-After": "1"},
                )
            self._inflight += 1
        future = self._pool.submit(self._run_job, path, request)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeout:
            with self._lock:
                self._counters["timeouts"] += 1
            return (
                504,
                {"error": (
                    f"request exceeded {self.request_timeout}s; "
                    "still compiling, retry to pick up the cached result"
                )},
                {},
            )

    def _run_job(
        self, path: str, request: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        recorder = None
        if self.trace_path is not None:
            from .. import obs

            recorder = obs.TraceRecorder()
        try:
            span = (
                recorder.span("serve.request", path=path)
                if recorder is not None
                else None
            )
            if span is not None:
                with span:
                    return self._dispatch(path, request, recorder)
            return self._dispatch(path, request, recorder)
        finally:
            with self._lock:
                self._inflight -= 1
                if recorder is not None:
                    self._trace_trees.append(recorder.serialize())

    def _dispatch(
        self, path: str, request: Dict[str, Any], recorder
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            if path == "/compile":
                return self._compile_one(request, recorder)
            return self._compile_batch(request, recorder)
        except (SDFError, ValueError, KeyError, TypeError) as exc:
            with self._lock:
                self._counters["errors"] += 1
            return 400, {"error": f"bad request: {exc}"}, {}
        except Exception as exc:  # pragma: no cover - defensive
            with self._lock:
                self._counters["errors"] += 1
            return 500, {"error": f"internal error: {exc!r}"}, {}

    def _compile_one(
        self, request: Dict[str, Any], recorder
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        document = request["graph"]
        options = CompileOptions.from_dict(request.get("options"))
        report, status = self.service.compile_document(
            document, options,
            use_cache=bool(request.get("cache", True)),
            recorder=recorder,
        )
        self._account(status)
        return 200, {"status": status, "report": report.to_json()}, {}

    def _compile_batch(
        self, request: Dict[str, Any], recorder
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        documents = request["graphs"]
        if not isinstance(documents, list):
            raise ValueError("'graphs' must be a list of graph documents")
        options = CompileOptions.from_dict(request.get("options"))
        jobs = request.get("jobs")
        results = self.service.compile_batch(
            documents, options,
            use_cache=bool(request.get("cache", True)),
            jobs=int(jobs) if jobs is not None else None,
            recorder=recorder,
        )
        responses = []
        for report, status in results:
            self._account(status)
            responses.append(
                {"status": status, "report": report.to_json()}
            )
        return 200, {"responses": responses}, {}

    def _account(self, status: str) -> None:
        with self._lock:
            if status == "hit":
                self._counters["hits"] += 1
            else:
                self._counters["compiled"] += 1
                if status == "miss":
                    self._counters["misses"] += 1

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Server counters plus cache stats (the ``/stats`` payload)."""
        with self._lock:
            counters = dict(self._counters)
            counters["inflight"] = self._inflight
        payload: Dict[str, Any] = {
            "server": counters,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "draining": self.draining,
        }
        if self.service.cache is not None:
            payload["cache"] = self.service.cache.stats()
        return payload

    def _write_trace(self) -> None:
        if self.trace_path is None:
            return
        from .. import obs

        merged = obs.TraceRecorder()
        with self._lock:
            trees = list(self._trace_trees)
        for tree in trees:
            merged.merge_serialized(tree)
        obs.write_trace(merged, self.trace_path, fmt=self.trace_format)
