"""The wire-format result of one service compilation.

:class:`~repro.scheduling.pipeline.ImplementationResult` holds live
objects — schedule trees, lifetime sets, an intersection graph — that
neither JSON nor a cache entry can carry.  :class:`CompilationReport`
is its plain-data projection: every number Table 1 reports, the chosen
actor order, the rendered schedules, and the final memory map, all as
JSON-ready scalars.  It is what ``repro serve`` returns, what
``repro submit`` prints and saves, and what the artifact cache stores.

Bit-identity is a first-class operation here: :meth:`canonical` is the
canonical JSON serialization of the *deterministic* fields only —
volatile fields (``cached``, ``wall_s``) are excluded — so a warm-cache
response can be compared byte-for-byte against the cold compile that
produced it.  The cache's integrity digest is the SHA-256 of exactly
this string.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["CompilationReport"]

#: Fields excluded from :meth:`CompilationReport.canonical` — they
#: describe *how this copy was obtained*, not what was computed.
VOLATILE_FIELDS = ("cached", "wall_s")


@dataclass
class CompilationReport:
    """Plain-data summary of one compiled graph.

    Attributes
    ----------
    graph:
        The graph's name (from the document, not user-supplied).
    key:
        The content-addressed cache key this result is stored under —
        a hash of (canonical graph document, strategy options, package
        version).  Empty when compiled without a cache.
    method / seed:
        The topological-sort strategy that produced ``order``.
    order:
        The chosen topological actor order.
    dppo_schedule / sdppo_schedule:
        The looped schedules rendered in the paper's notation
        (re-parseable with :func:`repro.sdf.parse_schedule`).
    dppo_cost / sdppo_cost / ffdur_total / ffstart_total / total:
        Non-shared DPPO words, SDPPO's predicted shared words, the two
        first-fit totals, and the winning verified pool extent.
    mco / mcp / bmlb:
        The clique-weight bounds and the buffer-memory lower bound.
    offsets:
        The memory map: buffer name -> base address in words.
    vectorized_schedule / block_factors / memory_budget:
        The blocking pass outcome when the request ran with
        ``vectorize``: the blocked schedule (the one ``offsets`` and
        ``total`` describe), the per-actor firing-block factors, and
        the word budget the pass respected (``None`` =
        unconstrained).  ``vectorized_schedule`` is empty for plain
        compiles, and all three are then omitted from the wire form so
        pre-vectorization reports canonicalize unchanged.
    cached:
        True when this copy was served from the artifact cache
        (volatile: excluded from :meth:`canonical`).
    wall_s:
        Server-side wall time spent producing this copy (volatile).
    """

    graph: str
    key: str
    method: str
    seed: int
    order: List[str]
    dppo_cost: int
    dppo_schedule: str
    sdppo_cost: int
    sdppo_schedule: str
    mco: int
    mcp: int
    ffdur_total: int
    ffstart_total: int
    total: int
    bmlb: int
    offsets: Dict[str, int] = field(default_factory=dict)
    vectorized_schedule: str = ""
    block_factors: Dict[str, int] = field(default_factory=dict)
    memory_budget: Any = None
    cached: bool = False
    wall_s: float = 0.0

    @classmethod
    def from_result(
        cls, result: Any, graph_name: str, key: str = "", seed: int = 0
    ) -> "CompilationReport":
        """Project an ``ImplementationResult`` down to plain data."""
        return cls(
            graph=graph_name,
            key=key,
            method=result.method,
            seed=seed,
            order=list(result.order),
            dppo_cost=result.dppo_cost,
            dppo_schedule=str(result.dppo_schedule),
            sdppo_cost=result.sdppo_cost,
            sdppo_schedule=str(result.sdppo_schedule),
            mco=result.mco,
            mcp=result.mcp,
            ffdur_total=result.ffdur_total,
            ffstart_total=result.ffstart_total,
            total=result.allocation.total,
            bmlb=result.bmlb,
            offsets=dict(result.allocation.offsets),
            vectorized_schedule=(
                str(result.vectorize.schedule)
                if getattr(result, "vectorize", None) is not None
                else ""
            ),
            block_factors=(
                dict(result.vectorize.block_factors)
                if getattr(result, "vectorize", None) is not None
                else {}
            ),
            memory_budget=(
                result.vectorize.memory_budget
                if getattr(result, "vectorize", None) is not None
                else None
            ),
        )

    # -- serialization --------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The full JSON-ready dictionary, volatile fields included.

        The vectorization fields are emitted only when the blocking
        pass ran (``vectorized_schedule`` non-empty): plain compiles
        keep the exact pre-vectorization wire format, so their
        canonical strings — and cache digests — are unchanged.
        """
        payload = {
            "graph": self.graph,
            "key": self.key,
            "method": self.method,
            "seed": self.seed,
            "order": list(self.order),
            "dppo_cost": self.dppo_cost,
            "dppo_schedule": self.dppo_schedule,
            "sdppo_cost": self.sdppo_cost,
            "sdppo_schedule": self.sdppo_schedule,
            "mco": self.mco,
            "mcp": self.mcp,
            "ffdur_total": self.ffdur_total,
            "ffstart_total": self.ffstart_total,
            "total": self.total,
            "bmlb": self.bmlb,
            "offsets": dict(self.offsets),
            "cached": self.cached,
            "wall_s": self.wall_s,
        }
        if self.vectorized_schedule:
            payload["vectorized_schedule"] = self.vectorized_schedule
            payload["block_factors"] = dict(self.block_factors)
            payload["memory_budget"] = self.memory_budget
        return payload

    @staticmethod
    def from_json(document: Dict[str, Any]) -> "CompilationReport":
        """Rebuild a report from :meth:`to_json` output."""
        return CompilationReport(
            graph=document["graph"],
            key=document.get("key", ""),
            method=document["method"],
            seed=int(document.get("seed", 0)),
            order=list(document["order"]),
            dppo_cost=int(document["dppo_cost"]),
            dppo_schedule=document["dppo_schedule"],
            sdppo_cost=int(document["sdppo_cost"]),
            sdppo_schedule=document["sdppo_schedule"],
            mco=int(document["mco"]),
            mcp=int(document["mcp"]),
            ffdur_total=int(document["ffdur_total"]),
            ffstart_total=int(document["ffstart_total"]),
            total=int(document["total"]),
            bmlb=int(document["bmlb"]),
            offsets={
                str(k): int(v)
                for k, v in document.get("offsets", {}).items()
            },
            vectorized_schedule=document.get("vectorized_schedule", ""),
            block_factors={
                str(k): int(v)
                for k, v in document.get("block_factors", {}).items()
            },
            memory_budget=(
                None
                if document.get("memory_budget") is None
                else int(document["memory_budget"])
            ),
            cached=bool(document.get("cached", False)),
            wall_s=float(document.get("wall_s", 0.0)),
        )

    def canonical(self) -> str:
        """Canonical JSON of the deterministic fields only.

        Two reports describing the same compilation — one cold, one
        served from the cache — canonicalize identically; this is the
        string the acceptance bit-identity checks compare and the cache
        digests for integrity.
        """
        payload = self.to_json()
        for name in VOLATILE_FIELDS:
            payload.pop(name, None)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` — the cache integrity digest."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    # -- presentation ---------------------------------------------------
    def summary_lines(self) -> List[str]:
        """Human-readable summary, matching ``repro compile`` output."""
        source = "cache hit" if self.cached else "compiled"
        lines = [
            f"graph:      {self.graph} ({len(self.order)} actors, {source})",
            f"order:      {' '.join(self.order)}",
            f"schedule:   {self.sdppo_schedule}",
            f"non-shared: {self.dppo_cost} words",
            f"shared:     {self.total} words (mco {self.mco}, mcp {self.mcp})",
        ]
        if self.vectorized_schedule:
            budget = (
                "unconstrained" if self.memory_budget is None
                else f"{self.memory_budget} words"
            )
            lines.append(
                f"vectorized: {self.vectorized_schedule} (budget {budget})"
            )
        return lines
