"""Content-addressed artifact cache for compilation results.

Every ``repro compile`` used to recompute the full
schedule/allocation pipeline even when the same graph had been
compiled moments earlier with the same options.  The flow is a pure
function of ``(graph document, strategy options, package version)``,
so its result can be addressed by content: :func:`cache_key` hashes
the canonical JSON form of exactly that triple (SHA-256), and
:class:`ArtifactCache` maps keys to stored
:class:`~repro.serve.report.CompilationReport` payloads on disk.

Integrity over availability
---------------------------
A cache may be slow, cold, or missing — it must never be *wrong*:

* **atomic writes** — entries are written to a temporary file in the
  cache directory and ``os.replace``-d into place, so a crashed or
  concurrent writer can never leave a half-written entry visible;
* **hash-verified reads** — each entry records the SHA-256 digest of
  its report's canonical form; :meth:`ArtifactCache.get` recomputes
  and compares it (and the key) on every read;
* **corruption tolerance** — an unparseable, mis-keyed, or
  digest-mismatched entry is evicted (unlinked) and reported as a
  miss, so the caller transparently recomputes.  A corrupt entry is
  *never served*; ``repro check --inject`` plants exactly this fault
  (the ``cache_corrupt`` mutation class) and asserts it stays caught.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON entry per result.
The root defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Maintenance is exposed as ``repro cache {stats,gc,clear}``.

Kernel binaries
---------------
The cache also stores the :mod:`repro.native` compiled kernel shared
objects under ``<root>/kernels/<key>.so`` with a sidecar
``<key>.so.json`` recording the binary's SHA-256.  Kernel reads are
digest-verified the same way report reads are (corruption evicts and
rebuilds, never loads); :meth:`ArtifactCache.stats` reports the two
kinds separately, and :meth:`gc` never touches kernels (they are tiny,
keyed by source+compiler, and rebuilt on demand).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from .report import CompilationReport

__all__ = ["ArtifactCache", "cache_key", "default_cache_dir"]

_ENTRY_SUFFIX = ".json"
_KERNEL_DIRNAME = "kernels"
_KERNEL_SUFFIX = ".so"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro`` when unset."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def cache_key(
    document: Dict[str, Any],
    options: Optional[Dict[str, Any]] = None,
    version: str = __version__,
) -> str:
    """The content address of one compilation.

    SHA-256 over the canonical JSON of ``{graph, options, version}``:
    object keys sorted at every level, fixed separators.  Key order in
    the input JSON therefore cannot change the address, while any
    semantic change — a rate, a delay, a different method or seed, a
    new package version — produces a fresh key (stale results can
    never be served across releases).
    """
    payload = {
        "graph": document,
        "options": dict(options or {}),
        "version": version,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A directory of hash-verified compilation reports.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).  Defaults to
        :func:`default_cache_dir`.

    The instance keeps session counters (``hits``, ``misses``,
    ``writes``, ``evictions``) that ``repro serve`` exposes via its
    ``/stats`` endpoint; on-disk figures (entry count, bytes) are
    computed by :meth:`stats` on demand.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    # -- addressing -----------------------------------------------------
    def path_for(self, key: str) -> str:
        """Where entry ``key`` lives (two-level fan-out by key prefix)."""
        return os.path.join(self.root, key[:2], key + _ENTRY_SUFFIX)

    def _entries(self) -> List[str]:
        found = []
        if not os.path.isdir(self.root):
            return found
        for sub in sorted(os.listdir(self.root)):
            if sub == _KERNEL_DIRNAME:
                continue  # kernel binaries are a separate kind
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(_ENTRY_SUFFIX):
                    found.append(os.path.join(subdir, name))
        return found

    # -- kernel binaries ------------------------------------------------
    def kernel_path_for(self, key: str) -> str:
        """Where the compiled kernel for ``key`` lives."""
        return os.path.join(
            self.root, _KERNEL_DIRNAME, key + _KERNEL_SUFFIX
        )

    def _kernel_entries(self) -> List[str]:
        """Paths of stored kernel binaries (``.so`` files only)."""
        kdir = os.path.join(self.root, _KERNEL_DIRNAME)
        if not os.path.isdir(kdir):
            return []
        return sorted(
            os.path.join(kdir, name)
            for name in os.listdir(kdir)
            if name.endswith(_KERNEL_SUFFIX)
        )

    def get_kernel(self, key: str) -> Optional[str]:
        """Path of a digest-verified kernel binary, or ``None``.

        The sidecar metadata records the binary's SHA-256; a missing
        sidecar, wrong key, or digest mismatch evicts the pair and
        misses — a corrupt kernel is rebuilt, never ``dlopen``-ed.
        """
        path = self.kernel_path_for(key)
        meta_path = path + _ENTRY_SUFFIX
        try:
            with open(meta_path, encoding="utf-8") as handle:
                entry = json.load(handle)
            with open(path, "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            if entry["key"] != key or entry["digest"] != digest:
                raise ValueError("kernel entry failed verification")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.evict_kernel(key)
            self.misses += 1
            return None
        self.hits += 1
        return path

    def put_kernel(self, key: str, data: bytes) -> str:
        """Store a kernel binary atomically; returns its path.

        The binary lands first, the sidecar (whose presence makes the
        entry valid) second — a crash between the two reads as a miss.
        """
        path = self.kernel_path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.chmod(tmp, 0o755)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        entry = {
            "key": key,
            "digest": hashlib.sha256(data).hexdigest(),
            "bytes": len(data),
        }
        meta_path = path + _ENTRY_SUFFIX
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, meta_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def evict_kernel(self, key: str) -> bool:
        """Remove a kernel binary and its sidecar if present."""
        path = self.kernel_path_for(key)
        removed = False
        for victim in (path, path + _ENTRY_SUFFIX):
            try:
                os.unlink(victim)
                removed = True
            except OSError:
                pass
        if removed:
            self.evictions += 1
        return removed

    # -- read/write -----------------------------------------------------
    def get(self, key: str) -> Optional[CompilationReport]:
        """The stored report for ``key``, or ``None``.

        Verifies the entry's recorded key and report digest before
        returning; any mismatch (or unreadable/unparseable entry)
        evicts the entry and counts as a miss — corruption is repaired
        by recomputation, never served.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            report = CompilationReport.from_json(entry["report"])
            if entry["key"] != key or report.digest() != entry["digest"]:
                raise ValueError("cache entry failed verification")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.evict(key)
            self.misses += 1
            return None
        self.hits += 1
        report.key = key
        report.cached = True
        return report

    def put(self, key: str, report: CompilationReport) -> str:
        """Store ``report`` under ``key`` atomically; returns the path.

        The entry records the canonical payload (volatile fields
        normalized away) plus its digest, written via a temporary file
        and ``os.replace`` so readers only ever see complete entries.
        """
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "key": key,
            "digest": report.digest(),
            "report": json.loads(report.canonical()),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def evict(self, key: str) -> bool:
        """Remove entry ``key`` if present; True when a file was removed."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            return False
        self.evictions += 1
        return True

    # -- maintenance ----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """On-disk entry count/bytes plus this instance's counters.

        ``entries``/``bytes`` cover the compilation-report kind (the
        original meaning, kept for compatibility); ``kinds`` breaks
        the figures out per kind — ``reports`` (compile results) and
        ``kernels`` (native kernel binaries; bytes include the
        digest sidecars).  Tolerates concurrent writers: an entry that
        vanishes between the directory scan and its ``stat`` simply
        drops out of the figures instead of raising.
        """
        count = 0
        total = 0
        for path in self._entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue  # vanished mid-scan (concurrent gc/evict)
            count += 1
        kernel_count = 0
        kernel_bytes = 0
        for path in self._kernel_entries():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            try:
                size += os.path.getsize(path + _ENTRY_SUFFIX)
            except OSError:
                pass  # sidecar missing: entry reads as a miss anyway
            kernel_count += 1
            kernel_bytes += size
        return {
            "root": self.root,
            "entries": count,
            "bytes": total,
            "kinds": {
                "reports": {"entries": count, "bytes": total},
                "kernels": {
                    "entries": kernel_count, "bytes": kernel_bytes
                },
            },
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    def _remove_if_unchanged(self, path: str, seen_mtime_ns: int) -> bool:
        """Unlink ``path`` only if it still holds the entry we scanned.

        The scan-to-unlink window races concurrent writers two ways:
        the entry may vanish (another gc, an eviction), or it may be
        *rewritten* — ``os.replace`` swaps in a fresh file that no
        longer deserves expiry.  Re-stat first and skip when the
        mtime moved; give up (don't count) when the file is already
        gone.  A writer replacing the file in the remaining stat-to-
        unlink instant loses nothing either: its ``os.replace`` wins
        or the next ``get`` simply misses and recompiles — a removed
        entry is always safe, only *miscounting* or deleting fresh
        work is not.
        """
        try:
            if os.stat(path).st_mtime_ns != seen_mtime_ns:
                return False  # rewritten since the scan: now fresh
            os.unlink(path)
        except FileNotFoundError:
            return False  # someone else removed it; don't count twice
        except OSError:
            return False
        return True

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> int:
        """Expire entries; returns the number removed.

        ``max_age_s`` removes entries older than that many seconds
        (by mtime, i.e. last write); ``max_entries`` then keeps only
        the newest N.  With neither bound this is a no-op.  Safe to
        run concurrently with writers and with other ``gc`` calls:
        in-progress tempfiles are never candidates (only ``*.json``
        entries are scanned), an entry rewritten after the scan is
        left alone, and an entry already removed by a racing gc is
        not double-counted.
        """
        if now is None:
            now = time.time()
        removed = 0
        by_age: List[Tuple[int, str]] = []
        for path in self._entries():
            try:
                by_age.append((os.stat(path).st_mtime_ns, path))
            except OSError:
                continue  # vanished between scan and stat
        by_age.sort()
        if max_age_s is not None:
            fresh = []
            for mtime_ns, path in by_age:
                if now - mtime_ns / 1e9 > max_age_s:
                    if self._remove_if_unchanged(path, mtime_ns):
                        removed += 1
                else:
                    fresh.append((mtime_ns, path))
            by_age = fresh
        if max_entries is not None and len(by_age) > max_entries:
            excess = len(by_age) - max_entries
            for mtime_ns, path in by_age[:excess]:
                if self._remove_if_unchanged(path, mtime_ns):
                    removed += 1
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every entry (both kinds); returns the number removed.

        Like :meth:`gc`, tolerates entries vanishing underneath it.
        Kernel binaries count one each (their sidecars go silently).
        """
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
        for path in self._kernel_entries():
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            try:
                os.unlink(path + _ENTRY_SUFFIX)
            except OSError:
                pass
        self.evictions += removed
        return removed
