"""The compilation service core: cache in front of the pipeline.

:class:`CompileService` is the transport-independent heart of
``repro serve`` — the HTTP server (:mod:`repro.serve.server`), the
batch client path, and the in-process benchmarks all call the same
two methods:

* :meth:`CompileService.compile_document` — one graph document through
  the cache-then-compile flow, returning a
  :class:`~repro.serve.report.CompilationReport` plus a cache status
  (``"hit"``, ``"miss"``, or ``"disabled"``);
* :meth:`CompileService.compile_document_tiered` — the same flow but
  also reporting *which* tier answered (``"memory"``, ``"disk"``, or
  ``"compile"``); the farm workers use this to keep per-tier counters;
* :meth:`CompileService.compile_batch` — many documents fanned out
  over worker processes with
  :func:`repro.experiments.runner.parallel_map` (the same
  deterministic, order-preserving primitive the experiment drivers
  use), each worker opening the same on-disk cache by path.

Repeated compiles of the same graph within one service process also
share a :class:`~repro.scheduling.session.CompilationSession` (a small
LRU keyed by the graph's canonical hash), so even cache-disabled
traffic reuses the per-graph precomputation.

With ``memory_entries > 0`` the service additionally keeps a bounded
in-process report tier in front of the on-disk cache: an LRU of
canonical report payloads keyed by the full cache key.  A memory hit
skips the disk read *and* the JSON decode of the entry file, yet
rebuilds a fresh :class:`CompilationReport` each time (callers mutate
``wall_s``), so every tier returns bit-identical ``canonical()``
output — the property the equivalence tests and the farm benchmark
pin.  The farm gives each worker process its own memory tier; because
requests are sharded by content digest, a graph's entries concentrate
on one worker instead of being duplicated pool-wide.

With the cache disabled the flow degrades to exactly the pre-service
pipeline — same :func:`~repro.scheduling.pipeline.implement` call,
same outputs — which the equivalence tests pin bit-for-bit.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP
from ..scheduling.pipeline import implement
from ..scheduling.session import CompilationSession
from ..sdf.io import canonical_hash, from_json
from .cache import ArtifactCache, cache_key
from .report import CompilationReport

__all__ = ["CompileOptions", "CompileService"]


@dataclass(frozen=True)
class CompileOptions:
    """The strategy knobs of one compile request.

    ``method``/``seed``/``use_chain_dp``/``occurrence_cap`` are exactly
    the :func:`~repro.scheduling.pipeline.implement` arguments that
    change the result; they form the cache key (:meth:`key_dict`).
    ``backend`` selects the kernel implementation — native kernels are
    bit-identical to the Python path by contract, so it is transported
    with the request (:meth:`as_dict`) but deliberately *excluded* from
    the key: a native compile and a Python compile of the same request
    share one cache entry instead of fragmenting the cache.

    ``vectorize``/``memory_budget`` run the blocking pass
    (:mod:`repro.scheduling.vectorize`).  Unlike ``backend`` they
    *change the artifact* (the blocked schedule carries different
    lifetimes and a different allocation), so they are part of the
    cache key: a vectorized compile and a plain compile of the same
    document must never share an entry.
    """

    method: str = "rpmc"
    seed: int = 0
    use_chain_dp: bool = True
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP
    backend: str = "auto"
    vectorize: bool = False
    memory_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.memory_budget is not None and not self.vectorize:
            raise ValueError("memory_budget requires vectorize")

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-ready transport form (includes ``backend``)."""
        return {
            "method": self.method,
            "seed": self.seed,
            "use_chain_dp": self.use_chain_dp,
            "occurrence_cap": self.occurrence_cap,
            "backend": self.backend,
            "vectorize": self.vectorize,
            "memory_budget": self.memory_budget,
        }

    def key_dict(self) -> Dict[str, Any]:
        """The cache-key form: only the result-changing options.

        ``backend`` is omitted — all backends produce bit-identical
        reports, a contract pinned by the differential harness
        (``oracle.native``) and the fallback tests.
        ``vectorize``/``memory_budget`` stay in: they change the
        report's schedule, lifetimes and allocation.
        """
        data = self.as_dict()
        del data["backend"]
        return data

    @staticmethod
    def from_dict(data: Optional[Dict[str, Any]]) -> "CompileOptions":
        """Build options from a request's ``options`` object.

        Unknown keys raise ``ValueError`` (a typo'd option silently
        ignored would silently mis-key the cache), as does an unknown
        ``backend`` value or a ``memory_budget`` without ``vectorize``.
        """
        data = dict(data or {})
        known = {
            "method": str,
            "seed": int,
            "use_chain_dp": bool,
            "occurrence_cap": int,
            "backend": str,
            "vectorize": bool,
            "memory_budget": lambda v: None if v is None else int(v),
        }
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(f"unknown compile options: {unknown}")
        kwargs = {
            name: cast(data[name])
            for name, cast in known.items()
            if name in data
        }
        backend = kwargs.get("backend")
        if backend is not None and backend not in ("auto", "python", "native"):
            raise ValueError(f"unknown backend {backend!r}")
        budget = kwargs.get("memory_budget")
        if budget is not None and budget < 0:
            raise ValueError(f"memory_budget must be >= 0, got {budget}")
        return CompileOptions(**kwargs)


class CompileService:
    """Cache-fronted compilation over the existing pipeline.

    Parameters
    ----------
    cache:
        An :class:`~repro.serve.cache.ArtifactCache`, or ``None`` to
        disable caching entirely (every request recompiles).
    max_sessions:
        Size of the per-graph :class:`CompilationSession` LRU.
    memory_entries:
        Capacity of the in-process report tier (0 disables it).  Only
        meaningful with a ``cache``: the memory tier fronts the disk
        tier and is keyed by the same content address.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        max_sessions: int = 32,
        memory_entries: int = 0,
    ) -> None:
        self.cache = cache
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, CompilationSession]" = OrderedDict()
        self._memory: "Optional[OrderedDict[str, Dict[str, Any]]]" = (
            OrderedDict() if memory_entries > 0 else None
        )
        self.memory_entries = memory_entries
        self.memory_hits = 0

    # -- memory tier ----------------------------------------------------
    def _memory_get(self, key: str) -> Optional[CompilationReport]:
        if self._memory is None:
            return None
        payload = self._memory.get(key)
        if payload is None:
            return None
        self._memory.move_to_end(key)
        self.memory_hits += 1
        report = CompilationReport.from_json(payload)
        report.key = key
        report.cached = True
        return report

    def _memory_put(self, key: str, report: CompilationReport) -> None:
        if self._memory is None:
            return
        # Store the canonical payload (volatile fields normalized away)
        # so a memory hit reconstructs exactly what a disk hit would.
        self._memory[key] = json.loads(report.canonical())
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def lookup(
        self, key: str, recorder=None
    ) -> Optional[Tuple[CompilationReport, str]]:
        """Probe the cache tiers for ``key`` without a document.

        Returns ``(report, tier)`` with ``tier`` in ``("memory",
        "disk")``, or ``None`` when both tiers miss (the caller must
        then supply the document and compile).  A disk hit is promoted
        into the memory tier.  Never counts a disk miss against the
        cache's ``misses`` counter — a probe is not a request outcome.
        """
        report = self._memory_get(key)
        if report is not None:
            if recorder is not None:
                recorder.count("serve.cache_hits")
            return report, "memory"
        if self.cache is None:
            return None
        span = (
            recorder.span("cache.lookup", key=key[:12])
            if recorder is not None
            else None
        )
        if span is not None:
            with span:
                report = self.cache.get(key)
        else:
            report = self.cache.get(key)
        if report is None:
            # cache.get counted a miss; undo it — the compile path that
            # follows will account the miss exactly once.
            self.cache.misses -= 1
            return None
        if recorder is not None:
            recorder.count("serve.cache_hits")
        self._memory_put(key, report)
        return report, "disk"

    # -- session reuse --------------------------------------------------
    def _session_for(self, digest: str, graph) -> CompilationSession:
        session = self._sessions.get(digest)
        if session is None:
            session = CompilationSession(graph)
            self._sessions[digest] = session
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
        else:
            self._sessions.move_to_end(digest)
        return session

    # -- single compile -------------------------------------------------
    def compile_document(
        self,
        document: Dict[str, Any],
        options: Optional[CompileOptions] = None,
        use_cache: bool = True,
        recorder=None,
    ) -> Tuple[CompilationReport, str]:
        """One graph document through cache-then-compile.

        Returns ``(report, status)`` where ``status`` is ``"hit"``
        (served from the cache, bit-identical to the cold result),
        ``"miss"`` (compiled and stored), or ``"disabled"`` (compiled;
        no cache configured or ``use_cache=False``).  Malformed
        documents raise :class:`repro.exceptions.GraphStructureError`;
        unknown options raise ``ValueError`` — transport layers map
        both to 400-class responses.
        """
        report, status, _tier = self.compile_document_tiered(
            document, options, use_cache=use_cache, recorder=recorder
        )
        return report, status

    def compile_document_tiered(
        self,
        document: Dict[str, Any],
        options: Optional[CompileOptions] = None,
        use_cache: bool = True,
        recorder=None,
    ) -> Tuple[CompilationReport, str, str]:
        """Like :meth:`compile_document`, plus the answering tier.

        Returns ``(report, status, tier)`` where ``tier`` is
        ``"memory"`` (in-process report LRU), ``"disk"`` (on-disk
        artifact cache), or ``"compile"`` (ran the pipeline).  All
        three produce bit-identical ``canonical()`` reports.
        """
        options = options or CompileOptions()
        caching = use_cache and self.cache is not None
        key = cache_key(document, options.key_dict()) if caching else ""
        start = time.perf_counter()
        if caching:
            found = self.lookup(key, recorder=recorder)
            if found is not None:
                report, tier = found
                report.wall_s = time.perf_counter() - start
                return report, "hit", tier
        graph = from_json(document)
        session = self._session_for(canonical_hash(document), graph)
        result = implement(
            graph,
            options.method,
            seed=options.seed,
            use_chain_dp=options.use_chain_dp,
            occurrence_cap=options.occurrence_cap,
            session=session,
            recorder=recorder,
            backend=options.backend,
            vectorize=options.vectorize,
            memory_budget=options.memory_budget,
        )
        report = CompilationReport.from_result(
            result, graph.name, key=key, seed=options.seed
        )
        status = "disabled"
        if caching:
            if recorder is not None:
                recorder.count("serve.cache_misses")
            self.cache.misses += 1  # lookup() deferred the accounting
            self.cache.put(key, report)
            self._memory_put(key, report)
            status = "miss"
        report.wall_s = time.perf_counter() - start
        return report, status, "compile"

    # -- batch compile --------------------------------------------------
    def compile_batch(
        self,
        documents: List[Dict[str, Any]],
        options: Optional[CompileOptions] = None,
        use_cache: bool = True,
        jobs: Optional[int] = None,
        recorder=None,
        cancel=None,
    ) -> List[Tuple[Any, str]]:
        """Fan a list of documents out over worker processes.

        Uses :func:`~repro.experiments.runner.parallel_map` — order
        preserving, deterministic, serial fallback — so the batch
        response order always matches the request order and a
        ``jobs=1`` run is bit-identical to a parallel one.  Workers
        share the on-disk cache by path (atomic writes make concurrent
        same-key writers safe: last replace wins with identical
        content).

        Item failures are isolated: a document the worker cannot
        compile yields ``({"error": ..., "code": ...}, "error")`` in
        its slot, leaving the other items intact.

        ``cancel`` (an object with ``is_set()``, e.g. a
        ``threading.Event``) enables cooperative abandonment: the
        batch runs in rounds of at most one pool's width, and once
        ``cancel.is_set()`` every not-yet-started item is skipped with
        ``({"error": ..., "code": 503}, "cancelled")`` — the caller
        counts these as reclaimed work instead of letting an abandoned
        batch grind the pool after a timeout.
        """
        from ..experiments.runner import effective_jobs, parallel_map

        options = options or CompileOptions()
        cache_root = (
            self.cache.root if (use_cache and self.cache is not None) else None
        )
        tasks = [
            (document, options.as_dict(), cache_root)
            for document in documents
        ]
        if cancel is None:
            results = parallel_map(
                _batch_worker, tasks, jobs=jobs,
                recorder=recorder, task_label="serve.batch_task",
            )
        else:
            width = max(1, effective_jobs(jobs))
            results = []
            for lo in range(0, len(tasks), width):
                if cancel.is_set():
                    results.extend(
                        ({
                            "error": (
                                "cancelled: the batch request timed "
                                "out before this item started"
                            ),
                            "code": 503,
                        }, "cancelled")
                        for _ in tasks[lo:]
                    )
                    break
                results.extend(parallel_map(
                    _batch_worker, tasks[lo:lo + width], jobs=jobs,
                    recorder=recorder, task_label="serve.batch_task",
                ))
        out = []
        for payload, status in results:
            if status in ("error", "cancelled"):
                out.append((payload, status))
                continue
            report = CompilationReport.from_json(payload)
            if self.cache is not None and status == "hit":
                self.cache.hits += 1
            elif self.cache is not None and status == "miss":
                self.cache.misses += 1
                self.cache.writes += 1
            out.append((report, status))
        return out


def _batch_worker(
    task: Tuple[Dict[str, Any], Dict[str, Any], Optional[str]]
) -> Tuple[Dict[str, Any], str]:
    """One batch item, picklable for the process pool.

    Builds a throwaway single-graph service around the shared cache
    directory; returns ``(report_json, status)`` as plain data.  A
    failing item returns ``({"error": ..., "code": ...}, "error")``
    instead of raising, so one bad document cannot take down the whole
    batch (an exception escaping here would poison ``parallel_map``'s
    entire result list).
    """
    from .. import obs
    from ..exceptions import SDFError

    document, options_dict, cache_root = task
    try:
        service = CompileService(
            cache=ArtifactCache(cache_root) if cache_root else None
        )
        report, status = service.compile_document(
            document,
            CompileOptions.from_dict(options_dict),
            use_cache=cache_root is not None,
            recorder=obs.active(obs.current()),
        )
    except (SDFError, ValueError, KeyError, TypeError) as exc:
        return {"error": f"bad request: {exc}", "code": 400}, "error"
    except Exception as exc:  # pragma: no cover - defensive
        return {"error": f"internal error: {exc!r}", "code": 500}, "error"
    payload = report.to_json()
    return payload, status
