"""Multi-process compile farm: digest-sharded, supervised workers.

``repro serve`` used to run every compilation on the front end's own
threads — one Python process, one GIL, one session LRU.  This module
scales the service across worker *processes* while keeping every
cache-locality property the session design bought:

* **Sharding** — each request is routed by :func:`rendezvous_shard`
  over the graph's content digest (``--shard-by digest``, the default)
  or the full cache key (``--shard-by key``).  Rendezvous (highest
  random weight) hashing is a pure function of ``(digest, slot,
  pool size)``: the same digest lands on the same worker across
  server restarts, so each worker's per-graph
  :class:`~repro.scheduling.session.CompilationSession` LRU and
  in-memory artifact tier stay hot, and no shard map needs storing.
* **Tiered cache** — a worker answers from its in-memory report tier
  (:class:`~repro.serve.service.CompileService` ``memory_entries``),
  then the shared on-disk :class:`~repro.serve.cache.ArtifactCache`,
  and only then compiles.  Every tier returns bit-identical
  ``canonical()`` reports; the benchmark asserts it per round.
* **Supervision** — each worker is watched both *in-band* (a pipe
  that dies mid-request fails that request with a one-line 503 and
  respawns the worker on the spot) and by a background supervisor
  thread (an idle worker that dies is respawned within
  ``supervise_interval`` seconds, so ``/healthz`` recovers without
  traffic).  A worker that outlives a request deadline is killed and
  respawned — a hung compile cannot wedge its shard forever.
* **Live resizing** — :meth:`WorkerFarm.resize` grows or shrinks the
  pool while it serves traffic.  Growing spawns supervised workers
  for the new slots; shrinking *drains* the removed slots (each
  retired worker finishes its in-flight request, ships its final
  counters, and is shut down — never killed mid-compile).  Because
  rendezvous hashing is a pure function of ``(digest, size)``, only
  ~1/N of the key space changes owner either way.  Retired workers'
  counters, request tallies, and restart counts are folded into
  :attr:`WorkerFarm.retired` so ``/stats`` totals survive the resize.
  A request routed before a shrink that arrives at a retired slot is
  transparently re-routed to a live worker (results are bit-identical
  on every worker, so only cache locality is briefly affected).

Wire protocol (pickled tuples over a ``multiprocessing.Pipe``, one
request in flight per worker, serialized by a per-worker lock):

====================================  ===================================
parent -> worker                      worker -> parent
====================================  ===================================
``("compile", rid, key, req|None,     ``("ok", rid, status, tier, body,
trace)``                              tree|None)`` |
                                      ``("need", rid)`` (send full
                                      request: both memory and disk
                                      tiers missed, the worker needs
                                      the document to compile) |
                                      ``("err", rid, http_code, msg)``
``("compile_many", rid,               ``("ok_many", rid, results,
[(key, req|None), ...], trace)``      trees)`` — one ``("ok", status,
                                      tier, body)`` / ``("err", code,
                                      msg)`` / ``("need",)`` entry per
                                      item, order preserved; needed
                                      items are re-sent with full
                                      documents in a second frame
``("stats", rid)``                    ``("stats", rid, payload)``
``("ping", rid)``                     ``("pong", rid)``
``("shutdown",)``                     (worker exits)
====================================  ===================================

The key-only first frame is the warm hot path: the front end memoizes
``raw body -> (key, shard)`` so a repeated request costs one SHA-256
and one small pipe round trip — no JSON parse, no document pickling.

Fault injection (``allow_faults=True``, never set by the CLI) honors a
top-level ``"fault"`` request field: ``"worker_crash"`` makes the
worker ``os._exit`` mid-compile (the ``repro check --inject``
``worker_crash`` mutation class), ``"sleep:N"`` delays the compile so
tests can hold a request in flight deterministically.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import multiprocessing

__all__ = [
    "FarmError",
    "FarmRequestError",
    "FarmTimeout",
    "FarmWorkerCrashed",
    "FarmResponse",
    "WorkerFarm",
    "rendezvous_shard",
]


def rendezvous_shard(digest: str, size: int) -> int:
    """Highest-random-weight shard for ``digest`` in a pool of ``size``.

    Pure and stable: no state, no RNG — the winning slot is the argmax
    of ``sha256(digest ":" slot)`` over slots ``0..size-1``, so every
    process (and every restart) agrees on the placement, and growing
    the pool from N to N+1 moves only ~1/(N+1) of the digests.
    """
    if size < 1:
        raise ValueError(f"pool size must be >= 1, got {size}")
    if size == 1:
        return 0
    best_slot = 0
    best_weight = b""
    prefix = digest.encode("utf-8") + b":"
    for slot in range(size):
        weight = hashlib.sha256(prefix + str(slot).encode("ascii")).digest()
        if weight > best_weight:
            best_weight = weight
            best_slot = slot
    return best_slot


class FarmError(RuntimeError):
    """A request the farm could not complete; ``code`` is the HTTP status."""

    code = 500


class FarmWorkerCrashed(FarmError):
    """The worker died mid-request; it has been respawned."""

    code = 503


class FarmTimeout(FarmError):
    """The worker exceeded the request deadline; killed and respawned."""

    code = 504


class FarmRequestError(FarmError):
    """The worker rejected the request itself (bad document/options).

    Carries the worker-chosen HTTP code (400 for malformed input,
    500 for unexpected failures) — the worker stayed healthy.
    """

    def __init__(self, message: str, code: int = 400) -> None:
        super().__init__(message)
        self.code = code


class FarmResponse:
    """One completed compile: status, tier, response body, optional trace."""

    __slots__ = ("status", "tier", "body", "tree")

    def __init__(
        self, status: str, tier: str, body: bytes,
        tree: Optional[Dict[str, Any]],
    ) -> None:
        self.status = status
        self.tier = tier
        self.body = body
        self.tree = tree


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------

def _worker_main(conn, config: Dict[str, Any]) -> None:  # pragma: no cover
    # Covered via subprocess in the farm tests; coverage tools cannot
    # see into the forked child.
    worker = _Worker(conn, config)
    worker.run()


class _Worker:
    """The loop running inside each farm process."""

    def __init__(self, conn, config: Dict[str, Any]) -> None:
        from collections import OrderedDict

        from .cache import ArtifactCache
        from .service import CompileService
        from .. import obs

        self.conn = conn
        self.allow_faults = bool(config.get("allow_faults"))
        cache_root = config.get("cache_root")
        self.mem_entries = int(config.get("mem_entries", 512))
        self.service = CompileService(
            cache=ArtifactCache(cache_root) if cache_root else None,
            max_sessions=int(config.get("max_sessions", 32)),
            memory_entries=self.mem_entries,
        )
        #: Rendered warm-hit response bodies by cache key: the memory
        #: tier's render memo.  A repeat hit skips report rebuild and
        #: JSON encode entirely and ships the stored bytes.
        self._bodies: "OrderedDict[str, bytes]" = OrderedDict()
        #: Long-lived counters-only recorder; totals ship with "stats".
        self.counters = obs.TraceRecorder()

    def run(self) -> None:
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "shutdown":
                return
            if kind == "ping":
                self.conn.send(("pong", msg[1]))
            elif kind == "stats":
                self.conn.send(("stats", msg[1], self._stats()))
            elif kind == "compile":
                self._compile(*msg[1:])
            elif kind == "compile_many":
                self._compile_many(*msg[1:])
            else:  # unknown frame: protocol bug, fail loudly
                self.conn.send(("err", msg[1], 500, f"unknown frame {kind!r}"))

    def _stats(self) -> Dict[str, Any]:
        mem = self.service._memory
        return {
            "pid": os.getpid(),
            "counters": self.counters.counter_totals(),
            "sessions": len(self.service._sessions),
            "memory_entries": 0 if mem is None else len(mem),
        }

    def _compile(
        self, rid: int, key: str, request: Optional[Dict[str, Any]],
        trace: bool,
    ) -> None:
        from .. import obs

        recorder = obs.TraceRecorder() if trace else None
        try:
            reply = self._compile_inner(key, request, recorder)
        except Exception as exc:
            self.counters.count("farm.errors")
            code = 500
            if isinstance(exc, (ValueError, KeyError, TypeError)):
                code = 400
            else:
                from ..exceptions import SDFError

                if isinstance(exc, SDFError):
                    code = 400
            self.counters.count("farm.requests")
            self.conn.send(("err", rid, code, f"bad request: {exc}"))
            return
        if reply is None:  # tiers missed and we only have the key
            self.conn.send(("need", rid))  # not terminal: not counted
            return
        status, tier, body = reply
        self.counters.count("farm.requests")
        tree = recorder.serialize() if recorder is not None else None
        self.conn.send(("ok", rid, status, tier, body, tree))

    def _compile_many(
        self, rid: int,
        items: List[Tuple[str, Optional[Dict[str, Any]]]],
        trace: bool,
    ) -> None:
        """One shard group of a ``/batch`` in a single frame.

        Items run sequentially in request order against the same tiers
        as single compiles (identical colds in one group compile once:
        the first fills the memory tier, the rest hit it).  A bad item
        becomes a per-item ``("err", ...)`` entry — it never poisons
        the rest of the group.
        """
        from .. import obs

        results: List[Tuple[Any, ...]] = []
        trees: List[Optional[Dict[str, Any]]] = []
        for key, request in items:
            recorder = obs.TraceRecorder() if trace else None
            try:
                reply = self._compile_inner(key, request, recorder)
            except Exception as exc:
                self.counters.count("farm.errors")
                code = 500
                if isinstance(exc, (ValueError, KeyError, TypeError)):
                    code = 400
                else:
                    from ..exceptions import SDFError

                    if isinstance(exc, SDFError):
                        code = 400
                self.counters.count("farm.requests")
                results.append(("err", code, f"bad request: {exc}"))
                trees.append(None)
                continue
            if reply is None:  # tiers missed on a key-only item
                results.append(("need",))  # not terminal: not counted
                trees.append(None)
                continue
            status, tier, body = reply
            self.counters.count("farm.requests")
            results.append(("ok", status, tier, body))
            trees.append(
                recorder.serialize() if recorder is not None else None
            )
        self.conn.send(("ok_many", rid, results, trees))

    def _compile_inner(
        self, key: str, request: Optional[Dict[str, Any]], recorder
    ) -> Optional[Tuple[str, str, bytes]]:
        from .service import CompileOptions

        start = time.perf_counter()
        if key and self.service.cache is not None:
            body = self._bodies.get(key)
            if body is not None:
                self._bodies.move_to_end(key)
                self.counters.count("farm.mem_hits")
                if recorder is not None:
                    recorder.count("farm.mem_hits")
                return "hit", "memory", body
            found = self.service.lookup(key, recorder=recorder)
            if found is not None:
                report, tier = found
                self.counters.count(
                    "farm.mem_hits" if tier == "memory" else "farm.disk_hits"
                )
                if recorder is not None:
                    recorder.count(
                        "farm.mem_hits" if tier == "memory"
                        else "farm.disk_hits"
                    )
                report.wall_s = time.perf_counter() - start
                return "hit", tier, self._remember(key, report)
            if request is None:
                return None  # ask the front end for the document
        if request is None:
            return None
        fault = request.get("fault")
        if fault and self.allow_faults:
            if fault == "worker_crash":
                os._exit(23)  # die mid-compile, response never sent
            if isinstance(fault, str) and fault.startswith("sleep:"):
                time.sleep(float(fault.split(":", 1)[1]))
        options = CompileOptions.from_dict(request.get("options"))
        use_cache = bool(request.get("cache", True))
        report, status, tier = self.service.compile_document_tiered(
            request["graph"], options,
            use_cache=use_cache, recorder=recorder,
        )
        if status == "hit":
            self.counters.count(
                "farm.mem_hits" if tier == "memory" else "farm.disk_hits"
            )
        else:
            self.counters.count("farm.compiles")
            if recorder is not None:
                recorder.count("farm.compiles")
        return status, tier, self._render(status, report)

    def _remember(self, key: str, report) -> bytes:
        """Render a hit body and memoize the bytes for repeat hits."""
        body = self._render("hit", report)
        self._bodies[key] = body
        while len(self._bodies) > self.mem_entries:
            self._bodies.popitem(last=False)
        return body

    @staticmethod
    def _render(status: str, report) -> bytes:
        return json.dumps(
            {"status": status, "report": report.to_json()}
        ).encode("utf-8")


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side view of one worker slot: process, pipe, lock, counters."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.proc = None
        self.conn = None
        self.lock = threading.Lock()
        self.restarts = -1  # first spawn brings it to 0
        self.requests = 0
        self.failures = 0
        #: Set (under ``lock``) when the slot is removed by a shrink.
        #: A retired handle is never respawned; late requests that
        #: still hold a stale shard number re-route to a live slot.
        self.retired = False


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class WorkerFarm:
    """A supervised pool of compile worker processes.

    Parameters
    ----------
    size:
        Number of worker processes (shard slots).
    cache_root:
        Shared on-disk :class:`ArtifactCache` directory, or ``None``
        to run without the disk and memory tiers (every request
        compiles — bit-identical to the bare pipeline).
    shard_by:
        ``"digest"`` (graph content hash — one graph's sessions always
        warm on one worker, whatever the options) or ``"key"`` (full
        cache key — spreads per-option variants of one graph).
    mem_entries:
        Per-worker in-memory report tier capacity.
    allow_faults:
        Honor test-only ``"fault"`` request fields (never set by the
        CLI; used by the fault-injection self-test and the tests).
    supervise_interval:
        Seconds between background liveness sweeps (0 disables the
        supervisor thread; crash recovery then happens on first use).
    """

    def __init__(
        self,
        size: int,
        cache_root: Optional[str] = None,
        shard_by: str = "digest",
        mem_entries: int = 512,
        max_sessions: int = 32,
        allow_faults: bool = False,
        supervise_interval: float = 0.2,
    ) -> None:
        if size < 1:
            raise ValueError(f"farm size must be >= 1, got {size}")
        if shard_by not in ("digest", "key"):
            raise ValueError(
                f"shard_by must be 'digest' or 'key', got {shard_by!r}"
            )
        self.size = size
        self.cache_root = cache_root
        self.shard_by = shard_by
        self.supervise_interval = supervise_interval
        self._config = {
            "cache_root": cache_root,
            "mem_entries": mem_entries,
            "max_sessions": max_sessions,
            "allow_faults": allow_faults,
        }
        self._ctx = _mp_context()
        self._handles = [_WorkerHandle(slot) for slot in range(size)]
        self._rid = itertools.count(1)
        self._stopping = False
        self._supervisor: Optional[threading.Thread] = None
        #: Serializes :meth:`resize` calls and pins the
        #: ``(size, _handles)`` pair they publish together.
        self._resize_lock = threading.Lock()
        #: Totals carried over from workers retired by a shrink, so a
        #: resize never makes ``/stats`` counters go backwards.
        self.retired: Dict[str, Any] = {
            "workers": 0, "requests": 0, "failures": 0,
            "restarts": 0, "counters": {},
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "WorkerFarm":
        for handle in self._handles:
            self._spawn(handle)
        if self.supervise_interval > 0:
            self._supervisor = threading.Thread(
                target=self._supervise, daemon=True,
                name="repro-farm-supervisor",
            )
            self._supervisor.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Shut every worker down; idempotent."""
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
            self._supervisor = None
        for handle in list(self._handles):
            with handle.lock:
                if handle.proc is None:
                    continue
                try:
                    handle.conn.send(("shutdown",))
                except (OSError, BrokenPipeError, ValueError):
                    pass
                handle.proc.join(timeout=timeout)
                if handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(timeout=timeout)
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.proc = None

    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)start ``handle``'s process.  Caller holds ``handle.lock``
        (or is single-threaded startup)."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._config),
            daemon=True,
            name=f"repro-farm-{handle.slot}",
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.restarts += 1

    def _supervise(self) -> None:
        """Respawn workers that died while idle, until :meth:`stop`."""
        while not self._stopping:
            time.sleep(self.supervise_interval)
            for handle in list(self._handles):
                if self._stopping:
                    return
                if (
                    handle.retired
                    or handle.proc is None
                    or handle.proc.is_alive()
                ):
                    continue
                # Try-lock only: if a request holds the lock, its own
                # error path respawns; blocking here could double-spawn.
                if handle.lock.acquire(blocking=False):
                    try:
                        if (
                            not self._stopping
                            and not handle.retired
                            and handle.proc is not None
                            and not handle.proc.is_alive()
                        ):
                            self._spawn(handle)
                    finally:
                        handle.lock.release()

    # -- live resizing --------------------------------------------------
    def resize(
        self, new_size: int, drain_timeout: float = 30.0
    ) -> Dict[str, Any]:
        """Grow or shrink the pool to ``new_size`` workers, live.

        Growing spawns supervised workers for the new slots; shrinking
        publishes the smaller routing table first (so no new request
        targets a removed slot) and then drains each retired worker:
        waits for its in-flight request, pulls its final counters into
        :attr:`retired`, and shuts it down.  Rendezvous hashing
        guarantees only ~1/max(old,new) of the digest space changes
        owner.  Returns ``{"previous": old, "size": new, "added": ...,
        "removed": ...}``.  Idempotent for ``new_size == size``.
        """
        if new_size < 1:
            raise ValueError(f"farm size must be >= 1, got {new_size}")
        with self._resize_lock:
            old_size = self.size
            if new_size == old_size:
                return {"previous": old_size, "size": old_size,
                        "added": 0, "removed": 0}
            if new_size > old_size:
                added = [
                    _WorkerHandle(slot)
                    for slot in range(old_size, new_size)
                ]
                for handle in added:
                    self._spawn(handle)
                # Publish handles before size: a racing request that
                # already computed a shard against the larger size must
                # find its handle present.
                self._handles = self._handles + added
                self.size = new_size
                return {"previous": old_size, "size": new_size,
                        "added": len(added), "removed": 0}
            removed = self._handles[new_size:]
            # Publish the shrunk table first: new routing decisions
            # stop at new_size while retired workers finish in-flight
            # work behind their locks.
            self._handles = self._handles[:new_size]
            self.size = new_size
            for handle in removed:
                self._drain_handle(handle, drain_timeout)
            return {"previous": old_size, "size": new_size,
                    "added": 0, "removed": len(removed)}

    def _drain_handle(self, handle: _WorkerHandle, timeout: float) -> None:
        """Retire one removed slot: finish in-flight work, keep totals.

        Acquiring ``handle.lock`` waits for the slot's in-flight
        request (requests hold the lock for their whole round trip),
        so a shrink never drops a request mid-compile.  The worker's
        final obs counters are merged into :attr:`retired` before the
        shutdown frame, so ``/stats`` totals survive the resize.
        """
        acquired = handle.lock.acquire(timeout=timeout)
        try:
            handle.retired = True
            # Without the lock (a request overran drain_timeout) the
            # pipe belongs to that request: skip the stats/shutdown
            # frames and kill below — the request fails with a 503 and
            # the retired flag stops any respawn.
            alive = (
                acquired
                and handle.proc is not None
                and handle.proc.is_alive()
            )
            if alive:
                try:
                    rid = next(self._rid)
                    handle.conn.send(("stats", rid))
                    if handle.conn.poll(2.0):
                        msg = handle.conn.recv()
                        if msg[0] == "stats" and msg[1] == rid:
                            for name, value in (
                                msg[2].get("counters") or {}
                            ).items():
                                self.retired["counters"][name] = (
                                    self.retired["counters"].get(name, 0)
                                    + value
                                )
                except (EOFError, OSError, BrokenPipeError, ValueError):
                    pass
                try:
                    handle.conn.send(("shutdown",))
                except (OSError, BrokenPipeError, ValueError):
                    pass
            if handle.proc is not None:
                handle.proc.join(timeout=5)
                if handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(timeout=5)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            handle.proc = None
            handle.conn = None
            self.retired["workers"] += 1
            self.retired["requests"] += handle.requests
            self.retired["failures"] += handle.failures
            self.retired["restarts"] += max(0, handle.restarts)
        finally:
            if acquired:
                handle.lock.release()

    # -- introspection --------------------------------------------------
    def shard_for(self, digest: str) -> int:
        """The worker slot owning ``digest`` (stable across restarts)."""
        return rendezvous_shard(digest, self.size)

    def alive_count(self) -> int:
        return sum(
            1 for h in list(self._handles)
            if h.proc is not None and h.proc.is_alive()
        )

    def restarts_total(self) -> int:
        """Restarts over the farm's lifetime, retired slots included."""
        return (
            sum(max(0, h.restarts) for h in list(self._handles))
            + self.retired["restarts"]
        )

    def describe(self) -> Dict[str, Any]:
        """Cheap pool summary (no worker round trips) for ``/healthz``."""
        return {
            "size": self.size,
            "alive": self.alive_count(),
            "restarts": self.restarts_total(),
            "shard_by": self.shard_by,
            "retired_workers": self.retired["workers"],
        }

    def worker_stats(self, timeout: float = 2.0) -> List[Dict[str, Any]]:
        """Per-worker stats payloads (pid, obs counters, tier sizes).

        A worker that cannot answer within ``timeout`` (dead, hung, or
        busy with a long compile) is reported as ``{"alive": False}``
        rather than blocking the ``/stats`` endpoint.
        """
        out = []
        for handle in list(self._handles):
            row: Dict[str, Any] = {
                "slot": handle.slot,
                "alive": handle.proc is not None and handle.proc.is_alive(),
                "restarts": max(0, handle.restarts),
                "requests": handle.requests,
                "failures": handle.failures,
            }
            acquired = handle.lock.acquire(timeout=timeout)
            if acquired:
                try:
                    rid = next(self._rid)
                    handle.conn.send(("stats", rid))
                    if handle.conn.poll(timeout):
                        msg = handle.conn.recv()
                        if msg[0] == "stats" and msg[1] == rid:
                            row.update(msg[2])
                except (EOFError, OSError, BrokenPipeError, ValueError):
                    row["alive"] = False
                finally:
                    handle.lock.release()
            out.append(row)
        return out

    # -- dispatch -------------------------------------------------------
    def compile(
        self,
        shard: int,
        key: str,
        request: Optional[Dict[str, Any]],
        trace: bool = False,
        timeout: Optional[float] = None,
    ) -> FarmResponse:
        """Run one compile request on worker ``shard``.

        ``key`` non-empty enables the tiers; ``request`` must carry the
        full parsed request (the worker is sent the key alone first and
        asks for the document only when both cache tiers miss).

        Raises :class:`FarmWorkerCrashed` (one respawn already done)
        when the worker dies mid-request, :class:`FarmTimeout` when it
        exceeds ``timeout`` seconds (the worker is killed and
        respawned — a hung shard heals), and :class:`FarmError` for
        protocol corruption.

        ``shard`` may be stale after a concurrent :meth:`resize` (the
        caller routed against the old pool size); such requests are
        transparently re-routed onto a live slot — every worker
        produces bit-identical results, only cache locality is
        affected for the one request.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        handle = self._claim(shard, deadline, timeout)
        try:
            if handle.proc is None or not handle.proc.is_alive():
                self._spawn(handle)
            handle.requests += 1
            rid = next(self._rid)
            try:
                frame = (
                    ("compile", rid, key, None, trace)
                    if key and request is not None
                    else ("compile", rid, key, request, trace)
                )
                msg = self._recv(handle, rid, deadline, send=frame)
                if msg[0] == "need":
                    msg = self._recv(
                        handle, rid, deadline,
                        send=("compile", rid, key, request, trace),
                    )
            except (EOFError, OSError, BrokenPipeError, ValueError):
                handle.failures += 1
                if not handle.retired:
                    self._spawn(handle)
                raise FarmWorkerCrashed(
                    f"compile worker {handle.slot} crashed mid-request; "
                    f"respawned, retry the request"
                ) from None
            if msg[0] == "err":
                raise FarmRequestError(msg[3], code=msg[2])
            if msg[0] != "ok":
                handle.failures += 1
                if not handle.retired:
                    self._spawn(handle)
                raise FarmError(
                    f"worker {handle.slot} protocol error: "
                    f"frame {msg[0]!r}"
                )
            _, _, status, tier, body, tree = msg
            return FarmResponse(status, tier, body, tree)
        finally:
            handle.lock.release()

    def compile_many(
        self,
        shard: int,
        items: List[Tuple[str, Optional[Dict[str, Any]]]],
        trace: bool = False,
        timeout: Optional[float] = None,
    ) -> List[Tuple[Any, ...]]:
        """Run one ``/batch`` shard group on worker ``shard`` in a
        single wire frame.

        ``items`` is ``[(key, request), ...]`` in request order.  The
        first frame carries keys only for cache-enabled items (the
        warm hot path: a whole warm group costs one small round trip
        instead of one per item); the worker marks tier-missed items
        ``("need",)`` and a second frame re-sends just those with full
        documents.  Returns one entry per item, order preserved:
        ``("ok", status, tier, body, tree|None)`` or
        ``("err", http_code, message)``.

        Raises like :meth:`compile` — :class:`FarmWorkerCrashed` /
        :class:`FarmTimeout` / :class:`FarmError` fail the *group* as
        a unit (the caller falls back to per-item dispatch to keep
        fault isolation per item).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        handle = self._claim(shard, deadline, timeout)
        try:
            if handle.proc is None or not handle.proc.is_alive():
                self._spawn(handle)
            handle.requests += len(items)
            rid = next(self._rid)
            first = [
                (key, None) if key and request is not None
                else (key, request)
                for key, request in items
            ]
            try:
                msg = self._recv(
                    handle, rid, deadline,
                    send=("compile_many", rid, first, trace),
                )
                if msg[0] == "ok_many":
                    results = list(msg[2])
                    trees = list(msg[3])
                    needed = [
                        i for i, entry in enumerate(results)
                        if entry[0] == "need"
                    ]
                    if needed:
                        rid = next(self._rid)
                        msg = self._recv(
                            handle, rid, deadline,
                            send=("compile_many", rid,
                                  [items[i] for i in needed], trace),
                        )
                        if msg[0] == "ok_many":
                            for slot, entry, tree in zip(
                                needed, msg[2], msg[3]
                            ):
                                results[slot] = entry
                                trees[slot] = tree
            except (EOFError, OSError, BrokenPipeError, ValueError):
                handle.failures += 1
                if not handle.retired:
                    self._spawn(handle)
                raise FarmWorkerCrashed(
                    f"compile worker {handle.slot} crashed mid-batch; "
                    f"respawned, retry the items"
                ) from None
            if msg[0] != "ok_many":
                handle.failures += 1
                if not handle.retired:
                    self._spawn(handle)
                raise FarmError(
                    f"worker {handle.slot} protocol error: "
                    f"frame {msg[0]!r}"
                )
            return [
                ("ok", entry[1], entry[2], entry[3], tree)
                if entry[0] == "ok" else entry
                for entry, tree in zip(results, trees)
            ]
        finally:
            handle.lock.release()

    def _claim(
        self, shard: int, deadline: Optional[float],
        timeout: Optional[float],
    ) -> _WorkerHandle:
        """Lock and return a live handle for ``shard``, re-routing
        stale (post-resize) shard numbers onto the current pool."""
        while True:
            handles = self._handles
            handle = handles[shard % len(handles)]
            if not self._acquire(handle.lock, deadline):
                raise FarmTimeout(
                    f"worker {handle.slot} busy past the "
                    f"{timeout}s deadline"
                )
            if not handle.retired:
                return handle
            # The slot was retired between routing and locking: route
            # again against the (shrunk) current table.
            handle.lock.release()
            shard = shard % self.size

    @staticmethod
    def _acquire(lock: threading.Lock, deadline: Optional[float]) -> bool:
        if deadline is None:
            return lock.acquire()
        remaining = deadline - time.monotonic()
        return remaining > 0 and lock.acquire(timeout=remaining)

    def _recv(self, handle: _WorkerHandle, rid: int, deadline, send=None):
        """Send ``send`` (optional) and wait for the matching reply."""
        if send is not None:
            handle.conn.send(send)
        while True:
            if deadline is None:
                if handle.conn.poll(None):
                    msg = handle.conn.recv()
                else:  # pragma: no cover - poll(None) blocks until data
                    continue
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not handle.conn.poll(remaining):
                    handle.failures += 1
                    handle.proc.kill()
                    handle.proc.join(timeout=5)
                    if not handle.retired:
                        self._spawn(handle)
                    raise FarmTimeout(
                        f"worker {handle.slot} exceeded the request "
                        f"deadline; killed and respawned"
                    )
                msg = handle.conn.recv()
            if (msg[0] in ("ok", "ok_many", "err", "need")
                    and msg[1] == rid):
                return msg
            # Stale frame from an earlier timed-out request on this
            # pipe generation: drop it and keep waiting.
