"""Buffer merging across actors (paper section 12, "Future directions").

The lifetime model of sections 5–9 assumes every output buffer of an
actor is live from the moment the actor starts and every input buffer
stays live until it finishes — so an actor's output can never share
memory with its own input.  Section 12 sketches the fix the authors
published later as *buffer merging*: when the actor consumes each input
token before producing the output that depends on it (formalized by the
consume-before-produce, CBP, parameter), the output array can overlay
the input array in place.

This module implements the CBP-zero case, the one the paper motivates
with the addition-actor example:

* a merge of input edge ``e1 = (u, X)`` with output edge ``e2 = (X, v)``
  is *safe* when, at every firing of ``X``, the words produced onto
  ``e2`` fit in the words already consumed from ``e1``.  With linear
  cursors from a common base this holds iff the per-firing production
  (in words) does not exceed the per-firing consumption, both buffers
  reset episodes at the same loop (identical least parents in the
  schedule tree), and the output array is no larger than the input
  array;
* merged buffers occupy one region sized ``max(s1, s2) = s1`` with the
  union lifetime, so first-fit sees a single node where it saw two.

Safety is not taken on faith: the shared-memory VM of
:mod:`repro.codegen.vm` executes merged allocations with per-token
integrity checking — an unsafe merge is caught as corruption (its reads
of e1 would find e2's tokens).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sdf.graph import Edge, SDFGraph
from ..lifetimes.intervals import LifetimeSet
from ..lifetimes.periodic import DEFAULT_OCCURRENCE_CAP, PeriodicLifetime
from ..allocation.first_fit import Allocation, ffdur, ffstart
from ..allocation.intersection_graph import build_intersection_graph

__all__ = ["MergeCandidate", "find_merge_candidates", "merged_allocation"]


@dataclass(frozen=True)
class MergeCandidate:
    """A safe in-place merge of an actor's input and output buffers."""

    actor: str
    input_edge: Tuple[str, str, int]
    output_edge: Tuple[str, str, int]
    saved_words: int


def find_merge_candidates(
    graph: SDFGraph, lifetimes: LifetimeSet
) -> List[MergeCandidate]:
    """All safe CBP-zero merges under the current schedule.

    Each buffer participates in at most one merge (input and output
    alike); among an actor's eligible pairs the one saving the most
    words wins.
    """
    tree = lifetimes.tree

    def episode_count(edge: Edge) -> int:
        lp = tree.least_parent(edge.source, edge.sink)
        count = lp.loop
        for anc in lp.ancestors():
            count *= anc.loop
        return count

    used: Set[Tuple[str, str, int]] = set()
    candidates: List[MergeCandidate] = []
    for actor in graph.actor_names():
        best: Optional[MergeCandidate] = None
        for e_in in graph.in_edges(actor):
            if e_in.delay or e_in.key in used:
                continue
            lt_in = lifetimes.lifetimes[e_in.key]
            for e_out in graph.out_edges(actor):
                if e_out.delay or e_out.key in used:
                    continue
                if e_out.key == e_in.key:
                    continue
                lt_out = lifetimes.lifetimes[e_out.key]
                # Per-firing words: production must fit in consumption.
                if (
                    e_out.production * e_out.token_size
                    > e_in.consumption * e_in.token_size
                ):
                    continue
                # Episodes must share a cadence: one fill/drain of each
                # buffer per common loop iteration.  The two least
                # parents lie on one root path (both are ancestors of
                # the actor's leaf); equal occurrence counts mean every
                # loop strictly between them is unit.
                if episode_count(e_in) != episode_count(e_out):
                    continue
                # The output array must fit inside the input array.
                if lt_out.size > lt_in.size:
                    continue
                saved = lt_out.size
                if best is None or saved > best.saved_words:
                    best = MergeCandidate(
                        actor=actor,
                        input_edge=e_in.key,
                        output_edge=e_out.key,
                        saved_words=saved,
                    )
        if best is not None:
            used.add(best.input_edge)
            used.add(best.output_edge)
            candidates.append(best)
    return candidates


def merged_allocation(
    graph: SDFGraph,
    lifetimes: LifetimeSet,
    candidates: Optional[Sequence[MergeCandidate]] = None,
    occurrence_cap: int = DEFAULT_OCCURRENCE_CAP,
) -> Tuple[Allocation, List[MergeCandidate]]:
    """First-fit allocation with merge groups packed as single nodes.

    Returns the allocation (every original buffer name still gets an
    offset; merged outputs share their input's base) and the applied
    candidates.
    """
    if candidates is None:
        candidates = find_merge_candidates(graph, lifetimes)
    out_to_in = {c.output_edge: c.input_edge for c in candidates}

    # Build the reduced instance: merged pairs become one lifetime with
    # the union span (conservative: solid over the pair's joint extent,
    # with the pair's common periodicity preserved when identical).
    reduced: List[PeriodicLifetime] = []
    group_of: Dict[str, List[Tuple[str, str, int]]] = {}
    for e in graph.edges():
        if e.key in out_to_in:
            continue  # packed with its input edge below
        lt = lifetimes.lifetimes[e.key]
        members = [e.key]
        merged_out = [
            c.output_edge for c in candidates if c.input_edge == e.key
        ]
        if merged_out:
            out_lt = lifetimes.lifetimes[merged_out[0]]
            members.append(merged_out[0])
            lt = _union_lifetime(lt, out_lt)
        reduced.append(lt)
        group_of[lt.name] = members

    wig = build_intersection_graph(reduced, occurrence_cap=occurrence_cap)
    alloc_dur = ffdur(reduced, graph=wig, occurrence_cap=occurrence_cap)
    alloc_start = ffstart(reduced, graph=wig, occurrence_cap=occurrence_cap)
    best = alloc_dur if alloc_dur.total <= alloc_start.total else alloc_start

    # Expand group offsets back to every original buffer name.
    offsets: Dict[str, int] = {}
    for lt in reduced:
        base = best.offsets[lt.name]
        for key in group_of[lt.name]:
            offsets[lifetimes.lifetimes[key].name] = base
    expanded = Allocation(
        offsets=offsets,
        total=best.total,
        order=best.order,
        graph=best.graph,
    )
    return expanded, list(candidates)


def _union_lifetime(
    a: PeriodicLifetime, b: PeriodicLifetime
) -> PeriodicLifetime:
    """The joint lifetime of a merged pair, sized for the larger member.

    When both lifetimes carry identical periodicity (same least parent,
    hence same period stack), the union keeps it; otherwise the solid
    envelope of both is used — conservative and therefore safe.
    """
    size = max(a.size, b.size)
    name = f"{a.name}+{b.name}"
    if a.periods == b.periods:
        start = min(a.start, b.start)
        stop = max(a.start + a.duration, b.start + b.duration)
        return PeriodicLifetime(
            name=name,
            size=size,
            start=start,
            duration=stop - start,
            periods=a.periods,
            total_span=max(a.total_span, b.total_span),
        )
    sa, sb = a.solid(), b.solid()
    start = min(sa.start, sb.start)
    stop = max(sa.start + sa.duration, sb.start + sb.duration)
    return PeriodicLifetime(
        name=name,
        size=size,
        start=start,
        duration=stop - start,
        periods=(),
        total_span=max(a.total_span, b.total_span),
    )
