"""Optimal loop organization over firing sequences (paper section 12).

Section 12 points at the authors' dynamic programming algorithm
(reference [2]) "that can organize loops optimally on a given sequence
of actor appearances": given the flat firing sequence a threading code
generator would emit (e.g. ``G0 G1 A0 G2 A1 ... Gn A(n-1)`` for the
fine-grained FIR of figure 28), find the looped schedule with the
fewest lexical actor appearances, e.g. ``G (n (G A))``.

This module implements that DP (known as CDPPO / optimal looping):

* ``cost[i][j]`` — the minimum number of appearances needed to
  represent the subsequence ``s[i:j]``;
* either split the subsequence (``cost[i][k] + cost[k][j]``), or, if
  ``s[i:j]`` is ``r >= 2`` exact repetitions of its first ``(j-i)/r``
  elements, wrap a loop around one period (``cost of the period``);
* O(n^3) subproblems with O(n) work each after O(n^2) period
  precomputation (Z-function per suffix).

Instance subscripts are erased by a *labeling* function before matching
(different instances of the same library actor share one code block via
parameterized procedure calls — section 11.2), which is exactly what
makes the FIR example collapse.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sdf.schedule import Firing, Loop, LoopedSchedule, ScheduleNode

__all__ = ["optimal_looping", "strip_instance_suffix", "compress_firing_sequence"]


def strip_instance_suffix(name: str) -> str:
    """Drop a trailing instance number: ``G12`` -> ``G``, ``add3`` -> ``add``.

    The default labeling for :func:`compress_firing_sequence`; actors
    that are distinct instantiations of one library block share a label.
    """
    return name.rstrip("0123456789") or name


def optimal_looping(sequence: Sequence[str]) -> LoopedSchedule:
    """The minimum-appearance looped schedule for a firing sequence.

    Examples
    --------
    >>> str(optimal_looping(list("GAGAGA")))
    '(3G A)'
    >>> str(optimal_looping(["G", "G", "A", "G", "A", "G", "A"]))
    'G(3G A)'
    >>> optimal_looping(list("ABCABD")).firing_list() == list("ABCABD")
    True
    """
    n = len(sequence)
    if n == 0:
        raise ValueError("sequence must be non-empty")

    # smallest_period[i][L] -> smallest p dividing L such that
    # s[i:i+L] is (L/p) repetitions of s[i:i+p].  Computed from the
    # Z-function of each suffix: s[i:i+L] has period p iff
    # z[p] >= L - p (prefix-overlap condition), for p < L.
    # We store, for each (i, L), the smallest valid period.
    smallest_period: List[List[int]] = [[0] * (n - i + 1) for i in range(n)]
    for i in range(n):
        suffix = sequence[i:]
        z = _z_function(suffix)
        m = len(suffix)
        for length in range(1, m + 1):
            best = length
            for p in range(1, length // 2 + 1):
                if length % p == 0 and z[p] >= length - p:
                    best = p
                    break
            smallest_period[i][length] = best

    # DP over windows [i, j): minimal appearance count and provenance.
    cost: Dict[Tuple[int, int], int] = {}
    choice: Dict[Tuple[int, int], Tuple[str, int]] = {}

    for length in range(1, n + 1):
        for i in range(0, n - length + 1):
            j = i + length
            if length == 1:
                cost[(i, j)] = 1
                choice[(i, j)] = ("leaf", 0)
                continue
            best = None
            best_choice = None
            # Option 1: wrap a loop if the window is periodic.
            p = smallest_period[i][length]
            if p < length:
                inner = cost[(i, i + p)]
                if best is None or inner < best:
                    best = inner
                    best_choice = ("loop", p)
            # Option 2: split.
            for k in range(i + 1, j):
                candidate = cost[(i, k)] + cost[(k, j)]
                if best is None or candidate < best:
                    best = candidate
                    best_choice = ("split", k)
            cost[(i, j)] = best
            choice[(i, j)] = best_choice

    def build(i: int, j: int) -> List[ScheduleNode]:
        kind, arg = choice[(i, j)]
        if kind == "leaf":
            return [Firing(sequence[i])]
        if kind == "loop":
            p = arg
            body = build(i, i + p)
            count = (j - i) // p
            if len(body) == 1 and isinstance(body[0], Firing):
                inner = body[0]
                return [Firing(inner.actor, inner.count * count)]
            return [Loop(count, tuple(body))]
        k = arg
        return build(i, k) + build(k, j)

    return LoopedSchedule(build(0, n)).normalized()


def compress_firing_sequence(
    sequence: Sequence[str],
    labeling: Callable[[str], str] = strip_instance_suffix,
) -> LoopedSchedule:
    """Label-collapse a firing sequence, then loop it optimally.

    The figure 28/29 use case: a fine-grained FIR expands to
    ``G0 G1 A0 G2 A1 ... Gn A(n-1)``; with instance subscripts erased
    the DP finds ``G (n (G A))``.

    Examples
    --------
    >>> seq = ["G0", "G1", "A0", "G2", "A1", "G3", "A2"]
    >>> str(compress_firing_sequence(seq))
    'G(3G A)'
    """
    return optimal_looping([labeling(a) for a in sequence])


def _z_function(s: Sequence[str]) -> List[int]:
    """Classic Z-array: z[k] = longest common prefix of s and s[k:]."""
    n = len(s)
    z = [0] * n
    if n:
        z[0] = n
    left, right = 0, 0
    for k in range(1, n):
        if k < right:
            z[k] = min(right - k, z[k - left])
        while k + z[k] < n and s[z[k]] == s[k + z[k]]:
            z[k] += 1
        if k + z[k] > right:
            left, right = k, k + z[k]
    return z
