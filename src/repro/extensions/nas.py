"""n-appearance schedules (paper section 11.1.4, after Sung et al.).

Single appearance schedules minimize code size but can pay dearly in
buffer memory: an actor that must fire many times back to back fills
its output buffers completely before anything drains them.  Sung et
al. [25] let selected actors appear *twice* (or more), splitting their
firings, and show the buffer reduction can be significant — a
systematic code-size/buffer-memory trade-off.

This module implements a two-appearance search over *slot sequences*:
a generalized lexical order whose entries are ``(actor, firing_count)``
slots.  For each actor we try splitting its firings into two slots at
every insertion point of the order; each candidate flat schedule is
validated and costed by simulation (both the non-shared ``bufmem`` and
the coarse shared peak), and the best trade-off per extra appearance is
reported.  Small and exact rather than heuristic-at-scale: the paper's
point — two appearances can beat every SAS — is demonstrated, and the
machinery composes with the rest of the flow (the returned schedule is
an ordinary :class:`~repro.sdf.schedule.LoopedSchedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sdf.graph import SDFGraph
from ..sdf.repetitions import repetitions_vector
from ..sdf.schedule import Firing, LoopedSchedule
from ..sdf.simulate import (
    buffer_memory_nonshared,
    is_valid_schedule,
    max_live_tokens,
)

__all__ = ["TwoAppearanceResult", "two_appearance_search"]


@dataclass
class TwoAppearanceResult:
    """Best two-appearance schedule found for one graph.

    ``sas_cost`` is the flat SAS baseline over the same lexical order;
    ``cost`` the best two-appearance cost under the same metric;
    ``split_actor`` the duplicated actor (None if no split helped).
    """

    schedule: LoopedSchedule
    cost: int
    sas_cost: int
    split_actor: Optional[str]
    metric: str

    @property
    def savings_percent(self) -> float:
        if self.sas_cost == 0:
            return 0.0
        return 100.0 * (self.sas_cost - self.cost) / self.sas_cost


def two_appearance_search(
    graph: SDFGraph,
    order: Optional[Sequence[str]] = None,
    metric: str = "nonshared",
    max_fractions: Sequence[int] = (2, 3, 4),
) -> TwoAppearanceResult:
    """Search two-appearance flat schedules derived from a lexical order.

    Parameters
    ----------
    metric:
        ``"nonshared"`` (sum of per-edge peaks — Sung et al.'s metric)
        or ``"shared"`` (coarse-model live peak).
    max_fractions:
        For each actor with repetition count ``q``, the first slot gets
        ``ceil(q / f)`` firings for each ``f`` here (``q`` permitting).

    The search preserves the relative order of all other actors, moving
    only the second slot of the split actor to later positions, which
    keeps every candidate topological if the input order was.
    """
    if metric not in ("nonshared", "shared"):
        raise ValueError(f"unknown metric {metric!r}")
    q = repetitions_vector(graph)
    chosen = list(order) if order is not None else graph.topological_order()

    def cost_of(schedule: LoopedSchedule) -> int:
        if metric == "nonshared":
            return buffer_memory_nonshared(graph, schedule)
        return max_live_tokens(graph, schedule)

    baseline = LoopedSchedule([Firing(a, q[a]) for a in chosen])
    best_schedule = baseline
    best_cost = cost_of(baseline)
    sas_cost = best_cost
    best_actor: Optional[str] = None

    for index, actor in enumerate(chosen):
        total = q[actor]
        if total < 2:
            continue
        first_counts = sorted(
            {max(1, (total + f - 1) // f) for f in max_fractions if f >= 2}
        )
        for first in first_counts:
            second = total - first
            if second < 1:
                continue
            # Second slot at each later insertion point.
            for position in range(index + 1, len(chosen) + 1):
                slots: List[Tuple[str, int]] = []
                for pos, other in enumerate(chosen):
                    if pos == index:
                        slots.append((actor, first))
                    else:
                        slots.append((other, q[other]))
                    if pos + 1 == position:
                        slots.append((actor, second))
                if position == len(chosen):
                    pass  # already appended via pos+1 == position above
                schedule = LoopedSchedule(
                    [Firing(a, c) for a, c in slots]
                )
                if not is_valid_schedule(graph, schedule):
                    continue
                candidate = cost_of(schedule)
                if candidate < best_cost:
                    best_cost = candidate
                    best_schedule = schedule
                    best_actor = actor

    return TwoAppearanceResult(
        schedule=best_schedule,
        cost=best_cost,
        sas_cost=sas_cost,
        split_actor=best_actor,
        metric=metric,
    )
