"""Higher-order graph constructors (paper section 12, figure 29).

Section 12 advocates graphical *higher-order functions* — blocks that
take blocks as parameters and expand into regular graph structures —
as the scalable way to express fine-grained regular designs like FIR
filters.  The "Chain" actor replicates a named subgraph N times and
wires consecutive instances together.

:class:`SubgraphTemplate` captures a parameterizable block (the MAC =
gain + add pair of figure 29); :func:`chain_expand` instantiates it N
times into a host graph, renaming actors with instance suffixes and
connecting each instance's ``chain_out`` port to the next instance's
``chain_in`` port; :func:`fir_graph` builds the complete figure 28/29
FIR structure.  The instance-suffix naming deliberately matches
:func:`repro.extensions.regularity.strip_instance_suffix`, so the
regularity DP can rediscover the loop the designer expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import GraphStructureError
from ..sdf.graph import SDFGraph

__all__ = ["SubgraphTemplate", "chain_expand", "fir_graph"]


@dataclass
class SubgraphTemplate:
    """A replicable block: actors, internal edges, and chain ports.

    ``actors`` maps local actor names to execution times; ``edges`` are
    ``(src, snk, prod, cons)`` over local names; ``chain_in`` /
    ``chain_out`` name the local actors exposed as the chaining ports;
    ``broadcast_in`` optionally names a local actor that every instance
    connects to a shared external source (the FIR's tapped-delay input).
    """

    name: str
    actors: Dict[str, int]
    edges: List[Tuple[str, str, int, int]]
    chain_in: str
    chain_out: str
    broadcast_in: Optional[str] = None

    def __post_init__(self) -> None:
        for port in (self.chain_in, self.chain_out):
            if port not in self.actors:
                raise GraphStructureError(
                    f"template {self.name!r}: port {port!r} is not an actor"
                )
        if self.broadcast_in is not None and self.broadcast_in not in self.actors:
            raise GraphStructureError(
                f"template {self.name!r}: broadcast port "
                f"{self.broadcast_in!r} is not an actor"
            )
        for src, snk, _, _ in self.edges:
            for endpoint in (src, snk):
                if endpoint not in self.actors:
                    raise GraphStructureError(
                        f"template {self.name!r}: edge endpoint "
                        f"{endpoint!r} is not an actor"
                    )


def chain_expand(
    graph: SDFGraph,
    template: SubgraphTemplate,
    count: int,
    source: str,
    sink: str,
    broadcast_source: Optional[str] = None,
    link_rates: Tuple[int, int] = (1, 1),
) -> List[str]:
    """Instantiate ``template`` ``count`` times into ``graph`` as a chain.

    ``source`` feeds instance 0's ``chain_in``; instance ``count-1``'s
    ``chain_out`` feeds ``sink``; consecutive instances connect
    ``chain_out -> chain_in`` with ``link_rates``.  If the template has
    a ``broadcast_in`` port, every instance's port is fed from
    ``broadcast_source``.  Returns the instantiated actor names.

    Examples
    --------
    >>> g = SDFGraph("fir")
    >>> _ = g.add_actors(["in", "out"])
    >>> mac = SubgraphTemplate(
    ...     name="MAC",
    ...     actors={"gain": 1, "add": 1},
    ...     edges=[("gain", "add", 1, 1)],
    ...     chain_in="add", chain_out="add",
    ...     broadcast_in="gain",
    ... )
    >>> names = chain_expand(g, mac, 3, "in", "out", broadcast_source="in")
    >>> g.num_actors
    8
    """
    if count < 1:
        raise GraphStructureError("chain_expand requires count >= 1")
    for endpoint in (source, sink):
        if endpoint not in graph:
            raise GraphStructureError(
                f"chain_expand: {endpoint!r} is not in the host graph"
            )
    if template.broadcast_in is not None:
        if broadcast_source is None:
            raise GraphStructureError(
                f"template {template.name!r} has a broadcast port; pass "
                f"broadcast_source"
            )
        if broadcast_source not in graph:
            raise GraphStructureError(
                f"chain_expand: broadcast source {broadcast_source!r} "
                f"is not in the host graph"
            )

    created: List[str] = []
    instance_names: List[Dict[str, str]] = []
    for index in range(count):
        renaming = {
            local: f"{local}{index}" for local in template.actors
        }
        for local, execution_time in template.actors.items():
            graph.add_actor(renaming[local], execution_time)
            created.append(renaming[local])
        for src, snk, prod, cons in template.edges:
            graph.add_edge(renaming[src], renaming[snk], prod, cons)
        instance_names.append(renaming)

    prod, cons = link_rates
    graph.add_edge(source, instance_names[0][template.chain_in], prod, cons)
    for prev, nxt in zip(instance_names, instance_names[1:]):
        graph.add_edge(
            prev[template.chain_out], nxt[template.chain_in], prod, cons
        )
    graph.add_edge(
        instance_names[-1][template.chain_out], sink, prod, cons
    )
    if template.broadcast_in is not None:
        for renaming in instance_names:
            graph.add_edge(
                broadcast_source, renaming[template.broadcast_in], 1, 1
            )
    return created


def fir_graph(taps: int, name: str = "fir") -> SDFGraph:
    """The fine-grained FIR of figures 28–29 with ``taps`` MAC stages.

    A source broadcasts the (delayed) input sample to every tap's gain;
    the adds accumulate along the chain into the output.  All rates are
    unity, so the graph is homogeneous — the case the paper notes that
    sharing (not looping) must handle.
    """
    if taps < 1:
        raise GraphStructureError("fir_graph requires taps >= 1")
    g = SDFGraph(name)
    g.add_actors(["in", "out"])
    mac = SubgraphTemplate(
        name="MAC",
        actors={"gain": 1, "add": 1},
        edges=[("gain", "add", 1, 1)],
        chain_in="add",
        chain_out="add",
        broadcast_in="gain",
    )
    chain_expand(g, mac, taps, "in", "out", broadcast_source="in")
    return g
