"""Extensions beyond the paper's core flow (sections 11.1.4 and 12).

* :mod:`buffer_merging` — CBP-zero in-place merging of an actor's input
  and output buffers (section 12's "buffer merging" future work);
* :mod:`regularity` — the optimal-looping DP over firing sequences that
  section 12 proposes for regularity extraction (reference [2]);
* :mod:`higher_order` — the "Chain" higher-order constructor of
  figure 29 and the fine-grained FIR it generates;
* :mod:`nas` — two-appearance schedules trading code size for buffer
  memory (section 11.1.4, after Sung et al. [25]).
"""

from .buffer_merging import (
    MergeCandidate,
    find_merge_candidates,
    merged_allocation,
)
from .regularity import (
    compress_firing_sequence,
    optimal_looping,
    strip_instance_suffix,
)
from .higher_order import SubgraphTemplate, chain_expand, fir_graph
from .nas import TwoAppearanceResult, two_appearance_search

__all__ = [
    "MergeCandidate",
    "find_merge_candidates",
    "merged_allocation",
    "optimal_looping",
    "compress_firing_sequence",
    "strip_instance_suffix",
    "SubgraphTemplate",
    "chain_expand",
    "fir_graph",
    "TwoAppearanceResult",
    "two_appearance_search",
]
