# Convenience targets for the sdf-lifetime reproduction.

PYTHON ?= python

.PHONY: install test check check-docs serve-smoke bench bench-pytest bench-full report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Tier-1 suite plus the differential checking harness (25 random
# graphs cycling through the acyclic/broadcast/cyclic families, every
# cross-layer oracle, fault-injection self-test included).  Wall time
# lands in BENCH_PR2.json.
check:
	$(PYTHON) -m pytest tests/ -x -q
	PYTHONPATH=src $(PYTHON) -m repro check --trials 25 --inject \
		--families acyclic,broadcast,cyclic \
		--bench-out BENCH_PR2.json

# Documentation gate: every intra-repo markdown link must resolve and
# every ```console fence's repro invocation must parse against the
# real CLI (argparse introspection — phantom flags fail the build).
check-docs:
	$(PYTHON) scripts/check_docs.py

# End-to-end service smoke test, two phases: threaded server (CD-DAT
# cold miss -> bit-identical warm hit, clean SIGTERM drain, trace in
# serve_trace.json) and a --workers 2 compile farm (same bit-identity,
# worker SIGKILL -> supervisor respawn -> /healthz stays ok, farm
# /batch miss -> hit bit-identical with a poisoned document isolated
# per item, live resize 2 -> 4 -> 2 with /healthz green, merged
# worker trace in serve_farm_trace.json).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py --trace serve_trace.json

bench:
	$(PYTHON) benchmarks/perf_suite.py --out BENCH_PR1.json \
		--baseline benchmarks/seed_baseline.json
	$(PYTHON) benchmarks/bench_symbolic.py --out BENCH_PR3.json
	$(PYTHON) benchmarks/bench_obs.py --out BENCH_PR4.json
	$(PYTHON) benchmarks/bench_serve.py --out BENCH_PR5.json
	$(PYTHON) benchmarks/bench_farm.py --out BENCH_PR6.json \
		--batch-out BENCH_PR9.json
	$(PYTHON) benchmarks/bench_native.py --out BENCH_PR8.json
	$(PYTHON) benchmarks/bench_vectorize.py --out BENCH_PR10.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report -o REPORT.md

examples:
	for script in examples/*.py; do $(PYTHON) $$script > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
