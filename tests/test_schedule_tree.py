"""Tests for the binary schedule tree (sections 8.1–8.3)."""

import pytest

from repro.exceptions import ScheduleError
from repro.lifetimes.schedule_tree import ScheduleTree
from repro.sdf.schedule import parse_schedule


class TestPaperTimeModel:
    """Section 8.1: 2(A 3B) takes 4 time steps; A's first invocation at
    0; the last invocation of 3B begins at 3 and ends at 4."""

    def test_two_a_three_b(self):
        tree = ScheduleTree(parse_schedule("2(A(3B))"))
        assert tree.total_duration() == 4
        assert tree.leaf("A").start == 0
        assert tree.leaf("B").start == 1
        # The leaf node's first invocation spans [1, 2); the last (in
        # iteration 2 of the outer loop) begins at 3 and ends at 4 —
        # expressed through the root's duration.
        assert tree.root.dur == 4
        assert tree.root.loop == 2
        assert tree.root.body_duration() == 2

    def test_leaf_duration_is_one(self):
        tree = ScheduleTree(parse_schedule("2(A(3B))"))
        assert tree.leaf("A").dur == 1
        assert tree.leaf("B").dur == 1
        assert tree.leaf("B").residual == 3


class TestConstruction:
    def test_rejects_multiple_appearance(self):
        with pytest.raises(ScheduleError):
            ScheduleTree(parse_schedule("A B A"))

    def test_flat_sas_binarized(self):
        tree = ScheduleTree(parse_schedule("(3A)(6B)(2C)"))
        assert tree.total_duration() == 3  # three leaf slots
        assert tree.leaf("A").start == 0
        assert tree.leaf("B").start == 1
        assert tree.leaf("C").start == 2

    def test_nested_loop_merging(self):
        # (2(3 A B)) == (6 A B) in tree form
        tree = ScheduleTree(parse_schedule("(2(3A B))"))
        assert tree.root.loop == 6
        assert tree.total_duration() == 12

    def test_unknown_actor_lookup(self):
        tree = ScheduleTree(parse_schedule("A B"))
        with pytest.raises(ScheduleError):
            tree.leaf("Z")

    def test_durations_fig13_style(self):
        # (3 (2 A B) C): body of outer = inner loop (dur 4) + C (1) = 5
        tree = ScheduleTree(parse_schedule("(3(2A B)C)"))
        assert tree.root.dur == 15
        assert tree.root.body_duration() == 5
        assert tree.leaf("C").start == 4

    def test_start_stop_computation(self):
        tree = ScheduleTree(parse_schedule("(2(2A B)(3C))"))
        # body: inner (2 A B) dur 4, then 3C dur 1 -> body 5, root 10
        assert tree.root.dur == 10
        assert tree.leaf("A").start == 0
        assert tree.leaf("B").start == 1
        inner = tree.leaf("A").parent
        assert inner.stop == 4  # both iterations of (2 A B)
        assert tree.leaf("C").start == 4


class TestQueries:
    def test_least_parent(self):
        tree = ScheduleTree(parse_schedule("(2(2A B)(3C))"))
        lp_ab = tree.least_parent("A", "B")
        assert lp_ab is tree.leaf("A").parent
        lp_ac = tree.least_parent("A", "C")
        assert lp_ac is tree.root

    def test_parent_set(self):
        tree = ScheduleTree(parse_schedule("(2(2A B)(3C))"))
        ps = tree.parent_set("A", "B")
        assert ps[0] is tree.least_parent("A", "B")
        assert ps[-1] is tree.root

    def test_invocations_per_iteration(self):
        tree = ScheduleTree(parse_schedule("(2(2(3A) B)(3C))"))
        inner = tree.least_parent("A", "B")
        # Within one iteration of the inner loop's body A fires 3 times.
        assert tree.invocations_per_iteration("A", inner) == 3
        # Within one iteration of the root body: 2 iterations x 3.
        assert tree.invocations_per_iteration("A", tree.root) == 6

    def test_invocations_wrong_node_raises(self):
        tree = ScheduleTree(parse_schedule("(2A B)(3C)"))
        lp = tree.least_parent("A", "B")
        with pytest.raises(ScheduleError):
            tree.invocations_per_iteration("C", lp)

    def test_iter_nodes_covers_tree(self):
        tree = ScheduleTree(parse_schedule("(2(2A B)(3C))"))
        nodes = list(tree.iter_nodes())
        leaves = [n for n in nodes if n.is_leaf()]
        assert {n.actor for n in leaves} == {"A", "B", "C"}

    def test_actors(self):
        tree = ScheduleTree(parse_schedule("(2A B)(3C)"))
        assert set(tree.actors()) == {"A", "B", "C"}


class TestDurationInvariant:
    """dur(root) equals the number of leaf-slot invocations."""

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("A", 1),
            ("(4A)", 1),
            ("A B C", 3),
            ("(2A B)", 4),
            ("(2(3A B)C)", 14),
            ("(24(11(4A)B)C)", 24 * (11 * 2 + 1)),
        ],
    )
    def test_total_duration(self, text, expected):
        assert ScheduleTree(parse_schedule(text)).total_duration() == expected
