"""Tests for the rendering utilities and the report generator."""

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import parse_schedule
from repro.lifetimes.intervals import extract_lifetimes
from repro.lifetimes.render import (
    render_memory_map,
    render_occupancy,
    render_schedule_tree,
    render_timeline,
)
from repro.lifetimes.schedule_tree import ScheduleTree
from repro.scheduling.pipeline import implement
from repro.apps import table1_graph


@pytest.fixture(scope="module")
def modem():
    g = table1_graph("16qamModem")
    return g, implement(g, "rpmc")


class TestRenderTimeline:
    def test_one_row_per_buffer(self, modem):
        g, result = modem
        text = render_timeline(result.lifetimes)
        assert text.count("|") == 2 * g.num_edges
        for e in g.edges():
            assert f"{e.source}->{e.sink}" in text

    def test_bars_present(self, modem):
        _, result = modem
        assert "#" in render_timeline(result.lifetimes)

    def test_width_respected(self, modem):
        _, result = modem
        text = render_timeline(result.lifetimes, width=20)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 20


class TestRenderMemoryMap:
    def test_addresses_within_pool(self, modem):
        _, result = modem
        text = render_memory_map(result.lifetimes, result.allocation)
        assert f"({result.allocation.total} words)" in text

    def test_sorted_by_offset(self, modem):
        _, result = modem
        lines = render_memory_map(
            result.lifetimes, result.allocation
        ).splitlines()[1:]
        offsets = [int(l.split("[")[1].split("..")[0]) for l in lines]
        assert offsets == sorted(offsets)


class TestRenderOccupancy:
    def test_reports_peak(self, modem):
        _, result = modem
        text = render_occupancy(result.lifetimes)
        assert "peak" in text
        assert "#" in text

    def test_empty_lifetimes(self):
        g = SDFGraph()
        g.add_actors("AB")
        g.add_edge("A", "B", 1, 1)
        ls = extract_lifetimes(g, parse_schedule("A B"))
        # Non-empty graph always has occupancy; just ensure no crash.
        assert "peak" in render_occupancy(ls)


class TestRenderScheduleTree:
    def test_structure_visible(self):
        tree = ScheduleTree(parse_schedule("(2(2A B)(3C))"))
        text = render_schedule_tree(tree)
        assert "loop x2" in text
        assert "3C" in text
        assert "start=" in text


class TestReport:
    def test_report_generates(self):
        from repro.experiments.report import generate_report

        text = generate_report(
            systems=["4pamxmitrec", "16qamModem"],
            random_sizes=(10,),
            random_count=2,
        )
        assert "# Evaluation report" in text
        assert "Table 1" in text
        assert "Figure 26" in text
        assert "Ablations" in text
        assert "Average improvement" in text

    def test_cli_report_to_file(self, tmp_path, capsys):
        import repro.experiments.report as report_module
        from repro import cli

        def tiny_report(seed=0):
            return "# Evaluation report\n(tiny)\n"

        original = report_module.generate_report
        report_module.generate_report = tiny_report
        try:
            target = str(tmp_path / "REPORT.md")
            assert cli.main(["report", "-o", target]) == 0
            with open(target) as handle:
                assert "Evaluation report" in handle.read()
        finally:
            report_module.generate_report = original
