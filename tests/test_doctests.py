"""Run the documentation examples embedded in module docstrings."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.sdf.graph",
    "repro.sdf.repetitions",
    "repro.sdf.schedule",
    "repro.scheduling.dppo",
    "repro.scheduling.sdppo",
    "repro.lifetimes.schedule_tree",
    "repro.apps.filterbanks",
    "repro.apps.satellite",
    "repro.apps.ptolemy_demos",
    "repro.apps.homogeneous",
    "repro.extensions.regularity",
    "repro.extensions.higher_order",
]

# import_module sidesteps attribute shadowing: packages re-export
# same-named functions (repro.scheduling.dppo the function hides
# repro.scheduling.dppo the module on attribute access).
MODULES = [importlib.import_module(n) for n in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=MODULE_NAMES)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    # Every module in this list is expected to actually carry examples.
    assert result.attempted > 0, f"{module.__name__} has no doctests"
